//! Steady-state temperature of a wide heat-spreader plate, solved with the
//! **distributed** Mosaic Flow predictor on four simulated devices.
//!
//! The plate is 3×1 spatial units (6×2 atomic subdomains). Its bottom edge
//! carries three localized heat sources (Gaussian bumps); the other edges
//! are held at ambient temperature. Steady-state heat conduction with
//! fixed boundary temperatures is exactly the Laplace Dirichlet problem
//! the paper solves.
//!
//! ```text
//! cargo run --release --example heat_sink
//! ```

use mosaic_flow::dist::PerfModel;
use mosaic_flow::numerics::boundary::{boundary_params, grid_with_boundary};
use mosaic_flow::numerics::{solve_dirichlet, Poisson};
use mosaic_flow::prelude::*;
use mosaic_flow::tensor::Tensor;

fn main() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let domain = DomainSpec::new(spec, 6, 2);
    println!(
        "plate: {}x{} spatial units, {}x{} grid, {} overlapping subdomains",
        domain.sx as f64 * spec.spatial,
        domain.sy as f64 * spec.spatial,
        domain.nx(),
        domain.ny(),
        domain.subdomains().len()
    );

    // Boundary: ambient 0 everywhere except three hot spots on the bottom
    // edge (the walk starts at the bottom-left corner, so the bottom edge
    // occupies the first quarter-ish of the parameter range).
    let params = boundary_params(domain.ny(), domain.nx());
    let bottom_frac =
        (domain.nx() - 1) as f64 / (2 * (domain.nx() - 1) + 2 * (domain.ny() - 1)) as f64;
    let bump = |t: f64, c: f64, w: f64| (-((t - c) * (t - c)) / (2.0 * w * w)).exp();
    let values: Vec<f64> = params
        .iter()
        .map(|&t| {
            if t < bottom_frac {
                let x = t / bottom_frac; // position along the bottom edge
                1.0 * bump(x, 0.2, 0.04) + 0.8 * bump(x, 0.5, 0.03) + 1.2 * bump(x, 0.8, 0.05)
            } else {
                0.0
            }
        })
        .collect();
    let bc = Tensor::from_vec(1, values.len(), values);

    // Reference: global multigrid solve.
    let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
    let (reference, stats) = solve_dirichlet(
        &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
        &guess,
        1e-9,
    );
    assert!(stats.converged);

    // Distributed MFP on 4 simulated devices (2x2 processor grid).
    let oracle = OracleSolver::new(spec, 1e-9);
    let ranks = 4;
    let result = run_distributed(
        &oracle,
        &domain,
        &bc,
        ranks,
        &DistMfpConfig {
            max_iters: 800,
            tol: 1e-7,
            ..Default::default()
        },
    );
    println!(
        "\ndistributed MFP on {ranks} ranks: {} iterations, converged = {}",
        result.iterations, result.converged
    );
    println!(
        "MAE vs multigrid reference: {:.6}",
        result.grid.mean_abs_diff(&reference)
    );

    // Per-rank accounting + the paper's alpha-beta model for an A30
    // cluster.
    let model = PerfModel::a30_cluster();
    println!("\nrank  subdomains  compute(s)  halo msgs  halo bytes  modeled comm(s)");
    for rep in &result.reports {
        println!(
            "{:4}  {:10}  {:10.3}  {:9}  {:10}  {:15.6}",
            rep.rank,
            rep.owned_subdomains,
            rep.compute_seconds,
            rep.comm.msgs_sent,
            rep.comm.bytes_sent,
            model.time_for(&rep.comm)
        );
    }

    // Report the hottest interior spot.
    let mut hottest = (0usize, 0usize, f64::MIN);
    for j in 1..domain.ny() - 1 {
        for i in 1..domain.nx() - 1 {
            let v = result.grid.get(j, i);
            if v > hottest.2 {
                hottest = (j, i, v);
            }
        }
    }
    println!(
        "\nhottest interior point: ({:.3}, {:.3}) at temperature {:.3}",
        hottest.1 as f64 * domain.h(),
        hottest.0 as f64 * domain.h(),
        hottest.2
    );
}
