//! Quickstart: train a small SDNet on Gaussian-process boundary data and
//! use the Mosaic Flow predictor to solve a domain **four times larger**
//! than anything the network saw during training.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mosaic_flow::numerics::boundary::{boundary_coords, grid_with_boundary};
use mosaic_flow::numerics::{solve_dirichlet, Poisson};
use mosaic_flow::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Geometry: SDNet is trained on 0.5x0.5 subdomains with a 9x9 grid.
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    println!(
        "subdomain: {}x{} points, boundary walk {}",
        spec.m,
        spec.m,
        spec.boundary_len()
    );

    // 2. Data: GP boundary conditions solved with multigrid (our pyAMG).
    let dataset = Dataset::generate(spec, 160, 42);
    let (train, val) = dataset.split(0.9);
    println!(
        "dataset: {} train / {} validation samples",
        train.len(),
        val.len()
    );

    // 3. Model: conv boundary embedding + input-split layer + GELU MLP.
    let mut config = SdNetConfig::small(spec.boundary_len());
    config.conv_channels = vec![4];
    config.hidden = vec![48, 48, 48];
    let mut net = SdNet::new(config, &mut ChaCha8Rng::seed_from_u64(0));
    println!("SDNet parameters: {}", net.count_params());

    // 4. Train with the physics-informed loss (data MSE + PDE residual).
    let epochs = 60;
    let steps = epochs * (train.len() / 8);
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 48,
        qc: 16,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 8e-3,
            ..LrSchedule::paper_default(steps)
        },
        opt: OptKind::Adam,
        seed: 0,
        clip_norm: None,
    };
    println!("training for {epochs} epochs ...");
    let logs = train_single(&mut net, &train, &val, &cfg);
    for log in logs
        .iter()
        .step_by(12)
        .chain(std::iter::once(logs.last().unwrap()))
    {
        println!(
            "  epoch {:3}  data loss {:.4}  pde loss {:.5}  val MSE {:.5}",
            log.epoch, log.data_loss, log.pde_loss, log.val_mse
        );
    }

    // 5. Inference on a larger, unseen domain: 1x0.5 spatial units
    //    (2x1 subdomains) with a fresh GP boundary condition.
    let domain = DomainSpec::new(spec, 2, 1);
    let mut bc_sampler = BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.5, 1.0), true);
    let bc = bc_sampler.sample(&mut ChaCha8Rng::seed_from_u64(7));

    // Ground truth from a global multigrid solve.
    let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
    let (reference, stats) = solve_dirichlet(
        &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
        &guess,
        1e-9,
    );
    assert!(stats.converged);

    // Mosaic Flow predictor with the freshly trained network.
    let solver = NeuralSolver::new(net, spec);
    let mfp = Mfp::new(&solver, domain);
    let result = mfp.run(
        &bc,
        &MfpConfig {
            max_iters: 300,
            tol: 1e-5,
            ..Default::default()
        },
    );
    let mae_net = result.grid.mean_abs_diff(&reference);
    println!(
        "\nMFP + trained SDNet : {} iterations, MAE vs multigrid = {:.4}",
        result.iterations, mae_net
    );

    // Same predictor with the numerical oracle, for calibration.
    let oracle = OracleSolver::new(spec, 1e-9);
    let result_oracle = Mfp::new(&oracle, domain).run(
        &bc,
        &MfpConfig {
            max_iters: 300,
            tol: 1e-7,
            ..Default::default()
        },
    );
    let mae_oracle = result_oracle.grid.mean_abs_diff(&reference);
    println!(
        "MFP + oracle solver : {} iterations, MAE vs multigrid = {:.6}",
        result_oracle.iterations, mae_oracle
    );

    // Sanity: the boundary condition really is respected.
    let coords = boundary_coords(domain.ny(), domain.nx());
    let bc_err: f64 = coords
        .iter()
        .enumerate()
        .map(|(k, &(j, i))| (result.grid.get(j, i) - bc.as_slice()[k]).abs())
        .fold(0.0, f64::max);
    println!("max boundary violation: {bc_err:.2e}");
}
