//! Time-dependent extension: the heat equation stepped with the Mosaic
//! Flow predictor.
//!
//! The paper hypothesizes (§5.3, "Algorithmic challenges") that Mosaic
//! Flow with one-level Schwarz is well suited to *time-dependent* PDEs,
//! because information only needs to travel between neighboring subdomains
//! per step. This example makes that concrete: implicit Euler for
//! `∂u/∂t = α Δu` turns each step into the shifted elliptic problem
//!
//! ```text
//! σ u^{n+1} − Δ u^{n+1} = σ uⁿ,     σ = 1/(α·Δt)
//! ```
//!
//! which the MFP solves with the shifted-operator oracle. Every timestep
//! is verified against a direct global implicit-Euler solve, and the
//! Schwarz iteration counts show the σ-shift localizing the problem (far
//! fewer iterations than a steady Laplace solve on the same domain).
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use mosaic_flow::numerics::{solve_shifted_sor, Poisson};
use mosaic_flow::prelude::*;
use mosaic_flow::tensor::Tensor;

fn main() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let domain = DomainSpec::new(spec, 4, 2); // 2x1 spatial units
    let (ny, nx, h) = (domain.ny(), domain.nx(), domain.h());
    println!(
        "heat equation on a {}x{} plate ({}x{} grid)",
        2.0, 1.0, nx, ny
    );

    // Initial condition: two Gaussian hot blobs; walls held at 0.
    let blob = |x: f64, y: f64, cx: f64, cy: f64, w: f64| {
        (-((x - cx).powi(2) + (y - cy).powi(2)) / (2.0 * w * w)).exp()
    };
    let mut u = Tensor::from_fn(ny, nx, |j, i| {
        let (x, y) = (i as f64 * h, j as f64 * h);
        1.5 * blob(x, y, 0.6, 0.5, 0.12) + 1.0 * blob(x, y, 1.4, 0.4, 0.1)
    });
    // Dirichlet walls at 0.
    for i in 0..nx {
        u.set(0, i, 0.0);
        u.set(ny - 1, i, 0.0);
    }
    for j in 0..ny {
        u.set(j, 0, 0.0);
        u.set(j, nx - 1, 0.0);
    }

    let alpha = 1.0;
    let dt = 2e-3;
    let sigma = 1.0 / (alpha * dt);
    let steps = 10;
    let bc = Tensor::zeros(1, domain.boundary_len());
    let oracle = OracleSolver::new(spec, 1e-10);
    let mfp = Mfp::new(&oracle, domain);
    let cfg = MfpConfig {
        max_iters: 400,
        tol: 1e-8,
        ..Default::default()
    };

    println!("\nimplicit Euler, dt = {dt}, sigma = {sigma:.0}");
    println!("step   t      max(u)   energy     Schwarz iters  MAE vs direct solve");
    let mut direct = u.clone();
    for step in 1..=steps {
        // MFP step.
        let forcing = u.scale(sigma);
        let res = mfp.run_shifted(&bc, sigma, Some(&forcing), &cfg);
        u = res.grid.clone();

        // Direct global implicit-Euler step for verification.
        let fdir = direct.scale(sigma);
        let (dnext, st) =
            solve_shifted_sor(&Poisson { f: fdir, h }, sigma, &direct, 1.5, 100_000, 1e-10);
        assert!(st.converged);
        direct = dnext;

        let energy: f64 = u.as_slice().iter().map(|v| v * v).sum::<f64>() * h * h;
        println!(
            "{:4}  {:5.3}  {:7.4}  {:9.5}  {:13}  {:.2e}",
            step,
            step as f64 * dt,
            u.norm_linf(),
            energy,
            res.iterations,
            u.mean_abs_diff(&direct)
        );
    }

    // Physics sanity: diffusion decays the peak and the energy.
    println!("\nheat spreads and decays (max and energy must fall monotonically);");
    println!("each timestep needed only a handful of Schwarz iterations because the");
    println!("implicit-Euler shift makes the subproblems local — the paper's 5.3");
    println!("hypothesis about time-dependent PDEs, demonstrated.");

    // Compare against steady Laplace iteration count on the same domain.
    let gp_like = mosaic_flow::numerics::boundary::boundary_from_fn(ny, nx, |t| {
        (2.0 * std::f64::consts::PI * t).sin()
    });
    let steady = mfp.run(
        &gp_like,
        &MfpConfig {
            max_iters: 2000,
            tol: 1e-8,
            ..Default::default()
        },
    );
    println!(
        "\nfor scale: a steady Laplace solve on this domain needs {} iterations",
        steady.iterations
    );
}
