//! Distributed data-parallel SDNet training (Algorithm 1) on simulated
//! devices, with the paper's learning-rate scaling rules.
//!
//! Trains the same model on 1, 2 and 4 simulated devices and reports the
//! per-epoch validation MSE, the gradient-allreduce volume, and the
//! effect of the fused single allreduce vs one allreduce per loss term.
//!
//! ```text
//! cargo run --release --example train_ddp
//! ```

use mosaic_flow::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let dataset = Dataset::generate(spec, 96, 3);
    let (train, val) = dataset.split(0.875);
    println!("dataset: {} train / {} val", train.len(), val.len());

    let mut config = SdNetConfig::small(spec.boundary_len());
    config.conv_channels = vec![4];
    config.hidden = vec![32, 32];
    let template = SdNet::new(config, &mut ChaCha8Rng::seed_from_u64(0));
    println!("SDNet parameters: {}\n", template.count_params());

    let epochs = 12;
    let cfg = TrainConfig {
        epochs,
        batch_size: 4,
        qd: 32,
        qc: 8,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 4e-3,
            ..LrSchedule::paper_default(epochs * 20)
        },
        opt: OptKind::Lamb(0.0),
        seed: 0,
        clip_norm: None,
    };

    println!("devices  final val MSE  epochs/s  allreduce MB/rank  (LR scaled by sqrt(P))");
    for world in [1usize, 2, 4] {
        let t0 = std::time::Instant::now();
        let res = train_ddp(world, &template, &train, &val, &cfg, GradSync::Fused);
        let secs = t0.elapsed().as_secs_f64();
        let mb = res.comm_stats[0].bytes_sent as f64 / 1e6;
        println!(
            "{:7}  {:13.5}  {:8.2}  {:17.2}",
            world,
            res.logs.last().unwrap().val_mse,
            epochs as f64 / secs,
            mb
        );
    }

    // Ablation: fused single allreduce (Algorithm 1) vs per-loss sync.
    println!("\ngradient sync ablation on 2 devices:");
    for (name, sync) in [
        ("fused (Algorithm 1)", GradSync::Fused),
        ("per-loss", GradSync::PerLoss),
    ] {
        let res = train_ddp(2, &template, &train, &val, &cfg, sync);
        println!(
            "  {:20}  val MSE {:.5}  msgs/rank {:6}  bytes/rank {}",
            name,
            res.logs.last().unwrap().val_mse,
            res.comm_stats[0].msgs_sent,
            res.comm_stats[0].bytes_sent
        );
    }
    println!("\n(identical val MSE, half the collectives: the fused allreduce");
    println!(" preserves SGD semantics while paying one collective per step)");
}
