//! Electrostatic potential in a long micro-channel: batched vs unbatched
//! Mosaic Flow inference (the device-level parallelism of §4.1).
//!
//! A 4×0.5 channel has its left electrode at +1 V, its right electrode at
//! −1 V, and insulating-ish linearly graded top/bottom walls. The Laplace
//! equation governs the potential. The example runs the MFP both one
//! subdomain at a time (the original baseline) and with batched sweeps,
//! reporting the per-iteration speedup — the Fig. 8 effect in miniature.
//!
//! ```text
//! cargo run --release --example electrostatics
//! ```

use mosaic_flow::numerics::boundary::{boundary_coords, grid_with_boundary};
use mosaic_flow::numerics::{solve_dirichlet, Poisson};
use mosaic_flow::prelude::*;
use mosaic_flow::tensor::Tensor;
use std::time::Instant;

fn main() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let domain = DomainSpec::new(spec, 8, 1);
    println!(
        "channel: {}x{} spatial units, {} overlapping subdomains",
        domain.sx as f64 * spec.spatial,
        domain.sy as f64 * spec.spatial,
        domain.subdomains().len()
    );

    // Boundary: +1 on the left electrode, -1 on the right, linear grade on
    // top/bottom walls so the BC is continuous at the corners.
    let coords = boundary_coords(domain.ny(), domain.nx());
    let width = (domain.nx() - 1) as f64;
    let values: Vec<f64> = coords
        .iter()
        .map(|&(_, i)| 1.0 - 2.0 * i as f64 / width)
        .collect();
    let bc = Tensor::from_vec(1, values.len(), values);

    // Reference solution.
    let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
    let (reference, stats) = solve_dirichlet(
        &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
        &guess,
        1e-9,
    );
    assert!(stats.converged);

    let oracle = OracleSolver::new(spec, 1e-8);
    let mfp = Mfp::new(&oracle, domain);
    let iters = 40;

    let t0 = Instant::now();
    let unbatched = mfp.run(
        &bc,
        &MfpConfig {
            max_iters: iters,
            tol: 0.0,
            batched: false,
            target: None,
            coarse_init: false,
        },
    );
    let t_unbatched = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let batched = mfp.run(
        &bc,
        &MfpConfig {
            max_iters: iters,
            tol: 0.0,
            batched: true,
            target: None,
            coarse_init: false,
        },
    );
    let t_batched = t1.elapsed().as_secs_f64();

    println!("\n{iters} iterations each:");
    println!(
        "  unbatched: {:.3} s  ({:.2} ms/iteration)",
        t_unbatched,
        1e3 * t_unbatched / iters as f64
    );
    println!(
        "  batched  : {:.3} s  ({:.2} ms/iteration)",
        t_batched,
        1e3 * t_batched / iters as f64
    );
    println!(
        "  results identical: {}",
        batched.grid.allclose(&unbatched.grid, 1e-12)
    );

    println!(
        "\nMAE vs multigrid reference: {:.6}",
        batched.grid.mean_abs_diff(&reference)
    );

    // The exact solution of this BVP is the linear potential ramp — a
    // strong analytic cross-check.
    let exact = Tensor::from_fn(domain.ny(), domain.nx(), |_, i| {
        1.0 - 2.0 * i as f64 / width
    });
    println!(
        "MAE vs analytic linear ramp: {:.6}",
        batched.grid.mean_abs_diff(&exact)
    );

    // Field strength |E| = |∇u| at the channel center, via central
    // differences on the recovered potential.
    let (jc, ic) = (domain.ny() / 2, domain.nx() / 2);
    let h = domain.h();
    let ex = (batched.grid.get(jc, ic + 1) - batched.grid.get(jc, ic - 1)) / (2.0 * h);
    let ey = (batched.grid.get(jc + 1, ic) - batched.grid.get(jc - 1, ic)) / (2.0 * h);
    println!("field at center: ({ex:.4}, {ey:.4})  (analytic: (-0.5, 0))");
}
