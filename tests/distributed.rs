//! Integration tests of the distributed stack: the Algorithm-2 predictor
//! across processor counts and the simulated cluster underneath it.

use mosaic_flow::dist::{Cluster, PerfModel};
use mosaic_flow::numerics::boundary::{boundary_coords, grid_with_boundary};
use mosaic_flow::numerics::{solve_dirichlet, Poisson};
use mosaic_flow::prelude::*;
use mosaic_flow::tensor::Tensor;

fn spec() -> SubdomainSpec {
    SubdomainSpec { m: 9, spatial: 0.5 }
}

fn gp_bc(domain: &DomainSpec, seed: u64) -> Tensor {
    use rand::SeedableRng;
    let mut sampler = BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.5, 1.0), true);
    sampler.sample(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed))
}

fn reference(domain: &DomainSpec, bc: &Tensor) -> Tensor {
    let guess = grid_with_boundary(domain.ny(), domain.nx(), bc);
    let (sol, st) = solve_dirichlet(
        &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
        &guess,
        1e-9,
    );
    assert!(st.converged);
    sol
}

#[test]
fn distributed_mfp_is_correct_for_1_2_4_8_ranks() {
    let domain = DomainSpec::new(spec(), 4, 2);
    let oracle = OracleSolver::new(spec(), 1e-9);
    let bc = gp_bc(&domain, 1);
    let refsol = reference(&domain, &bc);
    for ranks in [1usize, 2, 4, 8] {
        let res = run_distributed(
            &oracle,
            &domain,
            &bc,
            ranks,
            &DistMfpConfig {
                max_iters: 800,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(res.converged, "P={ranks} did not converge");
        let mae = res.grid.mean_abs_diff(&refsol);
        assert!(mae < 1e-3, "P={ranks}: MAE {mae}");
        assert_eq!(res.reports.len(), ranks);
    }
}

#[test]
fn iteration_count_grows_mildly_with_rank_count() {
    // Table 4's qualitative claim: relaxed synchronization costs a few
    // percent more iterations, not multiples.
    let domain = DomainSpec::new(spec(), 4, 4);
    let oracle = OracleSolver::new(spec(), 1e-9);
    let bc = gp_bc(&domain, 2);
    let iters = |ranks: usize| {
        let res = run_distributed(
            &oracle,
            &domain,
            &bc,
            ranks,
            &DistMfpConfig {
                max_iters: 1500,
                tol: 1e-7,
                ..Default::default()
            },
        );
        assert!(res.converged, "P={ranks} did not converge");
        res.iterations
    };
    let i1 = iters(1);
    let i4 = iters(4);
    let i16 = iters(16);
    assert!(i4 >= i1, "P=4 ({i4}) vs P=1 ({i1})");
    assert!(i16 >= i4, "P=16 ({i16}) vs P=4 ({i4})");
    assert!(
        i16 <= i1 * 3,
        "relaxation should cost a mild factor, got {i1} -> {i16}"
    );
}

#[test]
fn halo_bytes_per_rank_shrink_with_more_ranks() {
    // The alpha-beta analysis (§4.3): per-rank bandwidth scales with
    // N/sqrt(P); fixed global domain + more ranks = fewer bytes per rank
    // per iteration.
    let domain = DomainSpec::new(spec(), 8, 8);
    let oracle = OracleSolver::new(spec(), 1e-9);
    let bc = gp_bc(&domain, 3);
    let bytes_per_iter = |ranks: usize| {
        let res = run_distributed(
            &oracle,
            &domain,
            &bc,
            ranks,
            &DistMfpConfig {
                max_iters: 5,
                tol: 0.0,
                ..Default::default()
            },
        );
        // Interior ranks have the most neighbors; take the max of the
        // iteration-phase (halo) traffic only.
        res.reports
            .iter()
            .map(|r| r.halo.bytes_sent / res.iterations.max(1))
            .max()
            .unwrap()
    };
    // Compare two processor counts that both have interior ranks (8
    // neighbors), so the per-rank maximum is apples-to-apples.
    let b16 = bytes_per_iter(16);
    let b64 = bytes_per_iter(64);
    assert!(
        b64 < b16,
        "per-rank halo bytes should shrink with sqrt(P): P=16 {b16} vs P=64 {b64}"
    );
    // Roughly the sqrt(P) law: doubling sqrt(P) should halve the bytes
    // (allow generous slack for lattice discreteness).
    let ratio = b16 as f64 / b64 as f64;
    assert!((1.4..3.0).contains(&ratio), "scaling ratio {ratio}");
}

#[test]
fn modeled_comm_time_matches_cost_formula_shape() {
    let model = PerfModel::a30_cluster();
    let domain = DomainSpec::new(spec(), 4, 4);
    let oracle = OracleSolver::new(spec(), 1e-9);
    let bc = gp_bc(&domain, 4);
    let res = run_distributed(
        &oracle,
        &domain,
        &bc,
        4,
        &DistMfpConfig {
            max_iters: 20,
            tol: 0.0,
            ..Default::default()
        },
    );
    // Measured-counter modeled time and the closed-form §4.3 cost must
    // agree within an order of magnitude (the formula ignores edge ranks
    // and lattice detail).
    let measured: f64 = res
        .reports
        .iter()
        .map(|r| model.time_for(&r.comm))
        .fold(0.0, f64::max);
    let formula = model.mfp_comm_cost(res.iterations, domain.nx(), 2, 4);
    assert!(measured > 0.0 && formula > 0.0);
    let ratio = measured / formula;
    assert!(
        (0.05..20.0).contains(&ratio),
        "counter-based {measured:.2e} vs formula {formula:.2e} (ratio {ratio:.2})"
    );
}

#[test]
fn cluster_supports_mixed_collectives_under_load() {
    // Stress the communicator the way the trainer and MFP do together:
    // interleaved halo exchanges, allreduces and allgathers.
    let outs = Cluster::run(6, |comm| {
        let rank = comm.rank();
        let mut acc = 0.0;
        for it in 0..50 {
            let peers: Vec<(usize, Vec<f64>)> = (0..6)
                .filter(|&p| p != rank)
                .map(|p| (p, vec![rank as f64 + it as f64; 8]))
                .collect();
            let got = comm.exchange(&peers, it);
            acc += got.iter().map(|(_, v)| v[0]).sum::<f64>();
            let mut buf = vec![1.0; 16];
            comm.allreduce_sum(&mut buf);
            assert_eq!(buf[0], 6.0);
        }
        let gathered = comm.allgather(&[acc]);
        gathered.iter().map(|v| v[0]).sum::<f64>()
    });
    // Every rank computed the same global total.
    for w in outs.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-9);
    }
}

#[test]
fn boundary_condition_is_exact_in_distributed_result() {
    let domain = DomainSpec::new(spec(), 2, 2);
    let oracle = OracleSolver::new(spec(), 1e-9);
    let bc = gp_bc(&domain, 5);
    let res = run_distributed(
        &oracle,
        &domain,
        &bc,
        4,
        &DistMfpConfig {
            max_iters: 50,
            tol: 0.0,
            ..Default::default()
        },
    );
    let coords = boundary_coords(domain.ny(), domain.nx());
    for (k, &(j, i)) in coords.iter().enumerate() {
        assert!(
            (res.grid.get(j, i) - bc.as_slice()[k]).abs() < 1e-12,
            "boundary point {k} modified"
        );
    }
}
