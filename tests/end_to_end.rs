//! Full-pipeline integration test: data generation → physics-informed
//! training → Mosaic Flow inference on a larger unseen domain.

use mosaic_flow::numerics::boundary::grid_with_boundary;
use mosaic_flow::numerics::{solve_dirichlet, Poisson};
use mosaic_flow::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn trained_net(spec: SubdomainSpec, train: &Dataset, val: &Dataset, epochs: usize) -> SdNet {
    let mut config = SdNetConfig::small(spec.boundary_len());
    config.conv_channels = vec![4];
    config.hidden = vec![32, 32];
    let mut net = SdNet::new(config, &mut ChaCha8Rng::seed_from_u64(0));
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        qd: 32,
        qc: 8,
        pde_weight: 0.02,
        schedule: LrSchedule {
            max_lr: 6e-3,
            ..LrSchedule::paper_default(epochs * 10)
        },
        opt: OptKind::Adam,
        seed: 0,
        clip_norm: None,
    };
    train_single(&mut net, train, val, &cfg);
    net
}

#[test]
fn trained_sdnet_beats_untrained_as_mfp_subdomain_solver() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let dataset = Dataset::generate(spec, 90, 11);
    let (train, val) = dataset.split(0.9);

    // Unseen, larger domain (2x1 subdomains) with a smooth GP boundary.
    let domain = DomainSpec::new(spec, 2, 1);
    let mut sampler = BoundarySampler::new(domain.boundary_len(), (0.5, 0.9), (0.4, 0.8), true);
    let bc = sampler.sample(&mut ChaCha8Rng::seed_from_u64(5));
    let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
    let (reference, st) = solve_dirichlet(
        &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
        &guess,
        1e-9,
    );
    assert!(st.converged);

    let run_mae = |net: SdNet| {
        let solver = NeuralSolver::new(net, spec);
        let res = Mfp::new(&solver, domain).run(
            &bc,
            &MfpConfig {
                max_iters: 120,
                tol: 1e-5,
                ..Default::default()
            },
        );
        res.grid.mean_abs_diff(&reference)
    };

    let mut cfg0 = SdNetConfig::small(spec.boundary_len());
    cfg0.conv_channels = vec![4];
    cfg0.hidden = vec![32, 32];
    let untrained = SdNet::new(cfg0, &mut ChaCha8Rng::seed_from_u64(0));
    let mae_untrained = run_mae(untrained);

    let trained = trained_net(spec, &train, &val, 40);
    let mae_trained = run_mae(trained);

    assert!(
        mae_trained < mae_untrained * 0.5,
        "training did not help the MFP: untrained {mae_untrained:.4} vs trained {mae_trained:.4}"
    );
}

#[test]
fn oracle_mfp_matches_global_multigrid_on_gp_boundaries() {
    // Fig.-1-style check: MFP (with the numerical subdomain solver) vs a
    // direct global solve, on several GP-sampled boundary conditions.
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let domain = DomainSpec::new(spec, 2, 2);
    let oracle = OracleSolver::new(spec, 1e-9);
    let mfp = Mfp::new(&oracle, domain);
    let mut sampler = BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.5, 1.0), true);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    for trial in 0..3 {
        let bc = sampler.sample(&mut rng);
        let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
        let (reference, st) = solve_dirichlet(
            &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
            &guess,
            1e-9,
        );
        assert!(st.converged);
        let res = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 600,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(res.converged, "trial {trial} did not converge");
        let mae = res.grid.mean_abs_diff(&reference);
        assert!(mae < 5e-4, "trial {trial}: MAE {mae}");
    }
}

#[test]
fn ddp_trained_model_is_identical_across_sync_strategies() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let dataset = Dataset::generate(spec, 24, 13);
    let (train, val) = dataset.split(0.75);
    let mut config = SdNetConfig::small(spec.boundary_len());
    config.conv_channels = vec![2];
    config.hidden = vec![16, 16];
    let template = SdNet::new(config, &mut ChaCha8Rng::seed_from_u64(1));
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 2,
        qd: 8,
        qc: 4,
        pde_weight: 0.05,
        schedule: LrSchedule::paper_default(40),
        opt: OptKind::Sgd(0.0),
        seed: 7,
        clip_norm: None,
    };
    let fused = train_ddp(2, &template, &train, &val, &cfg, GradSync::Fused);
    let perloss = train_ddp(2, &template, &train, &val, &cfg, GradSync::PerLoss);
    for (a, b) in fused.params_flat.iter().zip(&perloss.params_flat) {
        assert!(
            (a - b).abs() < 1e-10,
            "sync strategies diverged: {a} vs {b}"
        );
    }
    // But the fused variant used (almost exactly) half the gradient
    // allreduce volume; the small remainder is the per-epoch batch-count
    // scalar allreduce present in both runs.
    let fb = fused.comm_stats[0].bytes_sent;
    let pb = perloss.comm_stats[0].bytes_sent;
    assert!(fb < pb && pb <= 2 * fb, "fused {fb} vs per-loss {pb}");
}
