//! End-to-end tests of the `mosaic-flow` CLI binary: train → save → info →
//! eval → solve, exercising the model-library workflow the paper
//! envisions.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mosaic-flow"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mf_cli_{}_{name}", std::process::id()))
}

#[test]
fn usage_on_no_args() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn train_info_eval_solve_pipeline() {
    let model = tmp("model.mfn");
    let grid = tmp("grid.csv");

    // Tiny training run — we only need a valid model file.
    let out = cli()
        .args([
            "train",
            "--samples",
            "24",
            "--epochs",
            "2",
            "--m",
            "9",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = cli()
        .args(["info", "--model", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parameters"), "info output: {stdout}");
    assert!(stdout.contains("m = 9"));

    let out = cli()
        .args(["eval", "--model", model.to_str().unwrap(), "--samples", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("val MSE"));

    // Solve with the trained model on a 2x1 domain and write the grid.
    let out = cli()
        .args([
            "solve",
            "--domain",
            "2x1",
            "--model",
            model.to_str().unwrap(),
            "--out",
            grid.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "solve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(&grid).unwrap();
    // 2x1 atomic subdomains of m=9: 17 rows of 33 columns.
    let rows: Vec<&str> = csv.lines().collect();
    assert_eq!(rows.len(), 9);
    assert_eq!(rows[0].split(',').count(), 17);

    let _ = std::fs::remove_file(&model);
    let _ = std::fs::remove_file(&grid);
}

#[test]
fn solve_with_oracle_and_multiple_ranks() {
    let out = cli()
        .args([
            "solve",
            "--domain",
            "2x2",
            "--ranks",
            "4",
            "--boundary",
            "gp:3",
            "--coarse-init",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 rank(s)"), "{stdout}");
    // The oracle solve must be accurate.
    let mae_line = stdout.lines().find(|l| l.contains("MAE")).unwrap();
    let mae: f64 = mae_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(mae < 1e-3, "oracle solve MAE too high: {mae}");
}

#[test]
fn info_rejects_garbage_file() {
    let path = tmp("garbage.mfn");
    std::fs::write(&path, b"definitely not a model").unwrap();
    let out = cli()
        .args(["info", "--model", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&path);
}
