//! Allocation-regression tests for the pooled autodiff hot path.
//!
//! The lean engine's contract is that a fixed training loop reaches a
//! zero-allocation steady state: step 1 populates the graph's buffer
//! pool, and every later step of the same shape is served entirely from
//! recycled buffers — zero pool misses, zero heap allocations. These
//! tests pin that contract at the workspace level so a change anywhere
//! in the tensor/autodiff/nn stack that silently reintroduces per-step
//! allocation fails CI.

use mosaic_flow::autodiff::Graph;
use mosaic_flow::nn::{Linear, Params};
use mosaic_flow::tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fixed two-layer MLP regression step: forward, MSE loss, full
/// backward through both layers. Returns the loss value.
fn two_layer_step(g: &mut Graph, ps: &mut Params, l1: &Linear, l2: &Linear, lr: f64) -> f64 {
    let x = Tensor::from_fn(8, 6, |r, c| ((r * 6 + c) as f64 * 0.13).sin());
    let y = Tensor::from_fn(8, 1, |r, _| (r as f64 * 0.4).cos());
    let bound = ps.bind(g);
    let xv = g.constant_from(&x);
    let h = l1.forward(g, &bound, xv);
    let h = g.gelu(h);
    let h = g.tanh(h);
    let out = l2.forward(g, &bound, h);
    let target = g.constant_from(&y);
    let loss = g.mse(out, target);
    let grads = g.grad(loss, bound.all_vars());
    // SGD update so later steps see genuinely different parameter values
    // (same shapes, different data — the pool must still fully absorb it).
    let step: Vec<Tensor> = grads.iter().map(|&gv| g.value(gv).clone()).collect();
    for (p, gt) in ps.tensors_mut().zip(&step) {
        p.axpy(-lr, gt);
    }
    g.value(loss).get(0, 0)
}

fn fresh_net() -> (Params, Linear, Linear) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut ps = Params::new();
    let l1 = Linear::new(&mut ps, &mut rng, "l1", 6, 16, true);
    let l2 = Linear::new(&mut ps, &mut rng, "l2", 16, 1, true);
    (ps, l1, l2)
}

/// Steps 2..N of a fixed two-layer training loop must be served entirely
/// from the buffer pool: zero misses, zero heap allocations.
#[test]
fn warm_two_layer_loop_has_zero_pool_misses() {
    let (mut ps, l1, l2) = fresh_net();
    let mut g = Graph::new();
    let mut pool_before = g.pool_stats();
    let mut allocs_before = g.heap_allocs();
    let mut losses = Vec::new();
    for step in 1..=6 {
        g.clear();
        losses.push(two_layer_step(&mut g, &mut ps, &l1, &l2, 1e-2));
        let d = g.pool_stats().since(&pool_before);
        let allocs = g.heap_allocs() - allocs_before;
        if step == 1 {
            assert!(d.misses > 0, "cold step must populate the pool");
        } else {
            assert_eq!(d.misses, 0, "step {step} missed the pool");
            assert_eq!(allocs, 0, "step {step} touched the heap allocator");
            assert!(d.hits > 0, "step {step} should recycle buffers");
        }
        pool_before = g.pool_stats();
        allocs_before = g.heap_allocs();
    }
    // Sanity: the loop is actually training, not a no-op.
    assert!(
        losses.last().unwrap() < &losses[0],
        "loss should decrease: {losses:?}"
    );
}

/// Checkpointed segments evict and rematerialize values but must not
/// break the steady state: eviction returns buffers to the same pool the
/// remat draws from.
#[test]
fn warm_loop_stays_allocation_free_with_checkpointing() {
    let (mut ps, l1, l2) = fresh_net();
    let mut g = Graph::new();
    g.set_checkpointing(true);
    let mut pool_before = g.pool_stats();
    let mut allocs_before = g.heap_allocs();
    for step in 1..=4 {
        g.clear();
        two_layer_step(&mut g, &mut ps, &l1, &l2, 1e-2);
        let d = g.pool_stats().since(&pool_before);
        let allocs = g.heap_allocs() - allocs_before;
        if step >= 2 {
            assert_eq!(d.misses, 0, "ckpt step {step} missed the pool");
            assert_eq!(allocs, 0, "ckpt step {step} touched the heap");
        }
        pool_before = g.pool_stats();
        allocs_before = g.heap_allocs();
    }
}

/// The end-to-end SDNet training step (data pass + PDE triple-backward)
/// reaches the same steady state through `local_gradients`' persistent
/// per-thread graph.
#[test]
fn warm_sdnet_steps_report_zero_misses_in_stats() {
    use mosaic_flow::data::{BatchSampler, Dataset, SubdomainSpec};
    use mosaic_flow::nn::{SdNet, SdNetConfig};
    use mosaic_flow::train::local_gradients;

    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let ds = Dataset::generate(spec, 2, 0);
    let net = SdNet::new(
        SdNetConfig::small(spec.boundary_len()),
        &mut ChaCha8Rng::seed_from_u64(0),
    );
    let mut sampler = BatchSampler::new(2, 6, 6, 0);
    let batch = sampler.make_batch(&ds, &[0, 1]);

    let (_, _, first) = local_gradients(&net, &batch, 1.0);
    assert!(first.pool_misses > 0, "cold step must populate the pool");
    for step in 2..=4 {
        let (_, _, warm) = local_gradients(&net, &batch, 1.0);
        assert_eq!(warm.pool_misses, 0, "step {step} missed the pool");
        assert_eq!(warm.heap_allocs, 0, "step {step} touched the heap");
    }
}
