//! Acceptance test for the observability stack: a fault-injected
//! distributed MFP run must leave behind a post-mortem bundle whose
//! merged trace connects the failing rank's last halo exchange.
//!
//! Single `#[test]` on purpose: the flight recorder, span/flow
//! collectors, and dump directory are process-wide, and this binary is
//! its own process, so the test owns that state outright.

use mosaic_flow::dist::{CrashAt, FaultPlan, RetryPolicy};
use mosaic_flow::mfp::{try_run_distributed, DistMfpConfig, DomainSpec, OracleSolver};
use mosaic_flow::numerics::boundary::boundary_coords;
use mosaic_flow::observe::{flow_dst, flow_src, postmortem};
use mosaic_flow::tensor::Tensor;
use std::time::Duration;

fn harmonic_bc(d: &DomainSpec) -> Tensor {
    let h = d.h();
    let f = |x: f64, y: f64| x * x - y * y + 0.25 * x;
    let coords = boundary_coords(d.ny(), d.nx());
    Tensor::from_vec(
        1,
        coords.len(),
        coords
            .iter()
            .map(|&(j, i)| f(i as f64 * h, j as f64 * h))
            .collect(),
    )
}

/// Acceptance criterion (ISSUE 4): crash a rank mid-MFP and assert —
/// programmatically, via `read_bundle` — that the bundle names the
/// failing rank, records the last step it reached, and contains at
/// least one cross-rank flow event touching that rank (its last halo
/// exchanges).
#[test]
fn crashed_mfp_run_dumps_a_bundle_naming_the_failing_rank() {
    let parent = std::env::temp_dir().join(format!("mf_observe_accept_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&parent);
    std::fs::create_dir_all(&parent).unwrap();

    // Fresh process-wide state, then arm dumping and flow tracing.
    mosaic_flow::observe::clear_recorder();
    mosaic_flow::telemetry::drain_spans();
    mosaic_flow::telemetry::drain_flows();
    mosaic_flow::telemetry::set_tracing(true);
    postmortem::set_dump_dir(Some(parent.clone()));

    let spec = mosaic_flow::data::SubdomainSpec { m: 9, spatial: 0.5 };
    let d = DomainSpec::new(spec, 2, 2);
    let oracle = OracleSolver::new(spec, 1e-10);
    let bc = harmonic_bc(&d);
    let cfg = DistMfpConfig {
        max_iters: 60,
        tol: 1e-8,
        plan: FaultPlan {
            crash: Some(CrashAt {
                rank: 3,
                after_sends: 10,
            }),
            retry: RetryPolicy {
                timeout: Duration::from_millis(20),
                max_retries: 20,
            },
            ..FaultPlan::none()
        },
        ..Default::default()
    };
    let err = try_run_distributed(&oracle, &d, &bc, 4, &cfg).unwrap_err();

    postmortem::set_dump_dir(None);
    mosaic_flow::telemetry::set_tracing(false);
    assert_eq!(err.origin(), 3, "{err}");

    // Exactly one bundle, written by the cluster-failure path.
    let bundles: Vec<_> = std::fs::read_dir(&parent)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("observe-dump-"))
        })
        .collect();
    assert_eq!(bundles.len(), 1, "expected one bundle, got {bundles:?}");

    let b = postmortem::read_bundle(&bundles[0]).unwrap();
    assert_eq!(b.reason, "cluster-failure");
    assert_eq!(
        b.failing_rank,
        Some(3),
        "summary must name the crashed rank"
    );
    assert!(
        b.detail.contains("rank 3"),
        "detail should mention the origin: {:?}",
        b.detail
    );
    assert!(
        b.config.contains("fault plan"),
        "config.txt: {:?}",
        b.config
    );

    // The failing rank's recorder was flushed and reached at least one
    // MFP iteration before dying.
    let (_, last_step) = b
        .last_step(3)
        .expect("bundle has no summary line for rank 3");
    assert!(
        b.ranks.iter().any(|r| r.rank == 3 && r.events > 0),
        "rank 3 flight-recorder ring is empty"
    );
    // Rank 3 crashes after 10 sends, so it got past iteration 0; the
    // last recorded step must be a real iteration index, not garbage.
    assert!(last_step < 60, "implausible last step {last_step}");

    // The merged trace carries flow events connecting the failing
    // rank's halo traffic: at least one send out of rank 3 and the
    // matching Start/Finish pairing survives into trace.json.
    let touching: Vec<_> = b
        .flows
        .iter()
        .filter(|f| flow_src(f.id) == 3 || flow_dst(f.id) == 3)
        .collect();
    assert!(
        !touching.is_empty(),
        "no flow events touch rank 3 (of {} total)",
        b.flows.len()
    );
    assert!(
        touching.iter().any(|f| flow_src(f.id) == 3),
        "no outbound flow from the failing rank"
    );
    // Ring events appear on the merged timeline as zero-length slices.
    assert!(
        b.spans
            .iter()
            .any(|s| s.rank == 3 && s.name.starts_with("rec.")),
        "rank 3 ring events missing from trace.json"
    );

    let _ = std::fs::remove_dir_all(&parent);
}
