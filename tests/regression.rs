//! Golden-fixture regression tests: seeded MFP residual trajectories and
//! trainer loss curves are pinned to committed fixtures under
//! `tests/fixtures/`, so a refactor that silently shifts convergence
//! behaviour fails loudly here.
//!
//! Regenerate after an *intentional* numerical change with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test regression
//! ```

use mosaic_flow::data::{Dataset, SubdomainSpec};
use mosaic_flow::mfp::{run_distributed, DistMfpConfig, DomainSpec, OracleSolver};
use mosaic_flow::nn::{SdNet, SdNetConfig};
use mosaic_flow::opt::LrSchedule;
use mosaic_flow::tensor::Tensor;
use mosaic_flow::train::trainer::OptKind;
use mosaic_flow::train::{train_ddp, GradSync, TrainConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

/// Absolute tolerance scale for fixture comparison: values must match to
/// 1e-9 relative (1e-9 absolute for values below 1). Tight enough to
/// catch any change to the numerics, loose enough to tolerate a libm
/// with differently-rounded transcendentals.
const TOL: f64 = 1e-9;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn write_fixture(name: &str, header: &str, values: &[f64]) {
    let path = fixture_path(name);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for v in values {
        out.push_str(&format!("{v:.17e}\n"));
    }
    std::fs::write(&path, out).unwrap();
}

fn read_fixture(name: &str) -> Vec<f64> {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}\n(regenerate with UPDATE_FIXTURES=1 cargo test --test regression)",
            path.display()
        )
    });
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| l.trim().parse().unwrap())
        .collect()
}

/// Compare `got` against the named fixture, or rewrite the fixture when
/// `UPDATE_FIXTURES=1` is set.
fn check_fixture(name: &str, header: &str, got: &[f64]) {
    if std::env::var("UPDATE_FIXTURES").as_deref() == Ok("1") {
        write_fixture(name, header, got);
        return;
    }
    let want = read_fixture(name);
    assert_eq!(
        want.len(),
        got.len(),
        "{name}: value count changed ({} -> {}); regenerate with UPDATE_FIXTURES=1 if intended",
        want.len(),
        got.len()
    );
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        let tol = TOL * w.abs().max(1.0);
        assert!(
            (w - g).abs() <= tol,
            "{name}: value {i} drifted: fixture {w:.17e}, got {g:.17e} \
             (|diff| {:.3e} > tol {tol:.3e}); regenerate with UPDATE_FIXTURES=1 if intended",
            (w - g).abs()
        );
    }
}

#[test]
fn mfp_residual_trajectory_matches_fixture() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let d = DomainSpec::new(spec, 2, 2);
    let oracle = OracleSolver::new(spec, 1e-10);
    // Harmonic boundary x² − y² + x/4 along the domain walk.
    let h = d.h();
    let coords = mosaic_flow::numerics::boundary::boundary_coords(d.ny(), d.nx());
    let bc = Tensor::from_vec(
        1,
        coords.len(),
        coords
            .iter()
            .map(|&(j, i)| {
                let (x, y) = (i as f64 * h, j as f64 * h);
                x * x - y * y + 0.25 * x
            })
            .collect(),
    );
    // Fixed iteration count (tol checks still run every iteration) so the
    // trajectory length never depends on a convergence race.
    let res = run_distributed(
        &oracle,
        &d,
        &bc,
        4,
        &DistMfpConfig {
            max_iters: 25,
            tol: 1e-15,
            ..Default::default()
        },
    );
    assert_eq!(res.deltas.len(), 25);
    check_fixture(
        "mfp_residuals.txt",
        "Distributed MFP residual trajectory\n\
         domain 2x2 atoms (m=9), oracle solver 1e-10, 4 ranks, 25 iterations\n\
         one relative lattice change per line",
        &res.deltas,
    );
}

#[test]
fn trainer_loss_curve_matches_fixture() {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let ds = Dataset::generate(spec, 8, 1);
    let (train, val) = ds.split(0.75);
    let mut net_cfg = SdNetConfig::small(spec.boundary_len());
    net_cfg.conv_channels = vec![2];
    net_cfg.hidden = vec![12, 12];
    let template = SdNet::new(net_cfg, &mut ChaCha8Rng::seed_from_u64(3));
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 2,
        qd: 8,
        qc: 4,
        pde_weight: 0.05,
        schedule: LrSchedule::paper_default(10),
        opt: OptKind::Adam,
        seed: 0,
        clip_norm: None,
    };
    let res = train_ddp(2, &template, &train, &val, &cfg, GradSync::Fused);
    assert_eq!(res.logs.len(), 5);
    let mut values = Vec::new();
    for l in &res.logs {
        values.push(l.data_loss);
        values.push(l.pde_loss);
        values.push(l.val_mse);
    }
    check_fixture(
        "trainer_loss.txt",
        "2-rank DDP training curve (fused allreduce)\n\
         8 GP samples (6 train / 2 val), tiny SDNet seed 3, Adam, 5 epochs\n\
         three lines per epoch: data_loss, pde_loss, val_mse",
        &values,
    );
}
