//! Cross-crate property-based tests on the invariants the paper's
//! algorithms rely on.

use mosaic_flow::numerics::boundary::{boundary_coords, grid_with_boundary};
use mosaic_flow::numerics::{solve_dirichlet, Poisson};
use mosaic_flow::prelude::*;
use mosaic_flow::tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn spec() -> SubdomainSpec {
    SubdomainSpec { m: 9, spatial: 0.5 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The MFP with the oracle solver reproduces any harmonic polynomial:
    /// 5-point-exact harmonic functions are fixed points of the whole
    /// Schwarz machinery.
    #[test]
    fn oracle_mfp_reproduces_harmonic_polynomials(
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -1.0f64..1.0,
    ) {
        let domain = DomainSpec::new(spec(), 2, 1);
        let h = domain.h();
        // u = a(x² − y²) + b·xy + c·x is harmonic and 5-point exact.
        let f = |x: f64, y: f64| a * (x * x - y * y) + b * x * y + c * x;
        let coords = boundary_coords(domain.ny(), domain.nx());
        let bc = Tensor::from_vec(
            1,
            coords.len(),
            coords.iter().map(|&(j, i)| f(i as f64 * h, j as f64 * h)).collect(),
        );
        let exact =
            Tensor::from_fn(domain.ny(), domain.nx(), |j, i| f(i as f64 * h, j as f64 * h));
        let oracle = OracleSolver::new(spec(), 1e-10);
        let res = Mfp::new(&oracle, domain)
            .run(&bc, &MfpConfig { max_iters: 300, tol: 1e-9, ..Default::default() });
        let mae = res.grid.mean_abs_diff(&exact);
        prop_assert!(mae < 1e-5, "MAE {mae} for (a,b,c)=({a},{b},{c})");
    }

    /// Discrete maximum principle: the MFP solution never exceeds the
    /// boundary extremes (a property of the Laplace equation that any
    /// correct solver chain must preserve with the oracle).
    #[test]
    fn mfp_respects_the_maximum_principle(seed in 0u64..50) {
        let domain = DomainSpec::new(spec(), 2, 1);
        let mut sampler =
            BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.3, 0.8), true);
        let bc = sampler.sample(&mut ChaCha8Rng::seed_from_u64(seed));
        let lo = bc.as_slice().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bc.as_slice().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let oracle = OracleSolver::new(spec(), 1e-9);
        let res = Mfp::new(&oracle, domain)
            .run(&bc, &MfpConfig { max_iters: 400, tol: 1e-8, ..Default::default() });
        let tol = 1e-6 * (1.0 + hi.abs().max(lo.abs()));
        for v in res.grid.as_slice() {
            prop_assert!(*v >= lo - tol && *v <= hi + tol,
                "value {v} escapes boundary range [{lo}, {hi}]");
        }
    }

    /// Superposition: the Laplace problem is linear, so MFP(α·g) ≈
    /// α·MFP(g) when the subdomain solver is linear (the oracle is).
    #[test]
    fn oracle_mfp_is_linear_in_the_boundary_condition(alpha in 0.25f64..3.0) {
        let domain = DomainSpec::new(spec(), 2, 1);
        let mut sampler =
            BoundarySampler::new(domain.boundary_len(), (0.5, 0.9), (0.4, 0.8), true);
        let bc = sampler.sample(&mut ChaCha8Rng::seed_from_u64(9));
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, domain);
        let cfg = MfpConfig { max_iters: 300, tol: 1e-9, ..Default::default() };
        let base = mfp.run(&bc, &cfg);
        let scaled = mfp.run(&bc.scale(alpha), &cfg);
        let diff = scaled.grid.max_abs_diff(&base.grid.scale(alpha));
        prop_assert!(diff < 1e-4 * alpha.max(1.0), "superposition violated: {diff}");
    }

    /// Dataset ground truth always satisfies the discrete equation.
    #[test]
    fn dataset_samples_are_discretely_harmonic(seed in 0u64..30) {
        let s = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(s, 1, seed);
        let p = Poisson::laplace(s.m, s.m, s.h());
        let r = mosaic_flow::numerics::residual_norm(&p, &ds.samples[0].solution);
        prop_assert!(r < 1e-6, "residual {r}");
    }

    /// The global multigrid reference and the oracle MFP agree for random
    /// GP boundary conditions on non-square domains.
    #[test]
    fn mfp_matches_direct_solve_on_rectangular_domains(
        seed in 0u64..20,
        wide in prop::bool::ANY,
    ) {
        let (sx, sy) = if wide { (3, 1) } else { (1, 3) };
        let domain = DomainSpec::new(spec(), sx, sy);
        let mut sampler =
            BoundarySampler::new(domain.boundary_len(), (0.5, 0.9), (0.4, 0.8), true);
        let bc = sampler.sample(&mut ChaCha8Rng::seed_from_u64(seed));
        let guess = grid_with_boundary(domain.ny(), domain.nx(), &bc);
        let (reference, st) = solve_dirichlet(
            &Poisson::laplace(domain.ny(), domain.nx(), domain.h()),
            &guess,
            1e-9,
        );
        prop_assert!(st.converged);
        let oracle = OracleSolver::new(spec(), 1e-9);
        let res = Mfp::new(&oracle, domain)
            .run(&bc, &MfpConfig { max_iters: 600, tol: 1e-8, ..Default::default() });
        prop_assert!(res.converged);
        let mae = res.grid.mean_abs_diff(&reference);
        prop_assert!(mae < 1e-3, "MAE {mae} on {sx}x{sy} domain");
    }
}

// ---------------------------------------------------------------------------
// Fused in-place VJP kernels vs the unfused out-of-place legacy chains.
// ---------------------------------------------------------------------------

/// Ulp distance between two finite f64s of the same sign class.
fn ulps(a: f64, b: f64) -> u64 {
    let (x, y) = (a.to_bits() as i64, b.to_bits() as i64);
    // Map to a monotone integer line so the difference counts ulps even
    // across the ±0 boundary.
    let canon = |v: i64| if v < 0 { i64::MIN - v } else { v };
    canon(x).abs_diff(canon(y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The lean engine's fused VJPs (`TanhVjp`, the fused Gelu chain,
    /// `AddBias`, pooled `AddAcc` accumulation) must reproduce the legacy
    /// unfused out-of-place chains to ulp level: bitwise at first and
    /// second order through an elementwise tanh∘gelu stack.
    #[test]
    fn fused_vjps_match_unfused_bitwise_to_second_order(
        vals in prop::collection::vec(-2.5f64..2.5, 12),
    ) {
        let run = |lean: bool| {
            let mut g = if lean { Graph::new() } else { Graph::new_legacy() };
            let x = g.leaf(Tensor::row_vector(&vals));
            let t = g.tanh(x);
            let e = g.gelu(t);
            let s = g.sum(e);
            let d1 = g.grad(s, &[x])[0];
            let s1 = g.sum(d1);
            let d2 = g.grad(s1, &[x])[0];
            (g.value(d1).clone(), g.value(d2).clone())
        };
        let (lean1, lean2) = run(true);
        let (leg1, leg2) = run(false);
        for (a, b) in lean1.as_slice().iter().zip(leg1.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "order-1 mismatch: {} vs {}", a, b);
        }
        for (a, b) in lean2.as_slice().iter().zip(leg2.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "order-2 mismatch: {} vs {}", a, b);
        }
    }

    /// Weight gradients of a full biased two-layer MLP under MSE must be
    /// bitwise identical between the lean and legacy engines — `AddBias`
    /// and in-place gemm accumulation included.
    #[test]
    fn lean_mlp_weight_grads_match_legacy_bitwise(seed in 0u64..200) {
        use mosaic_flow::nn::{Linear, Params};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ps = Params::new();
        let l1 = Linear::new(&mut ps, &mut rng, "l1", 3, 7, true);
        let l2 = Linear::new(&mut ps, &mut rng, "l2", 7, 2, true);
        let x = Tensor::from_fn(5, 3, |r, c| ((seed + 1) as f64 * 0.3 + (r * 3 + c) as f64 * 0.21).sin());
        let y = Tensor::from_fn(5, 2, |r, c| ((r * 2 + c) as f64 * 0.17).cos());
        let run = |lean: bool| {
            let mut g = if lean { Graph::new() } else { Graph::new_legacy() };
            let bound = ps.bind(&mut g);
            let xv = g.constant_from(&x);
            let h = l1.forward(&mut g, &bound, xv);
            let h = g.tanh(h);
            let out = l2.forward(&mut g, &bound, h);
            let tv = g.constant_from(&y);
            let loss = g.mse(out, tv);
            let grads = g.grad(loss, bound.all_vars());
            grads.iter().map(|&gv| g.value(gv).clone()).collect::<Vec<_>>()
        };
        let lean = run(true);
        let legacy = run(false);
        prop_assert_eq!(lean.len(), legacy.len());
        for (pi, (a, b)) in lean.iter().zip(&legacy).enumerate() {
            for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(
                    va.to_bits(), vb.to_bits(),
                    "param {} mismatch: {} vs {} ({} ulps)", pi, va, vb, ulps(*va, *vb)
                );
            }
        }
    }

    /// At third order the fused chains re-associate adjoint sums (fresh
    /// fused nodes vs legacy's shared intermediates), so exact bit
    /// equality is no longer guaranteed — but the drift must stay at ulp
    /// level, orders of magnitude inside the 1e-9 fixture tolerance.
    #[test]
    fn fused_vjps_match_unfused_to_ulp_at_third_order(
        vals in prop::collection::vec(-2.0f64..2.0, 9),
    ) {
        let run = |lean: bool| {
            let mut g = if lean { Graph::new() } else { Graph::new_legacy() };
            let x = g.leaf(Tensor::row_vector(&vals));
            let t = g.tanh(x);
            let e = g.gelu(t);
            let s = g.sum(e);
            let d1 = g.grad(s, &[x])[0];
            let s1 = g.sum(d1);
            let d2 = g.grad(s1, &[x])[0];
            let s2 = g.sum(d2);
            let d3 = g.grad(s2, &[x])[0];
            g.value(d3).clone()
        };
        let lean = run(true);
        let legacy = run(false);
        for (a, b) in lean.as_slice().iter().zip(legacy.as_slice()) {
            prop_assert!(
                ulps(*a, *b) <= 64,
                "order-3 drift beyond ulp level: {} vs {} ({} ulps)", a, b, ulps(*a, *b)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry histogram quantile estimation.
// ---------------------------------------------------------------------------

/// Build the `HistSnapshot` a telemetry histogram with layout `buckets`
/// would freeze after observing `samples`.
fn hist_from_samples(
    buckets: &mosaic_flow::telemetry::Buckets,
    samples: &[f64],
) -> mosaic_flow::telemetry::HistSnapshot {
    let bounds = buckets.bounds().to_vec();
    let mut counts = vec![0u64; bounds.len() + 1];
    for &v in samples {
        counts[buckets.bucket_index(v)] += 1;
    }
    mosaic_flow::telemetry::HistSnapshot {
        bounds,
        counts,
        count: samples.len() as u64,
        sum: samples.iter().sum(),
        min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `HistSnapshot::quantile_est` against ground truth: for any sample
    /// set and any of the gate's quantiles, the interpolated estimate
    /// must stay inside the bucket that actually contains the exact
    /// sorted-sample quantile (clamped to the observed `[min, max]`) —
    /// the tightest guarantee a log-bucketed histogram can make.
    #[test]
    fn quantile_est_lands_in_the_exact_quantiles_bucket(
        raw in prop::collection::vec(0.1f64..5_000.0, 96),
        n in 1usize..96,
        layout in 0usize..3,
    ) {
        use mosaic_flow::telemetry::Buckets;
        let buckets = match layout {
            0 => Buckets::latency_us(),
            1 => Buckets::exponential(0.5, 3.0, 8),
            _ => Buckets::explicit(&[1.0, 10.0, 100.0, 1000.0]),
        };
        let samples = &raw[..n];
        let snap = hist_from_samples(&buckets, samples);
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        for q in [0.5f64, 0.95, 0.99] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let est = snap.quantile_est(q);
            // The estimate may never stray outside the observed range...
            prop_assert!(est >= snap.min && est <= snap.max,
                "q={q}: est {est} outside [{}, {}]", snap.min, snap.max);
            // ...and must fall inside the exact quantile's bucket.
            let b = buckets.bucket_index(exact);
            let lo = if b == 0 { snap.min } else { buckets.bounds()[b - 1].max(snap.min) };
            let hi = buckets.bounds().get(b).copied().unwrap_or(snap.max).min(snap.max);
            prop_assert!(est >= lo && est <= hi.max(lo),
                "q={q}: est {est} outside bucket {b} [{lo}, {hi}] containing exact {exact}");
        }
    }
}
