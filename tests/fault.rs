//! Integration tests of the fault-injection stack: MFP recovery under
//! message drops, checkpoint/kill/restart, and world-size-independent
//! training determinism.
//!
//! The `fault_recovery_holds_for_env_seed` test reads `MF_FAULT_SEED`
//! (default 42) so CI can sweep a seed matrix; assertion messages embed
//! the seed for local reproduction.

use mosaic_flow::data::{BatchSampler, Dataset, SubdomainSpec};
use mosaic_flow::dist::{Cluster, CrashAt, FaultPlan, RetryPolicy};
use mosaic_flow::mfp::{try_run_distributed, DistMfpConfig, DomainSpec, OracleSolver};
use mosaic_flow::nn::{SdNet, SdNetConfig};
use mosaic_flow::opt::{LrSchedule, Sgd};
use mosaic_flow::tensor::Tensor;
use mosaic_flow::train::trainer::OptKind;
use mosaic_flow::train::{
    train_ddp_resumable, train_step_distributed, CheckpointConfig, GradSync, TrainConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn spec() -> SubdomainSpec {
    SubdomainSpec { m: 9, spatial: 0.5 }
}

fn harmonic_bc(d: &DomainSpec) -> Tensor {
    use mosaic_flow::numerics::boundary::boundary_coords;
    let h = d.h();
    let f = |x: f64, y: f64| x * x - y * y + 0.25 * x;
    let coords = boundary_coords(d.ny(), d.nx());
    Tensor::from_vec(
        1,
        coords.len(),
        coords
            .iter()
            .map(|&(j, i)| f(i as f64 * h, j as f64 * h))
            .collect(),
    )
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: Duration::from_millis(20),
        max_retries: 200,
    }
}

fn env_seed() -> u64 {
    std::env::var("MF_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Acceptance criterion: at 10% drop with retries, the distributed MFP
/// reaches the fault-free residual within 1e-6.
#[test]
fn mfp_with_ten_percent_drop_matches_fault_free_within_1e6() {
    let d = DomainSpec::new(spec(), 2, 2);
    let oracle = OracleSolver::new(spec(), 1e-10);
    let bc = harmonic_bc(&d);
    let base = DistMfpConfig {
        max_iters: 120,
        tol: 1e-8,
        ..Default::default()
    };
    let clean = try_run_distributed(&oracle, &d, &bc, 4, &base).unwrap();
    assert!(clean.converged);

    let seed = env_seed();
    let faulty_cfg = DistMfpConfig {
        plan: FaultPlan {
            retry: fast_retry(),
            ..FaultPlan::lossy(seed, 0.10)
        },
        ..base
    };
    let faulty = try_run_distributed(&oracle, &d, &bc, 4, &faulty_cfg).unwrap();
    assert!(faulty.converged, "seed {seed}: faulty run did not converge");
    // Retransmission recovers payloads bitwise, so the residual
    // trajectory is identical — far inside the 1e-6 budget.
    let max_dev = clean
        .deltas
        .iter()
        .zip(&faulty.deltas)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 1e-6, "seed {seed}: residual deviation {max_dev}");
    assert!(
        clean.grid.max_abs_diff(&faulty.grid) < 1e-6,
        "seed {seed}: solutions deviate"
    );
}

/// Acceptance criterion: kill a rank mid-training, restart from the last
/// checkpoint, and the final model is bitwise-identical to a run that
/// was never interrupted.
#[test]
fn checkpoint_kill_restart_resumes_bitwise_identically() {
    let spec = spec();
    let ds = Dataset::generate(spec, 8, 1);
    let (train, val) = ds.split(0.75);
    let mut net_cfg = SdNetConfig::small(spec.boundary_len());
    net_cfg.conv_channels = vec![2];
    net_cfg.hidden = vec![12, 12];
    let template = SdNet::new(net_cfg, &mut ChaCha8Rng::seed_from_u64(3));
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 2,
        qd: 8,
        qc: 4,
        pde_weight: 0.05,
        schedule: LrSchedule::paper_default(12),
        opt: OptKind::Adam,
        seed: 0,
        clip_norm: None,
    };

    // Uninterrupted reference.
    let reference = train_ddp_resumable(
        2,
        &template,
        &train,
        &val,
        &cfg,
        GradSync::Fused,
        FaultPlan::none(),
        None,
    )
    .unwrap();

    // Crash rank 1 mid-run with periodic checkpoints.
    let dir = std::env::temp_dir().join(format!("mf_kill_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ck = CheckpointConfig {
        dir: dir.clone(),
        every_steps: 2,
        keep: 2,
    };
    let crash_plan = FaultPlan {
        crash: Some(CrashAt {
            rank: 1,
            after_sends: 9,
        }),
        ..FaultPlan::none()
    };
    let err = train_ddp_resumable(
        2,
        &template,
        &train,
        &val,
        &cfg,
        GradSync::Fused,
        crash_plan,
        Some(&ck),
    )
    .unwrap_err();
    assert_eq!(err.origin(), 1, "{err}");
    // At least one checkpoint landed before the crash.
    assert!(
        !mosaic_flow::train::checkpoint::available_steps(&ck, 0).is_empty(),
        "no checkpoint was written before the crash"
    );

    // Restart: resumes from the newest common step and finishes.
    let resumed = train_ddp_resumable(
        2,
        &template,
        &train,
        &val,
        &cfg,
        GradSync::Fused,
        FaultPlan::none(),
        Some(&ck),
    )
    .unwrap();
    assert_eq!(
        resumed.params_flat, reference.params_flat,
        "resumed parameters are not bitwise-identical"
    );
    assert_eq!(resumed.logs.len(), reference.logs.len());
    for (a, b) in resumed.logs.iter().zip(&reference.logs) {
        assert_eq!(a.data_loss, b.data_loss, "epoch {}", a.epoch);
        assert_eq!(a.pde_loss, b.pde_loss, "epoch {}", a.epoch);
        assert_eq!(a.val_mse, b.val_mse, "epoch {}", a.epoch);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// With the rank-order-fixed reduction, the same per-step batches yield
/// the same loss curve whether computed on 1, 2, or 4 ranks, and each
/// world size is bitwise-repeatable.
#[test]
fn ordered_sync_loss_curves_are_world_size_independent() {
    let ds = Dataset::generate(spec(), 8, 0);
    let mut bs = BatchSampler::new(1, 4, 4, 7);
    let batches: Vec<_> = (0..6).map(|i| bs.make_batch(&ds, &[i])).collect();
    let mut net_cfg = SdNetConfig::small(spec().boundary_len());
    net_cfg.conv_channels = vec![2];
    net_cfg.hidden = vec![10, 10];
    let template = SdNet::new(net_cfg, &mut ChaCha8Rng::seed_from_u64(11));

    let batches_ref = &batches;
    let t = &template;
    let run = |world: usize| {
        Cluster::run(world, move |comm| {
            let mut net = t.clone();
            let mut opt = Sgd::new(0.0);
            let mut curve = Vec::new();
            for batch in batches_ref {
                // Every rank sees the same batch, so the global batch is
                // world-size invariant and curves are comparable.
                let stats = train_step_distributed(
                    &mut net,
                    batch,
                    &mut opt,
                    0.05,
                    0.02,
                    comm,
                    GradSync::OrderedFused,
                );
                curve.push((stats.data_loss, stats.pde_loss));
            }
            (curve, net.params.flatten())
        })
        .into_iter()
        .next()
        .unwrap()
    };

    let (c1, p1) = run(1);
    let (c2, p2) = run(2);
    let (c4, p4) = run(4);
    // Bitwise repeatability at a fixed world size.
    let (c4b, p4b) = run(4);
    assert_eq!(c4, c4b, "4-rank run is not deterministic");
    assert_eq!(p4, p4b);
    // Cross-world-size: the ordered reduction keeps the mean of P equal
    // gradients within one ulp-accumulation of the P=1 gradient.
    for (step, ((a, b), c)) in c1.iter().zip(&c2).zip(&c4).enumerate() {
        assert!(
            (a.0 - b.0).abs() <= 1e-12 * a.0.abs().max(1.0),
            "step {step}: data loss P=1 {} vs P=2 {}",
            a.0,
            b.0
        );
        assert!(
            (a.0 - c.0).abs() <= 1e-10 * a.0.abs().max(1.0),
            "step {step}: data loss P=1 {} vs P=4 {}",
            a.0,
            c.0
        );
        assert!((a.1 - c.1).abs() <= 1e-10 * a.1.abs().max(1.0));
    }
    for ((a, b), c) in p1.iter().zip(&p2).zip(&p4) {
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        assert!((a - c).abs() <= 1e-10 * a.abs().max(1.0));
    }
}

/// Seed-matrix entry point for CI: collectives under drops + duplication
/// recover bitwise for whatever `MF_FAULT_SEED` says.
#[test]
fn fault_recovery_holds_for_env_seed() {
    let seed = env_seed();
    let p = 4;
    let body = |c: &mut mosaic_flow::dist::Communicator| {
        let mut buf: Vec<f64> = (0..32).map(|i| (c.rank() * 32 + i) as f64 * 0.5).collect();
        c.allreduce_sum(&mut buf);
        let gathered = c.allgather(&buf[..3]);
        (buf, gathered)
    };
    let clean = Cluster::run(p, body);
    let plan = FaultPlan {
        dup_rate: 0.05,
        retry: fast_retry(),
        ..FaultPlan::lossy(seed, 0.12)
    };
    let faulty = Cluster::try_run(p, plan, body)
        .unwrap_or_else(|e| panic!("MF_FAULT_SEED={seed}: cluster failed: {e}"));
    assert_eq!(
        clean, faulty,
        "MF_FAULT_SEED={seed}: recovered collectives deviate from lossless run"
    );
}
