//! Integration test of the live-metrics stack: a distributed solve on
//! the compiled inference plan, scraped over HTTP while it runs.
//!
//! Exercises the whole chain end to end — zone timers in the kernel hot
//! loops → per-thread histograms and time-series rings → per-rank
//! publication → merged OpenMetrics / JSON exposition over a real TCP
//! socket — and asserts the scrape is well-formed and carries the
//! per-kernel and overlap metrics the ISSUE contract names.

use mosaic_flow::mfp::{try_run_distributed, DistMfpConfig, DomainSpec, PlanSolver};
use mosaic_flow::nn::{SdNet, SdNetConfig};
use mosaic_flow::prelude::*;
use mosaic_flow::profile::{http_get, MetricsServer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn solver() -> (SubdomainSpec, PlanSolver) {
    let spec = SubdomainSpec { m: 9, spatial: 0.5 };
    let mut cfg = SdNetConfig::small(spec.boundary_len());
    cfg.conv_channels = vec![2];
    cfg.hidden = vec![16, 16];
    // Untrained weights: the test measures plumbing, not accuracy.
    let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(0));
    assert!(InferencePlan::supports(&net));
    (spec, PlanSolver::new(net, spec))
}

/// Every non-comment OpenMetrics line is `name[{labels}] value`; names
/// start with a letter or underscore and values parse as floats.
fn assert_well_formed(body: &str) {
    assert!(body.ends_with("# EOF\n"), "missing OpenMetrics terminator");
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() || line == "# EOF" {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("malformed exposition line: {line:?}");
        });
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "bad metric name in line: {line:?}"
        );
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name charset in line: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "unparseable value in line: {line:?}"
        );
    }
}

#[test]
fn metrics_endpoint_serves_kernel_histograms_mid_solve() {
    mosaic_flow::profile::set_enabled(true);
    let server = MetricsServer::start("127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    let (spec, solver) = solver();
    let domain = DomainSpec::new(spec, 2, 2);
    let mut sampler = BoundarySampler::new(domain.boundary_len(), (0.4, 0.8), (0.5, 1.0), true);
    let bc = sampler.sample(&mut ChaCha8Rng::seed_from_u64(3));

    // Run the solve on a worker thread so this thread can scrape it live.
    // tol 0.0 pins the iteration count, giving the scraper a stable window.
    let solve = std::thread::spawn(move || {
        try_run_distributed(
            &solver,
            &domain,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 60,
                tol: 0.0,
                ..Default::default()
            },
        )
    });

    // Poll /metrics while the solve runs; ranks publish after every MFP
    // iteration, so the per-kernel histograms appear long before join().
    let mut live_body = String::new();
    for _ in 0..600 {
        let (status, body) = http_get(addr, "/metrics").expect("scrape");
        assert!(status.contains("200"), "scrape status: {status}");
        assert_well_formed(&body);
        if body.contains("prof_gemm_us") && body.contains("dist_overlap_ratio") {
            live_body = body;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let result = solve.join().expect("solve thread panicked");
    assert!(result.is_ok(), "solve failed: {result:?}");
    assert!(
        !live_body.is_empty(),
        "never saw prof_gemm_us + dist_overlap_ratio in a mid-solve scrape"
    );

    // Final scrape: everything the contract names, in one document.
    let (status, body) = http_get(addr, "/metrics").expect("final scrape");
    assert!(status.contains("200"));
    assert_well_formed(&body);
    for kernel in ["gemm", "unfold", "activation", "plan_launch", "sweep"] {
        assert!(
            body.contains(&format!("# TYPE prof_{kernel}_us histogram")),
            "missing per-kernel histogram prof_{kernel}_us"
        );
        assert!(
            body.contains(&format!("prof_{kernel}_us_bucket{{le=\"+Inf\"}}")),
            "histogram prof_{kernel}_us lacks an +Inf bucket"
        );
    }
    assert!(body.contains("infer_pts_per_s"), "missing infer_pts_per_s");
    assert!(
        body.contains("dist_overlap_ratio"),
        "missing dist_overlap_ratio"
    );
    assert!(
        body.contains("dist_comm_wait_us"),
        "missing dist_comm_wait_us"
    );
    assert!(body.contains("dist_compute_us"), "missing dist_compute_us");

    // The JSON snapshot parses and carries per-rank sections.
    let (status, body) = http_get(addr, "/snapshot").expect("snapshot");
    assert!(status.contains("200"));
    assert!(body.contains("\"ranks\""), "snapshot lacks ranks: {body}");
    assert!(body.contains("\"merged\""), "snapshot lacks merged section");
    assert!(body.contains("\"series\""), "snapshot lacks series section");
}
