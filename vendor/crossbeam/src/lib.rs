//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module surface the workspace uses (`unbounded`,
//! `Sender`, `Receiver`), implemented over `std::sync::mpsc`. The std
//! channel is MPSC, which matches how the simulated cluster uses it: many
//! cloned senders feed the single receiver owned by each rank.

pub mod channel {
    //! Unbounded channels with crossbeam's naming.

    use std::sync::mpsc;

    /// Error returned when the receiving end has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when all senders have been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender was dropped and the queue is empty.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half; clonable so every rank can hold one per peer.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: `None` when the queue is currently empty
        /// or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 100..200 {
                    tx2.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..200).map(|_| rx.recv().unwrap()).collect();
            // Per-sender FIFO: the subsequences from each sender are ordered.
            let a: Vec<i32> = got.iter().copied().filter(|v| *v < 100).collect();
            let b: Vec<i32> = got.iter().copied().filter(|v| *v >= 100).collect();
            assert_eq!(a, (0..100).collect::<Vec<_>>());
            assert_eq!(b, (100..200).collect::<Vec<_>>());
        });
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(42));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
