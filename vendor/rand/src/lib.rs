//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses*: [`RngCore`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64` / `from_seed`), and [`seq::SliceRandom::shuffle`].
//! Semantics match upstream (uniform ranges, Fisher–Yates shuffle); the
//! exact random streams differ, which is fine because nothing in this
//! repository depends on upstream's bit-exact output.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (splitmix64 key expansion, like
    /// upstream's `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain
/// (the stand-in for upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from range types (`lo..hi`, `lo..=hi`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if width == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Simple built-in generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast xoshiro256** generator (the stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=4u64);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..100).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.15, "suspicious mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(7));
        b.shuffle(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }
}
