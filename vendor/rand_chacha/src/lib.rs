//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha block function (the same quarter-round
//! core as RFC 8439) behind the vendored [`rand`] traits. Streams are
//! deterministic per seed but not bit-identical to upstream
//! `rand_chacha` (which uses a different seeding path); nothing in this
//! workspace depends on upstream's exact stream.

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round on four state words.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha core with a compile-time round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Input block: constants, key, counter, nonce.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn from_key(key: [u32; 8]) -> Self {
        let mut input = [0u32; 16];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        input[4..12].copy_from_slice(&key);
        // counter (words 12..13) and nonce (14..15) start at zero.
        Self {
            input,
            block: [0; 16],
            index: 16,
        }
    }

    /// Snapshot the full generator state as 33 words: the 16 input words,
    /// the 16 words of the current keystream block, and the read index.
    /// Restoring via [`ChaChaRng::from_state_words`] resumes the stream
    /// bit-exactly — the basis of trainer checkpoint/restart.
    pub fn state_words(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(33);
        out.extend_from_slice(&self.input);
        out.extend_from_slice(&self.block);
        out.push(self.index as u32);
        out
    }

    /// Rebuild a generator from [`ChaChaRng::state_words`]. Returns `None`
    /// if the word count or index is malformed.
    pub fn from_state_words(words: &[u32]) -> Option<Self> {
        if words.len() != 33 || words[32] > 16 {
            return None;
        }
        let mut input = [0u32; 16];
        let mut block = [0u32; 16];
        input.copy_from_slice(&words[..16]);
        block.copy_from_slice(&words[16..32]);
        Some(Self {
            input,
            block,
            index: words[32] as usize,
        })
    }

    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(&self.input) {
            *o = o.wrapping_add(*i);
        }
        self.block = x;
        self.index = 0;
        // 64-bit block counter across words 12..13.
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    fn seed_from_u64(state: u64) -> Self {
        // splitmix64 key expansion, like upstream's seed_from_u64.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self::from_key(key)
    }
}

/// ChaCha with 8 rounds — the variant this workspace seeds everywhere.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the IETF standard count).
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_continues_across_blocks() {
        // 16 words per block; draw 100 u64s (= 200 words) and check the
        // values keep varying (counter increments between blocks).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let xs: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 95);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Leave the generator mid-block so index != 0.
        for _ in 0..5 {
            rng.next_u32();
        }
        let words = rng.state_words();
        let mut resumed = ChaCha8Rng::from_state_words(&words).unwrap();
        let a: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(a, b);
        assert!(ChaCha8Rng::from_state_words(&words[..32]).is_none());
    }

    #[test]
    fn works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = rng.gen_range(5usize..10);
        assert!((5..10).contains(&n));
    }
}
