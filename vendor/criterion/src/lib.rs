//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`, and
//! `Bencher::iter` — over a simple wall-clock harness: a short warmup,
//! then `sample_size` timed samples with an iteration count calibrated
//! so each sample runs at least ~2 ms. Reports median, mean ± stddev,
//! and derived throughput. No HTML reports or statistical regression
//! testing; output goes to stdout.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: one untimed run, then grow the per-sample iteration
        // count until a sample takes at least ~2 ms.
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().as_secs_f64().max(1e-9);
        self.iters_per_sample = ((2e-3 / est).ceil() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        let mut sorted = b.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
        let var = b
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / b.samples.len() as f64;
        let sd = var.sqrt();
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {}", fmt_rate(n as f64 / median, "elem"))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {}", fmt_rate(n as f64 / median, "B"))
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<28} time: [{} {} ± {}]{thrpt}",
            self.name,
            fmt_time(median),
            fmt_time(mean),
            fmt_time(sd),
        );
    }

    /// End the group (criterion compatibility; reports are printed as
    /// benches run).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .sample_size(10)
            .bench_function("run", f);
        self
    }
}

/// Bundle bench functions into a callable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        g.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn harness_runs_and_records_samples() {
        smoke();
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: 5,
        };
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }
}
