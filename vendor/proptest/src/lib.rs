//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy`] with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, and [`ProptestConfig`].
//!
//! Differences from upstream: cases are sampled from a fixed
//! deterministic stream (no persisted failure seeds) and failing inputs
//! are *not* shrunk — the panic message carries the case number so a
//! failure is still reproducible by construction.

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tests here always pass an explicit
        // count, so the default matters only for new call sites.
        Self { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    /// splitmix64 stream, seeded per case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case`.
        pub fn for_case(case: u64) -> Self {
            // Golden-ratio offset keeps neighboring cases decorrelated.
            Self {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D00D_CAFE,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The any-boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Fixed-length vector of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.size).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prop` namespace, as `prelude::*` exposes it.
pub mod prop {
    pub use super::bool;
    pub use super::collection;
}

pub mod prelude {
    //! Everything the `proptest!` tests import.
    pub use super::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use super::{Just, ProptestConfig, Strategy};
}

/// Assert inside a property test; on failure the whole case panics with
/// the formatted message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __run = || $body;
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in -2.0f64..2.0, b in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn mapped_tuples_compose(v in (0u64..5, 1usize..4).prop_map(|(a, n)| vec![a; n])) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&a| a < 5));
        }

        #[test]
        fn collection_vec_has_exact_size(v in prop::collection::vec(-1.0f64..1.0, 12)) {
            prop_assert_eq!(v.len(), 12);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use super::test_runner::TestRng;
        use super::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
