//! Offline stand-in for the `rayon` crate.
//!
//! Implements the parallel-iterator subset this workspace uses —
//! `par_chunks_mut(..).enumerate().for_each(..)` on mutable slices and
//! `into_par_iter().map(..).collect()` on vectors — with scoped OS
//! threads. When the host reports a single core (the common case for
//! this reproduction's environment), work runs inline with zero thread
//! overhead, preserving rayon's semantics either way.

use std::num::NonZeroUsize;

/// Number of worker threads to fan out across.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

pub mod prelude {
    //! Import-everything module mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// `par_chunks_mut` provider for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size` elements (last may be
    /// shorter), to be consumed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            chunks: self.chunks,
        }
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct EnumerateChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        run_indexed(self.chunks, &f);
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The produced iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel iterator over an owned vector.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> MapParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let f = &f;
        run_indexed_map(self.items, move |_, item| f(item));
    }
}

/// Result of [`VecParIter::map`].
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapParIter<T, F> {
    /// Evaluate the map in parallel and collect, preserving input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        let f = self.f;
        let out = run_indexed_map(self.items, |_, item| f(item));
        C::from(out)
    }
}

/// Run `f` over `(index, item)` pairs, fanning out across threads;
/// returns results in input order.
fn run_indexed_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(usize, T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = workers().min(n.max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Deal items round-robin so uneven per-item cost balances out.
    let mut queues: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % threads].push((i, item));
    }
    let f = &f;
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|q| {
                scope.spawn(move || {
                    q.into_iter()
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon stub worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Like [`run_indexed_map`] but for side-effecting consumers of
/// enumerated mutable chunks.
fn run_indexed<T: Send>(chunks: Vec<T>, f: &(impl Fn((usize, T)) + Sync)) {
    let n = chunks.len();
    let threads = workers().min(n.max(1));
    if threads <= 1 {
        for (i, c) in chunks.into_iter().enumerate() {
            f((i, c));
        }
        return;
    }
    let mut queues: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, c) in chunks.into_iter().enumerate() {
        queues[i % threads].push((i, c));
    }
    std::thread::scope(|scope| {
        for q in queues {
            scope.spawn(move || {
                for (i, c) in q {
                    f((i, c));
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0usize; 37];
        data.par_chunks_mut(5).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i + 1;
            }
        });
        // 37 = 7 chunks of 5 plus one of 2.
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[36], 8);
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = items.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
