#![warn(missing_docs)]

//! Finite-difference solvers for the Laplace/Poisson equation on rectangular
//! grids — the repository's substitute for pyAMG.
//!
//! The paper (§5.1) generates all ground-truth data by solving Dirichlet
//! boundary-value problems for the Laplace equation with pyAMG. This crate
//! plays that role with classical iterative solvers built from scratch:
//!
//! * pointwise relaxation: Jacobi, red-black Gauss–Seidel, SOR,
//! * conjugate gradients on the 5-point stencil,
//! * a geometric multigrid V-cycle (full-weighting restriction, bilinear
//!   prolongation, red-black GS smoothing) for large grids,
//! * [`solve_dirichlet`] which picks multigrid when the grid supports
//!   coarsening and falls back to SOR otherwise.
//!
//! Grids are stored as `mf_tensor::Tensor` with `ny` rows × `nx` columns;
//! row 0 is the bottom edge (y = 0). The [`boundary`] module fixes the
//! counter-clockwise boundary walk shared by the dataset generator and the
//! Mosaic Flow predictor.

mod analytic;
pub mod boundary;
mod cg;
mod multigrid;
mod relax;
#[cfg(test)]
mod solver_proptests;

pub use analytic::{eval_on_grid, harmonic_polynomial, harmonic_sin_sinh, HarmonicFn};
pub use cg::solve_cg;
pub use multigrid::{can_coarsen, solve_multigrid, MultigridOpts};
pub use relax::{
    residual_norm, solve_jacobi, solve_rbgs, solve_shifted_sor, solve_sor, sor_optimal_omega,
};

use mf_tensor::Tensor;

/// Outcome of an iterative solve.
#[derive(Clone, Copy, Debug)]
pub struct SolveStats {
    /// Iterations (V-cycles for multigrid) actually performed.
    pub iterations: usize,
    /// Final max-norm of the residual of the 5-point system.
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// A Poisson problem `Δu = f` on an `ny×nx` vertex grid with spacing `h`
/// and Dirichlet values prescribed on the outer ring of `u`.
///
/// `f` is evaluated at interior points; pass [`Tensor::zeros`] for the
/// Laplace equation. All solvers keep the boundary ring of the initial
/// guess fixed and update only the interior.
#[derive(Clone, Debug)]
pub struct Poisson {
    /// Right-hand side, `ny×nx` (only interior entries are read).
    pub f: Tensor,
    /// Grid spacing (isotropic).
    pub h: f64,
}

impl Poisson {
    /// The Laplace equation (`f = 0`) on an `ny×nx` grid with spacing `h`.
    pub fn laplace(ny: usize, nx: usize, h: f64) -> Self {
        Self {
            f: Tensor::zeros(ny, nx),
            h,
        }
    }

    /// Grid shape `(ny, nx)`.
    pub fn shape(&self) -> (usize, usize) {
        self.f.shape()
    }
}

/// Solve a Dirichlet problem: `u0` carries the boundary values on its outer
/// ring (interior entries are the initial guess). Uses multigrid when both
/// dimensions allow at least two coarsening levels, SOR otherwise.
///
/// Returns the solution grid and solve statistics.
pub fn solve_dirichlet(problem: &Poisson, u0: &Tensor, tol: f64) -> (Tensor, SolveStats) {
    let (ny, nx) = problem.shape();
    assert_eq!(
        u0.shape(),
        (ny, nx),
        "solve_dirichlet: guess shape mismatch"
    );
    if can_coarsen(ny, nx) {
        solve_multigrid(
            problem,
            u0,
            &MultigridOpts {
                tol,
                ..Default::default()
            },
        )
    } else {
        solve_sor(problem, u0, sor_optimal_omega(ny.max(nx)), 20_000, tol)
    }
}

/// Apply the 5-point Laplacian to the interior of `u`: `(Δu)_ij ≈
/// (u_E + u_W + u_N + u_S - 4u_C)/h²`. Boundary entries of the result are 0.
pub fn apply_laplacian(u: &Tensor, h: f64) -> Tensor {
    let (ny, nx) = u.shape();
    let mut out = Tensor::zeros(ny, nx);
    let inv_h2 = 1.0 / (h * h);
    for j in 1..ny - 1 {
        for i in 1..nx - 1 {
            let c = u.get(j, i);
            let lap = (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                - 4.0 * c)
                * inv_h2;
            out.set(j, i, lap);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_of_linear_function_is_zero() {
        let u = Tensor::from_fn(9, 9, |j, i| 2.0 * i as f64 - 3.0 * j as f64 + 1.0);
        let lap = apply_laplacian(&u, 0.125);
        assert!(lap.norm_linf() < 1e-10);
    }

    #[test]
    fn laplacian_of_quadratic_is_constant() {
        // u = x² ⇒ Δu = 2 exactly for the 5-point stencil.
        let h = 0.1;
        let u = Tensor::from_fn(7, 7, |_, i| (i as f64 * h).powi(2));
        let lap = apply_laplacian(&u, h);
        for j in 1..6 {
            for i in 1..6 {
                assert!((lap.get(j, i) - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn solve_dirichlet_reproduces_harmonic_polynomial() {
        // x² - y² is harmonic, and the 5-point stencil is exact on it.
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let exact = Tensor::from_fn(n, n, |j, i| {
            let (x, y) = (i as f64 * h, j as f64 * h);
            x * x - y * y
        });
        let mut guess = exact.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                guess.set(j, i, 0.0);
            }
        }
        let (u, stats) = solve_dirichlet(&Poisson::laplace(n, n, h), &guess, 1e-10);
        assert!(stats.converged, "solver did not converge: {stats:?}");
        assert!(
            u.max_abs_diff(&exact) < 1e-7,
            "error {}",
            u.max_abs_diff(&exact)
        );
    }
}
