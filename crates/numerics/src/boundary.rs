//! The canonical boundary walk shared by the dataset generator, SDNet and
//! the Mosaic Flow predictor.
//!
//! A discretized boundary function `ĝ` is the vector of grid values read
//! counter-clockwise around the rectangle, starting at the bottom-left
//! corner `(row 0, col 0)`:
//!
//! 1. bottom edge, left → right (`row 0`, cols `0..nx-1`),
//! 2. right edge, bottom → top (`col nx-1`, rows `0..ny-1`),
//! 3. top edge, right → left (`row ny-1`, cols `nx-1..0`),
//! 4. left edge, top → bottom (`col 0`, rows `ny-1..0`).
//!
//! Each corner appears exactly once, so the walk has
//! `2(nx-1) + 2(ny-1)` points and is a closed curve — which is why SDNet's
//! boundary embedding uses *circular* convolutions.

use mf_tensor::Tensor;

/// Number of points in the boundary walk of an `ny×nx` grid.
pub fn boundary_len(ny: usize, nx: usize) -> usize {
    assert!(ny >= 2 && nx >= 2, "boundary_len: grid too small");
    2 * (nx - 1) + 2 * (ny - 1)
}

/// The `(row, col)` coordinates of the walk, in order.
pub fn boundary_coords(ny: usize, nx: usize) -> Vec<(usize, usize)> {
    assert!(ny >= 2 && nx >= 2, "boundary_coords: grid too small");
    let mut out = Vec::with_capacity(boundary_len(ny, nx));
    for i in 0..nx - 1 {
        out.push((0, i));
    }
    for j in 0..ny - 1 {
        out.push((j, nx - 1));
    }
    for i in (1..nx).rev() {
        out.push((ny - 1, i));
    }
    for j in (1..ny).rev() {
        out.push((j, 0));
    }
    out
}

/// Arc-length parameters `t ∈ [0, 1)` of the walk points, proportional to
/// physical distance along the perimeter. Used to evaluate boundary
/// functions such as the paper's `ĝ(t) = sin(2πt)` (Fig. 7).
pub fn boundary_params(ny: usize, nx: usize) -> Vec<f64> {
    let len = boundary_len(ny, nx);
    // With isotropic spacing every step has equal length, so the parameter
    // is uniform in the walk index.
    (0..len).map(|k| k as f64 / len as f64).collect()
}

/// Read the boundary values of `grid` into a `1×L` row vector.
pub fn extract_boundary(grid: &Tensor) -> Tensor {
    let (ny, nx) = grid.shape();
    let coords = boundary_coords(ny, nx);
    Tensor::from_vec(
        1,
        coords.len(),
        coords.iter().map(|&(j, i)| grid.get(j, i)).collect(),
    )
}

/// Write boundary values (walk order) onto the ring of `grid`.
pub fn apply_boundary(grid: &mut Tensor, values: &Tensor) {
    let (ny, nx) = grid.shape();
    let coords = boundary_coords(ny, nx);
    assert_eq!(
        values.numel(),
        coords.len(),
        "apply_boundary: expected {} values, got {}",
        coords.len(),
        values.numel()
    );
    for (k, &(j, i)) in coords.iter().enumerate() {
        grid.set(j, i, values.as_slice()[k]);
    }
}

/// A fresh grid with the given boundary values and zero interior.
pub fn grid_with_boundary(ny: usize, nx: usize, values: &Tensor) -> Tensor {
    let mut g = Tensor::zeros(ny, nx);
    apply_boundary(&mut g, values);
    g
}

/// Evaluate a boundary function of the arc-length parameter on the walk.
pub fn boundary_from_fn(ny: usize, nx: usize, f: impl Fn(f64) -> f64) -> Tensor {
    let params = boundary_params(ny, nx);
    Tensor::from_vec(1, params.len(), params.into_iter().map(f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_length_and_uniqueness() {
        let coords = boundary_coords(5, 7);
        assert_eq!(coords.len(), boundary_len(5, 7));
        assert_eq!(coords.len(), 2 * 6 + 2 * 4);
        let mut seen = std::collections::HashSet::new();
        for &c in &coords {
            assert!(seen.insert(c), "coordinate {c:?} repeated");
        }
    }

    #[test]
    fn walk_starts_bottom_left_and_goes_ccw() {
        let coords = boundary_coords(3, 3);
        assert_eq!(
            coords,
            vec![
                (0, 0),
                (0, 1), // bottom
                (0, 2),
                (1, 2), // right
                (2, 2),
                (2, 1), // top (right to left)
                (2, 0),
                (1, 0), // left (top to bottom)
            ]
        );
    }

    #[test]
    fn walk_is_connected_and_closed() {
        let coords = boundary_coords(6, 4);
        for w in coords.windows(2) {
            let d = (w[0].0 as isize - w[1].0 as isize).abs()
                + (w[0].1 as isize - w[1].1 as isize).abs();
            assert_eq!(d, 1, "walk jump between {:?} and {:?}", w[0], w[1]);
        }
        let first = coords[0];
        let last = *coords.last().unwrap();
        let d =
            (first.0 as isize - last.0 as isize).abs() + (first.1 as isize - last.1 as isize).abs();
        assert_eq!(d, 1, "walk does not close");
    }

    #[test]
    fn extract_apply_round_trip() {
        let grid = Tensor::from_fn(4, 5, |j, i| (j * 5 + i) as f64);
        let b = extract_boundary(&grid);
        let mut fresh = Tensor::zeros(4, 5);
        apply_boundary(&mut fresh, &b);
        // Ring must match, interior must stay zero.
        for &(j, i) in &boundary_coords(4, 5) {
            assert_eq!(fresh.get(j, i), grid.get(j, i));
        }
        for j in 1..3 {
            for i in 1..4 {
                assert_eq!(fresh.get(j, i), 0.0);
            }
        }
    }

    #[test]
    fn params_are_uniform_in_zero_one() {
        let p = boundary_params(5, 5);
        assert_eq!(p.len(), 16);
        assert_eq!(p[0], 0.0);
        assert!(p.iter().all(|&t| (0.0..1.0).contains(&t)));
        for w in p.windows(2) {
            assert!((w[1] - w[0] - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn boundary_from_fn_evaluates_sin() {
        let b = boundary_from_fn(5, 5, |t| (2.0 * std::f64::consts::PI * t).sin());
        assert_eq!(b.numel(), 16);
        assert!((b.as_slice()[0]).abs() < 1e-12);
        assert!((b.as_slice()[4] - 1.0).abs() < 1e-12); // t = 1/4
    }
}
