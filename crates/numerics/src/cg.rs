//! Conjugate-gradient solver on the interior unknowns of the 5-point system.
//!
//! The 5-point Laplacian with Dirichlet boundary conditions is symmetric
//! positive definite on the interior, so CG applies directly. The boundary
//! values are folded into the right-hand side.

use crate::{Poisson, SolveStats};
use mf_tensor::Tensor;

/// Solve `Δu = f` with Dirichlet values from the ring of `u0` using CG.
pub fn solve_cg(
    problem: &Poisson,
    u0: &Tensor,
    max_iters: usize,
    tol: f64,
) -> (Tensor, SolveStats) {
    let (ny, nx) = problem.shape();
    assert!(ny >= 3 && nx >= 3, "solve_cg: grid too small");
    let (my, mx) = (ny - 2, nx - 2);
    let n = my * mx;
    let h2 = problem.h * problem.h;

    // Interior operator: A x = (4x_C - x_E - x_W - x_N - x_S), i.e. -h²Δ,
    // which is SPD. RHS b = -h² f + boundary contributions.
    let apply = |x: &[f64], out: &mut [f64]| {
        for j in 0..my {
            for i in 0..mx {
                let idx = j * mx + i;
                let mut v = 4.0 * x[idx];
                if i > 0 {
                    v -= x[idx - 1];
                }
                if i + 1 < mx {
                    v -= x[idx + 1];
                }
                if j > 0 {
                    v -= x[idx - mx];
                }
                if j + 1 < my {
                    v -= x[idx + mx];
                }
                out[idx] = v;
            }
        }
    };

    let mut b = vec![0.0; n];
    for j in 0..my {
        for i in 0..mx {
            let (gj, gi) = (j + 1, i + 1);
            let mut v = -h2 * problem.f.get(gj, gi);
            if i == 0 {
                v += u0.get(gj, 0);
            }
            if i + 1 == mx {
                v += u0.get(gj, nx - 1);
            }
            if j == 0 {
                v += u0.get(0, gi);
            }
            if j + 1 == my {
                v += u0.get(ny - 1, gi);
            }
            b[j * mx + i] = v;
        }
    }

    // Initial guess from the interior of u0.
    let mut x = vec![0.0; n];
    for j in 0..my {
        for i in 0..mx {
            x[j * mx + i] = u0.get(j + 1, i + 1);
        }
    }

    let mut ax = vec![0.0; n];
    apply(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(b, a)| b - a).collect();
    let mut p = r.clone();
    let mut rsold: f64 = r.iter().map(|v| v * v).sum();
    let mut ap = vec![0.0; n];

    // Tolerance on the original (unscaled) residual max-norm.
    let target = tol * h2;
    let mut iterations = 0;
    while iterations < max_iters {
        let rmax = r.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        if rmax <= target {
            break;
        }
        apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rsold / pap;
        for k in 0..n {
            x[k] += alpha * p[k];
            r[k] -= alpha * ap[k];
        }
        let rsnew: f64 = r.iter().map(|v| v * v).sum();
        let beta = rsnew / rsold;
        for k in 0..n {
            p[k] = r[k] + beta * p[k];
        }
        rsold = rsnew;
        iterations += 1;
    }

    let mut u = u0.clone();
    for j in 0..my {
        for i in 0..mx {
            u.set(j + 1, i + 1, x[j * mx + i]);
        }
    }
    let residual = crate::residual_norm(problem, &u);
    (
        u,
        SolveStats {
            iterations,
            residual,
            converged: residual <= tol,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_sor, sor_optimal_omega};

    fn harmonic_problem(n: usize) -> (Poisson, Tensor, Tensor) {
        let h = 1.0 / (n - 1) as f64;
        let exact = Tensor::from_fn(n, n, |j, i| {
            let (x, y) = (i as f64 * h, j as f64 * h);
            x * x - y * y + 0.5 * x * y
        });
        let mut guess = exact.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                guess.set(j, i, 0.0);
            }
        }
        (Poisson::laplace(n, n, h), guess, exact)
    }

    #[test]
    fn cg_matches_exact_harmonic_solution() {
        // x² - y² + xy/2 is harmonic; xy is also 5-point exact.
        let (p, g, exact) = harmonic_problem(17);
        let (u, stats) = solve_cg(&p, &g, 2000, 1e-9);
        assert!(stats.converged, "{stats:?}");
        assert!(u.max_abs_diff(&exact) < 1e-6);
    }

    #[test]
    fn cg_and_sor_agree() {
        let n = 21;
        let h = 1.0 / (n - 1) as f64;
        // Random-ish boundary via trigonometric function.
        let mut guess = Tensor::zeros(n, n);
        for i in 0..n {
            let t = i as f64 * h;
            guess.set(0, i, (3.0 * t).sin());
            guess.set(n - 1, i, (2.0 * t).cos());
            guess.set(i, 0, t * t);
            guess.set(i, n - 1, 1.0 - t);
        }
        let p = Poisson::laplace(n, n, h);
        let (ucg, scg) = solve_cg(&p, &guess, 5000, 1e-10);
        let (usor, ssor) = solve_sor(&p, &guess, sor_optimal_omega(n), 50_000, 1e-10);
        assert!(scg.converged && ssor.converged);
        assert!(ucg.max_abs_diff(&usor) < 1e-6);
    }

    #[test]
    fn cg_converges_in_few_iterations_on_small_grid() {
        let (p, g, _) = harmonic_problem(9);
        let (_, stats) = solve_cg(&p, &g, 500, 1e-10);
        // CG on an n-unknown SPD system converges in at most n steps.
        assert!(stats.iterations <= 49, "iterations = {}", stats.iterations);
    }
}
