//! Property-based cross-validation of the solver family: for random
//! Dirichlet data, every solver must agree with every other, satisfy the
//! discrete maximum principle, and respect the operator's linearity.

use crate::boundary::{apply_boundary, boundary_from_fn};
use crate::{
    solve_cg, solve_dirichlet, solve_multigrid, solve_shifted_sor, solve_sor, sor_optimal_omega,
    MultigridOpts, Poisson,
};
use mf_tensor::Tensor;
use proptest::prelude::*;

/// A random smooth boundary condition built from a few sine modes.
fn grid_with_random_bc(n: usize, a: f64, b: f64, phase: f64) -> Tensor {
    let bc = boundary_from_fn(n, n, |t| {
        a * (2.0 * std::f64::consts::PI * t + phase).sin()
            + b * (4.0 * std::f64::consts::PI * t).cos()
    });
    let mut g = Tensor::zeros(n, n);
    apply_boundary(&mut g, &bc);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Multigrid, SOR and CG converge to the same solution.
    #[test]
    fn all_solvers_agree(a in -1.0f64..1.0, b in -0.5f64..0.5, phase in 0.0f64..3.0) {
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let guess = grid_with_random_bc(n, a, b, phase);
        let p = Poisson::laplace(n, n, h);
        let (mg, s1) = solve_multigrid(&p, &guess, &MultigridOpts::default());
        let (sor, s2) = solve_sor(&p, &guess, sor_optimal_omega(n), 50_000, 1e-9);
        let (cg, s3) = solve_cg(&p, &guess, 5000, 1e-9);
        prop_assert!(s1.converged && s2.converged && s3.converged);
        prop_assert!(mg.max_abs_diff(&sor) < 1e-6);
        prop_assert!(mg.max_abs_diff(&cg) < 1e-6);
    }

    /// Discrete maximum principle: the interior never exceeds the
    /// boundary extremes for the Laplace equation.
    #[test]
    fn maximum_principle(a in -2.0f64..2.0, b in -1.0f64..1.0, phase in 0.0f64..3.0) {
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let guess = grid_with_random_bc(n, a, b, phase);
        let ring: Vec<f64> = crate::boundary::extract_boundary(&guess).into_vec();
        let lo = ring.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ring.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (u, st) = solve_dirichlet(&Poisson::laplace(n, n, h), &guess, 1e-9);
        prop_assert!(st.converged);
        let tol = 1e-7 * (1.0 + hi.abs().max(lo.abs()));
        for v in u.as_slice() {
            prop_assert!(*v >= lo - tol && *v <= hi + tol);
        }
    }

    /// Linearity: solve(α·g) == α·solve(g).
    #[test]
    fn solver_is_linear_in_boundary_data(alpha in 0.2f64..4.0, phase in 0.0f64..3.0) {
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let g1 = grid_with_random_bc(n, 1.0, 0.3, phase);
        let g2 = g1.scale(alpha);
        let p = Poisson::laplace(n, n, h);
        let (u1, s1) = solve_dirichlet(&p, &g1, 1e-10);
        let (u2, s2) = solve_dirichlet(&p, &g2, 1e-10);
        prop_assert!(s1.converged && s2.converged);
        prop_assert!(u2.max_abs_diff(&u1.scale(alpha)) < 1e-6 * alpha.max(1.0));
    }

    /// The shifted solver reduces to the Laplace solution as σ → 0 and to
    /// f/σ deep in the interior as σ → ∞ (with zero boundary).
    #[test]
    fn shifted_solver_limits(fval in 0.5f64..3.0) {
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let f = Tensor::full(n, n, fval);
        let guess = Tensor::zeros(n, n);
        // Large shift: u ≈ f/σ at the center.
        let sigma = 1e6;
        let (u, st) = solve_shifted_sor(&Poisson { f: f.clone(), h }, sigma, &guess, 1.2, 50_000, 1e-12);
        prop_assert!(st.converged);
        let center = u.get(n / 2, n / 2);
        prop_assert!(
            (center - fval / sigma).abs() < 1e-3 * fval / sigma + 1e-12,
            "center {center} vs {}", fval / sigma
        );
    }
}
