//! Closed-form harmonic functions for solver validation.
//!
//! Exact solutions of the Laplace equation let the tests measure true
//! discretization + solver error instead of comparing solvers only against
//! each other.

use mf_tensor::Tensor;

/// A scalar field `u(x, y)`.
pub type HarmonicFn = Box<dyn Fn(f64, f64) -> f64>;

/// `u = x² − y² + c·xy`: a harmonic polynomial the 5-point stencil
/// reproduces exactly (zero discretization error).
pub fn harmonic_polynomial(c: f64) -> HarmonicFn {
    Box::new(move |x, y| x * x - y * y + c * x * y)
}

/// `u = sin(kπx) · sinh(kπy) / sinh(kπ)`: harmonic on the unit square, zero
/// on three edges and `sin(kπx)` on the top edge.
pub fn harmonic_sin_sinh(k: usize) -> HarmonicFn {
    let kpi = k as f64 * std::f64::consts::PI;
    Box::new(move |x, y| (kpi * x).sin() * (kpi * y).sinh() / kpi.sinh())
}

/// Evaluate `f` on an `ny×nx` grid with spacing `h` and origin
/// `(x0, y0)` (row `j`, col `i` maps to `(x0 + i·h, y0 + j·h)`).
pub fn eval_on_grid(f: &HarmonicFn, ny: usize, nx: usize, h: f64, x0: f64, y0: f64) -> Tensor {
    Tensor::from_fn(ny, nx, |j, i| f(x0 + i as f64 * h, y0 + j as f64 * h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_dirichlet, Poisson};

    #[test]
    fn sin_sinh_satisfies_continuum_laplace() {
        let f = harmonic_sin_sinh(2);
        // Numerical Laplacian of the continuum function at a point.
        let h = 1e-4;
        let (x, y) = (0.3, 0.7);
        let lap = (f(x + h, y) + f(x - h, y) + f(x, y + h) + f(x, y - h) - 4.0 * f(x, y)) / (h * h);
        assert!(lap.abs() < 1e-4, "continuum Laplacian = {lap}");
    }

    #[test]
    fn solver_error_shrinks_quadratically_for_sin_sinh() {
        // Second-order stencil: halving h should cut the error ~4x.
        let f = harmonic_sin_sinh(1);
        let mut errors = Vec::new();
        for &n in &[17usize, 33, 65] {
            let h = 1.0 / (n - 1) as f64;
            let exact = eval_on_grid(&f, n, n, h, 0.0, 0.0);
            let mut guess = exact.clone();
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    guess.set(j, i, 0.0);
                }
            }
            let (u, stats) = solve_dirichlet(&Poisson::laplace(n, n, h), &guess, 1e-11);
            assert!(stats.converged);
            errors.push(u.max_abs_diff(&exact));
        }
        assert!(errors[0] / errors[1] > 3.0, "errors: {errors:?}");
        assert!(errors[1] / errors[2] > 3.0, "errors: {errors:?}");
    }

    #[test]
    fn eval_on_grid_respects_origin() {
        let f = harmonic_polynomial(0.0);
        let t = eval_on_grid(&f, 3, 3, 0.5, 1.0, 2.0);
        // (x0, y0) = (1, 2): u(1,2) = 1 - 4 = -3 at (0,0).
        assert_eq!(t.get(0, 0), -3.0);
        // At (j=2, i=2): (x,y) = (2,3): 4 - 9 = -5.
        assert_eq!(t.get(2, 2), -5.0);
    }
}
