//! Pointwise relaxation solvers: Jacobi, red-black Gauss–Seidel, SOR.

use crate::{Poisson, SolveStats};
use mf_tensor::Tensor;

/// Max-norm of the residual `f - Δu` over interior points.
pub fn residual_norm(problem: &Poisson, u: &Tensor) -> f64 {
    let (ny, nx) = problem.shape();
    let inv_h2 = 1.0 / (problem.h * problem.h);
    let mut r = 0.0_f64;
    for j in 1..ny - 1 {
        for i in 1..nx - 1 {
            let lap = (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                - 4.0 * u.get(j, i))
                * inv_h2;
            r = r.max((problem.f.get(j, i) - lap).abs());
        }
    }
    r
}

/// Theoretically optimal SOR relaxation factor for an `n`-point-per-side
/// Laplace problem: `ω = 2 / (1 + sin(π h))` with `h = 1/(n-1)`.
pub fn sor_optimal_omega(n: usize) -> f64 {
    let h = std::f64::consts::PI / (n.max(2) - 1) as f64;
    2.0 / (1.0 + h.sin())
}

/// Weighted Jacobi iteration (weight 1 = classical Jacobi).
pub fn solve_jacobi(
    problem: &Poisson,
    u0: &Tensor,
    max_iters: usize,
    tol: f64,
) -> (Tensor, SolveStats) {
    let (ny, nx) = problem.shape();
    let h2 = problem.h * problem.h;
    let mut u = u0.clone();
    let mut next = u.clone();
    let mut iterations = 0;
    let mut residual = residual_norm(problem, &u);
    while residual > tol && iterations < max_iters {
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let v = 0.25
                    * (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                        - h2 * problem.f.get(j, i));
                next.set(j, i, v);
            }
        }
        std::mem::swap(&mut u, &mut next);
        iterations += 1;
        // Residual check every few sweeps to amortize its cost.
        if iterations % 8 == 0 || iterations == max_iters {
            residual = residual_norm(problem, &u);
        }
    }
    residual = residual_norm(problem, &u);
    (
        u,
        SolveStats {
            iterations,
            residual,
            converged: residual <= tol,
        },
    )
}

/// One red-black Gauss–Seidel sweep (both colors), in place.
///
/// Red-black ordering decouples the update into two halves that are each
/// embarrassingly parallel and is the standard multigrid smoother.
pub fn rbgs_sweep(problem: &Poisson, u: &mut Tensor) {
    let (ny, nx) = problem.shape();
    let h2 = problem.h * problem.h;
    for color in 0..2 {
        for j in 1..ny - 1 {
            // First interior column whose (i + j) parity matches `color`.
            let start = 1 + ((j + 1 + color) % 2);
            let mut i = start;
            while i < nx - 1 {
                let v = 0.25
                    * (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                        - h2 * problem.f.get(j, i));
                u.set(j, i, v);
                i += 2;
            }
        }
    }
}

/// Red-black Gauss–Seidel until convergence.
pub fn solve_rbgs(
    problem: &Poisson,
    u0: &Tensor,
    max_iters: usize,
    tol: f64,
) -> (Tensor, SolveStats) {
    let mut u = u0.clone();
    let mut iterations = 0;
    let mut residual = residual_norm(problem, &u);
    while residual > tol && iterations < max_iters {
        rbgs_sweep(problem, &mut u);
        iterations += 1;
        if iterations % 8 == 0 || iterations == max_iters {
            residual = residual_norm(problem, &u);
        }
    }
    residual = residual_norm(problem, &u);
    (
        u,
        SolveStats {
            iterations,
            residual,
            converged: residual <= tol,
        },
    )
}

/// SOR for the shifted operator `σu − Δu = f` (σ = 0 gives `−Δu = f`).
///
/// This is the implicit-Euler heat operator (`σ = 1/(α·Δt)`), used by the
/// time-dependent extension of the Mosaic Flow predictor. The shift makes
/// the system strictly diagonally dominant, so plain GS/SOR converges
/// quickly.
pub fn solve_shifted_sor(
    problem: &Poisson,
    sigma: f64,
    u0: &Tensor,
    omega: f64,
    max_iters: usize,
    tol: f64,
) -> (Tensor, SolveStats) {
    assert!(
        sigma >= 0.0,
        "solve_shifted_sor: sigma must be non-negative"
    );
    assert!(omega > 0.0 && omega < 2.0, "SOR requires 0 < omega < 2");
    let (ny, nx) = problem.shape();
    let h2 = problem.h * problem.h;
    let diag = 4.0 + sigma * h2;
    let mut u = u0.clone();
    let residual_shifted = |u: &Tensor| -> f64 {
        let inv_h2 = 1.0 / h2;
        let mut r = 0.0_f64;
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let lap = (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                    - 4.0 * u.get(j, i))
                    * inv_h2;
                r = r.max((problem.f.get(j, i) - sigma * u.get(j, i) + lap).abs());
            }
        }
        r
    };
    let mut iterations = 0;
    let mut residual = residual_shifted(&u);
    while residual > tol && iterations < max_iters {
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let nbrs = u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i);
                let gs = (h2 * problem.f.get(j, i) + nbrs) / diag;
                let old = u.get(j, i);
                u.set(j, i, old + omega * (gs - old));
            }
        }
        iterations += 1;
        if iterations % 8 == 0 || iterations == max_iters {
            residual = residual_shifted(&u);
        }
    }
    residual = residual_shifted(&u);
    (
        u,
        SolveStats {
            iterations,
            residual,
            converged: residual <= tol,
        },
    )
}

/// Successive over-relaxation with factor `omega` (lexicographic sweeps).
pub fn solve_sor(
    problem: &Poisson,
    u0: &Tensor,
    omega: f64,
    max_iters: usize,
    tol: f64,
) -> (Tensor, SolveStats) {
    assert!(
        omega > 0.0 && omega < 2.0,
        "SOR requires 0 < omega < 2, got {omega}"
    );
    let (ny, nx) = problem.shape();
    let h2 = problem.h * problem.h;
    let mut u = u0.clone();
    let mut iterations = 0;
    let mut residual = residual_norm(problem, &u);
    while residual > tol && iterations < max_iters {
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let gs = 0.25
                    * (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                        - h2 * problem.f.get(j, i));
                let old = u.get(j, i);
                u.set(j, i, old + omega * (gs - old));
            }
        }
        iterations += 1;
        if iterations % 8 == 0 || iterations == max_iters {
            residual = residual_norm(problem, &u);
        }
    }
    residual = residual_norm(problem, &u);
    (
        u,
        SolveStats {
            iterations,
            residual,
            converged: residual <= tol,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_exact(n: usize) -> (Poisson, Tensor, Tensor) {
        // u = 1 + 2x + 3y is harmonic and exactly representable.
        let h = 1.0 / (n - 1) as f64;
        let exact = Tensor::from_fn(n, n, |j, i| 1.0 + 2.0 * i as f64 * h + 3.0 * j as f64 * h);
        let mut guess = exact.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                guess.set(j, i, 0.0);
            }
        }
        (Poisson::laplace(n, n, h), guess, exact)
    }

    #[test]
    fn jacobi_converges_to_linear_solution() {
        let (p, g, exact) = linear_exact(11);
        let (u, stats) = solve_jacobi(&p, &g, 5000, 1e-10);
        assert!(stats.converged);
        assert!(u.max_abs_diff(&exact) < 1e-8);
    }

    #[test]
    fn rbgs_converges_faster_than_jacobi() {
        let (p, g, _) = linear_exact(17);
        let (_, sj) = solve_jacobi(&p, &g, 20_000, 1e-8);
        let (_, sg) = solve_rbgs(&p, &g, 20_000, 1e-8);
        assert!(sg.converged && sj.converged);
        assert!(
            sg.iterations < sj.iterations,
            "RBGS ({}) should beat Jacobi ({})",
            sg.iterations,
            sj.iterations
        );
    }

    #[test]
    fn sor_with_optimal_omega_beats_gauss_seidel() {
        let (p, g, _) = linear_exact(33);
        let (_, s_gs) = solve_sor(&p, &g, 1.0, 50_000, 1e-8); // ω=1 is Gauss–Seidel
        let (_, s_opt) = solve_sor(&p, &g, sor_optimal_omega(33), 50_000, 1e-8);
        assert!(s_opt.converged);
        assert!(
            s_opt.iterations < s_gs.iterations / 2,
            "optimal SOR ({}) should be far faster than GS ({})",
            s_opt.iterations,
            s_gs.iterations
        );
    }

    #[test]
    fn poisson_with_constant_rhs() {
        // Δu = 2 with u = x² on the boundary has exact solution u = x².
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let exact = Tensor::from_fn(n, n, |_, i| (i as f64 * h).powi(2));
        let mut guess = exact.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                guess.set(j, i, 0.0);
            }
        }
        let p = Poisson {
            f: Tensor::full(n, n, 2.0),
            h,
        };
        let (u, stats) = solve_sor(&p, &guess, sor_optimal_omega(n), 20_000, 1e-10);
        assert!(stats.converged);
        assert!(u.max_abs_diff(&exact) < 1e-7);
    }

    #[test]
    fn shifted_sor_solves_manufactured_helmholtz_problem() {
        // σu − Δu = f with u = sin(πx)sin(πy) ⇒ f = (σ + 2π²)u; u = 0 on
        // the boundary of the unit square.
        let n = 33;
        let h = 1.0 / (n - 1) as f64;
        let sigma = 50.0;
        let pi = std::f64::consts::PI;
        let exact = Tensor::from_fn(n, n, |j, i| {
            (pi * i as f64 * h).sin() * (pi * j as f64 * h).sin()
        });
        let f = exact.scale(sigma + 2.0 * pi * pi);
        let p = Poisson { f, h };
        let guess = Tensor::zeros(n, n);
        let (u, stats) = solve_shifted_sor(&p, sigma, &guess, 1.5, 50_000, 1e-9);
        assert!(stats.converged, "{stats:?}");
        // Second-order discretization error dominates.
        assert!(
            u.max_abs_diff(&exact) < 5e-3,
            "err {}",
            u.max_abs_diff(&exact)
        );
    }

    #[test]
    fn shifted_sor_with_zero_shift_matches_plain_sor() {
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        // -Δu = f convention: compare on a Poisson problem Δu = g by
        // passing f = -g to the shifted solver.
        let g = Tensor::full(n, n, 2.0);
        let exact = Tensor::from_fn(n, n, |_, i| (i as f64 * h).powi(2));
        let mut guess = exact.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                guess.set(j, i, 0.0);
            }
        }
        let (u_plain, s1) = solve_sor(&Poisson { f: g.clone(), h }, &guess, 1.5, 50_000, 1e-10);
        let (u_shift, s2) = solve_shifted_sor(
            &Poisson {
                f: g.scale(-1.0),
                h,
            },
            0.0,
            &guess,
            1.5,
            50_000,
            1e-10,
        );
        assert!(s1.converged && s2.converged);
        assert!(u_plain.max_abs_diff(&u_shift) < 1e-7);
    }

    #[test]
    fn larger_shift_converges_faster() {
        // Diagonal dominance grows with sigma, so the iteration count
        // drops — the reason Schwarz for time-dependent problems needs
        // only neighbor exchanges (§5.3 of the paper).
        let n = 33;
        let h = 1.0 / (n - 1) as f64;
        let f = Tensor::ones(n, n);
        let p = Poisson { f, h };
        let guess = Tensor::zeros(n, n);
        let (_, weak) = solve_shifted_sor(&p, 1.0, &guess, 1.0, 100_000, 1e-9);
        let (_, strong) = solve_shifted_sor(&p, 1000.0, &guess, 1.0, 100_000, 1e-9);
        assert!(weak.converged && strong.converged);
        assert!(strong.iterations < weak.iterations);
    }

    #[test]
    fn residual_norm_is_zero_on_exact_solution() {
        let (p, _, exact) = linear_exact(9);
        assert!(residual_norm(&p, &exact) < 1e-10);
    }

    #[test]
    fn boundary_ring_is_never_modified() {
        let (p, g, _) = linear_exact(9);
        let (u, _) = solve_rbgs(&p, &g, 100, 1e-12);
        for i in 0..9 {
            assert_eq!(u.get(0, i), g.get(0, i));
            assert_eq!(u.get(8, i), g.get(8, i));
            assert_eq!(u.get(i, 0), g.get(i, 0));
            assert_eq!(u.get(i, 8), g.get(i, 8));
        }
    }
}
