//! Geometric multigrid V-cycle for the 5-point Dirichlet problem.
//!
//! Vertex-centered coarsening: a grid with `2^k + 1` points per side
//! coarsens to `2^(k-1) + 1`. Components: red-black Gauss–Seidel smoothing,
//! full-weighting restriction, bilinear prolongation, and a deep RBGS solve
//! on the coarsest level. This is the workhorse that generates ground truth
//! for large domains (the paper used pyAMG for the same purpose).

use crate::relax::{rbgs_sweep, residual_norm};
use crate::{Poisson, SolveStats};
use mf_tensor::Tensor;

/// Options for [`solve_multigrid`].
#[derive(Clone, Copy, Debug)]
pub struct MultigridOpts {
    /// Residual max-norm tolerance.
    pub tol: f64,
    /// Maximum number of V-cycles.
    pub max_cycles: usize,
    /// Pre-smoothing sweeps per level.
    pub pre_sweeps: usize,
    /// Post-smoothing sweeps per level.
    pub post_sweeps: usize,
}

impl Default for MultigridOpts {
    fn default() -> Self {
        Self {
            tol: 1e-9,
            max_cycles: 60,
            pre_sweeps: 2,
            post_sweeps: 2,
        }
    }
}

/// Whether both dimensions admit at least one vertex-centered coarsening
/// (`n = 2^k + 1` with `k ≥ 2`).
pub fn can_coarsen(ny: usize, nx: usize) -> bool {
    fn ok(n: usize) -> bool {
        n >= 5 && (n - 1).is_power_of_two()
    }
    ok(ny) && ok(nx)
}

/// Solve with V-cycles. `u0`'s ring supplies the Dirichlet data.
///
/// Panics if the grid cannot be coarsened (check [`can_coarsen`] first or
/// use [`crate::solve_dirichlet`], which falls back to SOR).
pub fn solve_multigrid(
    problem: &Poisson,
    u0: &Tensor,
    opts: &MultigridOpts,
) -> (Tensor, SolveStats) {
    let (ny, nx) = problem.shape();
    assert!(
        can_coarsen(ny, nx),
        "solve_multigrid: {ny}x{nx} is not coarsenable (need 2^k+1)"
    );
    let mut u = u0.clone();
    let mut cycles = 0;
    let mut residual = residual_norm(problem, &u);
    while residual > opts.tol && cycles < opts.max_cycles {
        vcycle(problem, &mut u, opts);
        residual = residual_norm(problem, &u);
        cycles += 1;
    }
    (
        u,
        SolveStats {
            iterations: cycles,
            residual,
            converged: residual <= opts.tol,
        },
    )
}

/// One V-cycle on `u` (in place).
pub fn vcycle(problem: &Poisson, u: &mut Tensor, opts: &MultigridOpts) {
    let (ny, nx) = problem.shape();
    if ny <= 5 || nx <= 5 || !can_coarsen(ny, nx) {
        // Coarsest level: smooth hard.
        for _ in 0..60 {
            rbgs_sweep(problem, u);
        }
        return;
    }

    for _ in 0..opts.pre_sweeps {
        rbgs_sweep(problem, u);
    }

    // Residual r = f - Δu (interior), restricted to the coarse grid.
    let r = residual_field(problem, u);
    let rc = restrict_full_weighting(&r);

    // Coarse-grid error equation Δe = r with zero Dirichlet error boundary.
    let coarse = Poisson {
        f: rc,
        h: problem.h * 2.0,
    };
    let (cy, cx) = coarse.shape();
    let mut e = Tensor::zeros(cy, cx);
    vcycle(&coarse, &mut e, opts);

    // Correct: u += P e.
    let ef = prolong_bilinear(&e, ny, nx);
    for j in 1..ny - 1 {
        for i in 1..nx - 1 {
            let v = u.get(j, i) + ef.get(j, i);
            u.set(j, i, v);
        }
    }

    for _ in 0..opts.post_sweeps {
        rbgs_sweep(problem, u);
    }
}

/// Interior residual field `f - Δu` (zero on the ring).
fn residual_field(problem: &Poisson, u: &Tensor) -> Tensor {
    let (ny, nx) = problem.shape();
    let inv_h2 = 1.0 / (problem.h * problem.h);
    let mut r = Tensor::zeros(ny, nx);
    for j in 1..ny - 1 {
        for i in 1..nx - 1 {
            let lap = (u.get(j, i - 1) + u.get(j, i + 1) + u.get(j - 1, i) + u.get(j + 1, i)
                - 4.0 * u.get(j, i))
                * inv_h2;
            r.set(j, i, problem.f.get(j, i) - lap);
        }
    }
    r
}

/// Full-weighting restriction onto the `(n+1)/2`-point grid.
fn restrict_full_weighting(fine: &Tensor) -> Tensor {
    let (ny, nx) = fine.shape();
    let (cy, cx) = (ny.div_ceil(2), nx.div_ceil(2));
    let mut coarse = Tensor::zeros(cy, cx);
    for j in 1..cy - 1 {
        for i in 1..cx - 1 {
            let (fj, fi) = (2 * j, 2 * i);
            let center = fine.get(fj, fi);
            let edges = fine.get(fj, fi - 1)
                + fine.get(fj, fi + 1)
                + fine.get(fj - 1, fi)
                + fine.get(fj + 1, fi);
            let corners = fine.get(fj - 1, fi - 1)
                + fine.get(fj - 1, fi + 1)
                + fine.get(fj + 1, fi - 1)
                + fine.get(fj + 1, fi + 1);
            coarse.set(j, i, 0.25 * center + 0.125 * edges + 0.0625 * corners);
        }
    }
    coarse
}

/// Bilinear prolongation onto an `ny×nx` fine grid.
fn prolong_bilinear(coarse: &Tensor, ny: usize, nx: usize) -> Tensor {
    let (cy, cx) = coarse.shape();
    assert_eq!(ny.div_ceil(2), cy, "prolong: shape mismatch");
    assert_eq!(nx.div_ceil(2), cx, "prolong: shape mismatch");
    let mut fine = Tensor::zeros(ny, nx);
    for j in 0..ny {
        for i in 0..nx {
            let (cj, ci) = (j / 2, i / 2);
            let v = match (j % 2, i % 2) {
                (0, 0) => coarse.get(cj, ci),
                (0, 1) => 0.5 * (coarse.get(cj, ci) + coarse.get(cj, ci + 1)),
                (1, 0) => 0.5 * (coarse.get(cj, ci) + coarse.get(cj + 1, ci)),
                (1, 1) => {
                    0.25 * (coarse.get(cj, ci)
                        + coarse.get(cj, ci + 1)
                        + coarse.get(cj + 1, ci)
                        + coarse.get(cj + 1, ci + 1))
                }
                _ => unreachable!(),
            };
            fine.set(j, i, v);
        }
    }
    fine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_sor, sor_optimal_omega};

    #[test]
    fn can_coarsen_detects_valid_sizes() {
        assert!(can_coarsen(5, 5));
        assert!(can_coarsen(33, 17));
        assert!(can_coarsen(129, 65));
        assert!(!can_coarsen(4, 5));
        assert!(!can_coarsen(6, 5));
        assert!(!can_coarsen(32, 33));
    }

    fn trig_boundary_problem(n: usize) -> (Poisson, Tensor) {
        let h = 1.0 / (n - 1) as f64;
        let mut guess = Tensor::zeros(n, n);
        for i in 0..n {
            let t = i as f64 * h;
            guess.set(0, i, (std::f64::consts::PI * t).sin());
            guess.set(n - 1, i, -(2.0 * std::f64::consts::PI * t).sin());
            guess.set(i, 0, 0.0);
            guess.set(i, n - 1, t * (1.0 - t));
        }
        (Poisson::laplace(n, n, h), guess)
    }

    #[test]
    fn multigrid_matches_sor_reference() {
        let (p, g) = trig_boundary_problem(33);
        let (umg, smg) = solve_multigrid(&p, &g, &MultigridOpts::default());
        let (usor, ssor) = solve_sor(&p, &g, sor_optimal_omega(33), 100_000, 1e-9);
        assert!(smg.converged, "{smg:?}");
        assert!(ssor.converged);
        assert!(umg.max_abs_diff(&usor) < 1e-6);
    }

    #[test]
    fn multigrid_converges_in_few_cycles() {
        // Textbook multigrid: O(10) V-cycles independent of grid size.
        let (p, g) = trig_boundary_problem(65);
        let (_, stats) = solve_multigrid(&p, &g, &MultigridOpts::default());
        assert!(stats.converged);
        assert!(stats.iterations <= 25, "needed {} cycles", stats.iterations);
    }

    #[test]
    fn cycle_count_is_mesh_independent() {
        let mut counts = Vec::new();
        for &n in &[17, 33, 65, 129] {
            let (p, g) = trig_boundary_problem(n);
            let (_, stats) = solve_multigrid(&p, &g, &MultigridOpts::default());
            assert!(stats.converged, "n={n}: {stats:?}");
            counts.push(stats.iterations);
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= min + 12, "cycle counts vary too much: {counts:?}");
    }

    #[test]
    fn exact_on_bilinear_function() {
        // u = xy is harmonic and reproduced exactly by the stencil.
        let n = 17;
        let h = 1.0 / (n - 1) as f64;
        let exact = Tensor::from_fn(n, n, |j, i| (i as f64 * h) * (j as f64 * h));
        let mut guess = exact.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                guess.set(j, i, 0.5);
            }
        }
        let (u, stats) = solve_multigrid(
            &Poisson::laplace(n, n, h),
            &guess,
            &MultigridOpts::default(),
        );
        assert!(stats.converged);
        assert!(u.max_abs_diff(&exact) < 1e-8);
    }

    #[test]
    fn restriction_and_prolongation_shapes_round_trip() {
        let fine = Tensor::from_fn(9, 9, |j, i| (j * 9 + i) as f64);
        let coarse = restrict_full_weighting(&fine);
        assert_eq!(coarse.shape(), (5, 5));
        let back = prolong_bilinear(&coarse, 9, 9);
        assert_eq!(back.shape(), (9, 9));
    }

    #[test]
    fn prolongation_preserves_constants_in_interior() {
        let coarse = Tensor::ones(5, 5);
        let fine = prolong_bilinear(&coarse, 9, 9);
        for j in 0..9 {
            for i in 0..9 {
                assert!((fine.get(j, i) - 1.0).abs() < 1e-12);
            }
        }
    }
}
