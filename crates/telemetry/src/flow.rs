//! Cross-rank flow events: the causal half of the trace.
//!
//! A span shows *where time went on one rank*; a flow connects two spans
//! on different ranks — a message leaving its sender and arriving at its
//! receiver. Each flow carries a caller-chosen 64-bit id; the Chrome
//! exporter emits the pair as `ph:"s"` / `ph:"f"` events with that id, so
//! Perfetto draws an arrow between the enclosing slices and a merged
//! timeline shows halo exchanges and allreduce straggler lag across all
//! simulated ranks.
//!
//! Like spans, flows are buffered thread-locally and gated on
//! [`crate::tracing_enabled`] by convention (callers check before
//! recording); [`crate::flush_thread`] moves them into the process-wide
//! collector.

use crate::now_us;
use crate::sink::SINK;

/// Which end of a flow an event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowPhase {
    /// The producing end (a send) — Chrome phase `"s"`.
    Start,
    /// The consuming end (a delivery) — Chrome phase `"f"`.
    Finish,
}

/// One endpooint of a cross-rank flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowEvent {
    /// Site name, e.g. `"comm.send"`.
    pub name: String,
    /// Rank of the recording thread (0 for untagged threads).
    pub rank: usize,
    /// Timestamp, microseconds since the telemetry epoch.
    pub ts_us: u64,
    /// Flow id; the start and finish ends of one flow share it.
    pub id: u64,
    /// Which end this event is.
    pub phase: FlowPhase,
    /// Numeric arguments captured at record time.
    pub args: Vec<(String, f64)>,
}

/// Record one end of a cross-rank flow on the current thread.
///
/// Callers should check [`crate::tracing_enabled`] first (the simulated
/// communicator does), keeping the disabled cost to one atomic load.
pub fn record_flow(name: &'static str, id: u64, phase: FlowPhase, args: &[(&'static str, f64)]) {
    let ts_us = now_us();
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        let rank = s.rank.unwrap_or(0);
        s.flows.push(FlowEvent {
            name: name.to_string(),
            rank,
            ts_us,
            id,
            phase,
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drain_flows, flush_thread};

    #[test]
    fn flows_record_rank_id_and_phase() {
        std::thread::spawn(|| {
            crate::set_thread_rank(5);
            record_flow("flow.test.a", 42, FlowPhase::Start, &[("bytes", 64.0)]);
            record_flow("flow.test.a", 42, FlowPhase::Finish, &[]);
            flush_thread();
        })
        .join()
        .unwrap();
        let flows: Vec<FlowEvent> = drain_flows()
            .into_iter()
            .filter(|f| f.name == "flow.test.a")
            .collect();
        assert_eq!(flows.len(), 2);
        assert!(flows.iter().all(|f| f.rank == 5 && f.id == 42));
        assert_eq!(flows[0].phase, FlowPhase::Start);
        assert_eq!(flows[0].args, vec![("bytes".to_string(), 64.0)]);
        assert_eq!(flows[1].phase, FlowPhase::Finish);
        assert!(drain_flows().iter().all(|f| f.name != "flow.test.a"));
    }
}
