//! Fixed-capacity time-series rings: rates and tails over time.
//!
//! Counters and histograms accumulate forever, which answers "how much in
//! total" but not "how fast right now" or "what did the last few seconds
//! look like". A [`Series`] buckets observations into fixed 100 ms
//! windows held in a ring of [`SERIES_WINDOWS`] slots (~25 s of history),
//! so a scrape or a `--watch` repaint can compute recent rates and
//! per-window aggregates without unbounded storage.
//!
//! Storage follows the metrics design: slots are handed out by the
//! process-wide registry, values live in plain thread-local vectors, and
//! a warm [`Series::record`] is an index computation plus a few stores —
//! no locks, no allocation (the ring is allocated on the first record).

use crate::metrics::series_slot;
use crate::sink::SINK;

/// Number of windows a series ring holds (~25 s at 100 ms per window).
pub const SERIES_WINDOWS: usize = 256;

/// Width of one series window in microseconds (100 ms).
pub const SERIES_WINDOW_US: u64 = 100_000;

/// One 100 ms aggregation window of a [`Series`] ring.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesWindow {
    /// Window index: `now_us / SERIES_WINDOW_US` at record time. A slot
    /// whose stored id no longer matches the current wall-clock window is
    /// stale and is reset on the next record that lands in it.
    pub id: u64,
    /// Observations recorded in this window.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value (0 when the window is empty).
    pub max: f64,
}

/// Per-thread ring storage (crate-internal; lives in the thread sink).
#[derive(Clone, Debug, Default)]
pub(crate) struct SeriesData {
    /// Empty until the first record; then exactly [`SERIES_WINDOWS`]
    /// entries indexed by `window_id % SERIES_WINDOWS`.
    pub windows: Vec<SeriesWindow>,
}

/// Handle to a named time-series ring.
#[derive(Clone, Copy, Debug)]
pub struct Series {
    slot: usize,
}

/// Get (registering on first use) the series named `name`. Handles with
/// the same name share the slot.
pub fn series(name: &'static str) -> Series {
    Series {
        slot: series_slot(name),
    }
}

impl Series {
    /// Record one observation in the current 100 ms window of the current
    /// thread's ring. Warm cost: one thread-local borrow, an index
    /// computation, and a few stores.
    pub fn record(self, v: f64) {
        let id = crate::now_us() / SERIES_WINDOW_US;
        SINK.with(|s| {
            let mut s = s.borrow_mut();
            if s.series.len() <= self.slot {
                s.series.resize_with(self.slot + 1, SeriesData::default);
            }
            let d = &mut s.series[self.slot];
            if d.windows.is_empty() {
                d.windows = vec![SeriesWindow::default(); SERIES_WINDOWS];
            }
            let w = &mut d.windows[(id % SERIES_WINDOWS as u64) as usize];
            if w.id != id {
                *w = SeriesWindow {
                    id,
                    ..SeriesWindow::default()
                };
            }
            w.count += 1;
            w.sum += v;
            w.max = w.max.max(v);
        });
    }

    /// Record `1.0` (an event-rate series).
    pub fn mark(self) {
        self.record(1.0);
    }
}

/// Frozen state of one series ring.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesSnapshot {
    /// Registered series name.
    pub name: String,
    /// Non-empty windows, ordered by ascending window id.
    pub windows: Vec<SeriesWindow>,
}

impl SeriesSnapshot {
    /// Merge `other`'s windows into `self`, aligning by window id:
    /// counts and sums add, maxima take the max. Used when folding
    /// per-rank rings into one scrape view.
    pub fn merge(&mut self, other: &SeriesSnapshot) {
        for w in &other.windows {
            match self.windows.binary_search_by_key(&w.id, |x| x.id) {
                Ok(i) => {
                    let mine = &mut self.windows[i];
                    mine.count += w.count;
                    mine.sum += w.sum;
                    mine.max = mine.max.max(w.max);
                }
                Err(i) => self.windows.insert(i, *w),
            }
        }
    }

    /// Events per second over the most recent `n` windows (by id), using
    /// the window width as the time base. Returns 0 for an empty ring.
    pub fn rate_per_sec(&self, n: usize) -> f64 {
        if self.windows.is_empty() || n == 0 {
            return 0.0;
        }
        let start = self.windows.len().saturating_sub(n);
        let recent = &self.windows[start..];
        let events: u64 = recent.iter().map(|w| w.count).sum();
        // Time spanned: from the oldest selected window to the newest,
        // inclusive — ids are consecutive only while events keep coming,
        // so measure the actual id span.
        let span = recent.last().unwrap().id - recent[0].id + 1;
        events as f64 / (span as f64 * SERIES_WINDOW_US as f64 / 1e6)
    }

    /// Mean observed value over the most recent `n` windows.
    pub fn recent_mean(&self, n: usize) -> f64 {
        let start = self.windows.len().saturating_sub(n);
        let recent = &self.windows[start..];
        let events: u64 = recent.iter().map(|w| w.count).sum();
        if events == 0 {
            return 0.0;
        }
        recent.iter().map(|w| w.sum).sum::<f64>() / events as f64
    }

    /// Per-window counts of the most recent `n` windows, zero-filled for
    /// id gaps — ready for a sparkline.
    pub fn recent_counts(&self, n: usize) -> Vec<f64> {
        let Some(last) = self.windows.last() else {
            return Vec::new();
        };
        let first_id = (last.id + 1).saturating_sub(n as u64);
        let mut out = vec![0.0; (last.id + 1 - first_id) as usize];
        for w in &self.windows {
            if w.id >= first_id {
                out[(w.id - first_id) as usize] = w.count as f64;
            }
        }
        out
    }
}

pub(crate) fn snapshot_data(name: &str, d: &SeriesData) -> SeriesSnapshot {
    let mut windows: Vec<SeriesWindow> =
        d.windows.iter().filter(|w| w.count > 0).copied().collect();
    windows.sort_by_key(|w| w.id);
    SeriesSnapshot {
        name: name.to_string(),
        windows,
    }
}

/// Capture the current thread's value of every registered series.
pub fn series_snapshot() -> Vec<SeriesSnapshot> {
    let names = crate::metrics::series_names();
    SINK.with(|s| {
        let s = s.borrow();
        names
            .iter()
            .enumerate()
            .map(|(i, name)| match s.series.get(i) {
                Some(d) => snapshot_data(name, d),
                None => SeriesSnapshot {
                    name: name.to_string(),
                    windows: Vec::new(),
                },
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lands_in_the_current_window_and_snapshots_sorted() {
        let s = series("test.series.basic");
        s.record(2.0);
        s.record(4.0);
        let snaps = series_snapshot();
        let mine = snaps
            .iter()
            .find(|s| s.name == "test.series.basic")
            .expect("registered series missing");
        assert!(!mine.windows.is_empty());
        let total: u64 = mine.windows.iter().map(|w| w.count).sum();
        assert!(total >= 2);
        assert!(mine.windows.windows(2).all(|p| p[0].id < p[1].id));
        assert!(mine.rate_per_sec(SERIES_WINDOWS) > 0.0);
        assert!(mine.recent_mean(SERIES_WINDOWS) >= 2.0);
    }

    #[test]
    fn stale_slots_are_reset_on_reuse() {
        // Craft a ring where an old window occupies the slot a new id
        // maps to; recording must reset it rather than accumulate.
        let mut d = SeriesData {
            windows: vec![SeriesWindow::default(); SERIES_WINDOWS],
        };
        let old_id = 7u64;
        let new_id = old_id + SERIES_WINDOWS as u64; // same slot
        d.windows[(old_id % SERIES_WINDOWS as u64) as usize] = SeriesWindow {
            id: old_id,
            count: 5,
            sum: 50.0,
            max: 10.0,
        };
        // Simulate Series::record's slot logic for new_id.
        let w = &mut d.windows[(new_id % SERIES_WINDOWS as u64) as usize];
        if w.id != new_id {
            *w = SeriesWindow {
                id: new_id,
                ..SeriesWindow::default()
            };
        }
        w.count += 1;
        w.sum += 3.0;
        w.max = w.max.max(3.0);
        let snap = snapshot_data("t", &d);
        assert_eq!(snap.windows.len(), 1);
        assert_eq!(
            snap.windows[0],
            SeriesWindow {
                id: new_id,
                count: 1,
                sum: 3.0,
                max: 3.0
            }
        );
    }

    #[test]
    fn merge_aligns_by_window_id() {
        let mut a = SeriesSnapshot {
            name: "t".into(),
            windows: vec![
                SeriesWindow {
                    id: 10,
                    count: 2,
                    sum: 4.0,
                    max: 3.0,
                },
                SeriesWindow {
                    id: 12,
                    count: 1,
                    sum: 1.0,
                    max: 1.0,
                },
            ],
        };
        let b = SeriesSnapshot {
            name: "t".into(),
            windows: vec![
                SeriesWindow {
                    id: 10,
                    count: 1,
                    sum: 10.0,
                    max: 10.0,
                },
                SeriesWindow {
                    id: 11,
                    count: 4,
                    sum: 8.0,
                    max: 2.0,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(
            a.windows.iter().map(|w| w.id).collect::<Vec<_>>(),
            [10, 11, 12]
        );
        assert_eq!(a.windows[0].count, 3);
        assert_eq!(a.windows[0].sum, 14.0);
        assert_eq!(a.windows[0].max, 10.0);
        assert_eq!(a.windows[1].count, 4);
    }

    #[test]
    fn recent_counts_zero_fills_gaps() {
        let s = SeriesSnapshot {
            name: "t".into(),
            windows: vec![
                SeriesWindow {
                    id: 5,
                    count: 2,
                    sum: 2.0,
                    max: 1.0,
                },
                SeriesWindow {
                    id: 8,
                    count: 1,
                    sum: 1.0,
                    max: 1.0,
                },
            ],
        };
        assert_eq!(s.recent_counts(4), vec![2.0, 0.0, 0.0, 1.0]);
        assert_eq!(s.recent_counts(2), vec![0.0, 1.0]);
        // Rate over ids 5..=8: 3 events over 4 windows of 0.1 s.
        assert!((s.rate_per_sec(2) - 3.0 / 0.4).abs() < 1e-9);
    }
}
