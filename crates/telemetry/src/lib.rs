//! Unified tracing, metrics, and profiling for the mosaic-flow workspace.
//!
//! Three layers, designed so the hot paths of the trainer, the simulated
//! collectives, and the distributed MF predictor can be instrumented once
//! and observed in several ways:
//!
//! 1. **Spans** ([`span!`], [`SpanGuard`]) — RAII-scoped trace events with
//!    monotonic microsecond timestamps, per-thread buffers, and numeric
//!    arguments. Tracing is off by default; the [`span!`] macro costs one
//!    relaxed atomic load when disabled and evaluates its arguments only
//!    when enabled.
//! 2. **Metrics** ([`counter`], [`gauge`], [`histogram`]) — an always-on
//!    registry of named counters, gauges, and fixed-bucket histograms.
//!    Values live in plain (non-atomic) thread-local storage, so each
//!    simulated rank — one thread under `Cluster::run` — accumulates its
//!    own independent set; recording is a vector index plus an add.
//! 3. **Exporters** — a human-readable summary report
//!    ([`render_report`]), a JSONL trace file ([`write_jsonl`]), and a
//!    Chrome `trace_event` JSON file ([`write_chrome_trace`]) loadable in
//!    `chrome://tracing` / Perfetto for flame-graph inspection.
//!
//! Distributed runs aggregate per-rank [`MetricsSnapshot`]s over the
//! existing communicator (see `mf_dist::gather_rank_metrics`), which uses
//! [`MetricsSnapshot::serialize`]/[`MetricsSnapshot::parse`] from this
//! crate, and emit one merged report.
//!
//! ```
//! mf_telemetry::set_tracing(true);
//! let c = mf_telemetry::counter("demo.events");
//! {
//!     mf_telemetry::span!("demo.work", items = 3);
//!     c.add(3);
//! }
//! let spans = mf_telemetry::drain_spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].name, "demo.work");
//! mf_telemetry::set_tracing(false);
//! ```

mod export;
mod expose;
mod flow;
mod json;
mod metrics;
mod publish;
mod report;
mod series;
mod sink;
mod span;

pub use export::{
    parse_chrome_trace, parse_chrome_trace_full, parse_jsonl, write_chrome_trace,
    write_chrome_trace_with_flows, write_jsonl,
};
pub use expose::{render_openmetrics, render_snapshot_json, sanitize_metric_name};
pub use flow::{record_flow, FlowEvent, FlowPhase};
pub use json::JsonValue;
pub use metrics::{
    counter, gauge, histogram, snapshot, Buckets, Counter, Gauge, HistSnapshot, Histogram,
    MetricValue, MetricsSnapshot,
};
pub use publish::{
    merged_series, merged_snapshot, per_rank_snapshots, publish_thread, published_series,
};
pub use report::render_report;
pub use series::{
    series, series_snapshot, Series, SeriesSnapshot, SeriesWindow, SERIES_WINDOWS, SERIES_WINDOW_US,
};
pub use sink::{
    clear_spans, drain_flows, drain_spans, flush_thread, reset_thread_metrics, set_thread_rank,
    thread_rank,
};
pub use span::{begin_span, with_span, SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static METRICS_REPORT: AtomicBool = AtomicBool::new(false);

/// Turn span tracing on or off globally. Off by default.
pub fn set_tracing(on: bool) {
    if on {
        // Pin the clock epoch before the first span so timestamps are
        // comparable across threads started later.
        let _ = epoch();
    }
    TRACING.store(on, Ordering::SeqCst);
}

/// Whether span tracing is enabled. One relaxed atomic load — this is the
/// entire cost of a disabled [`span!`] site.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Request that distributed runs print a merged per-rank metrics report
/// (the `--metrics` CLI flag). Off by default.
pub fn set_metrics_report(on: bool) {
    METRICS_REPORT.store(on, Ordering::SeqCst);
}

/// Whether a merged metrics report was requested.
pub fn metrics_report_enabled() -> bool {
    METRICS_REPORT.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide telemetry epoch (first use).
/// Monotonic and shared by all threads.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Time `f`, returning its result and the elapsed wall seconds; when
/// tracing is enabled the interval is also recorded as a span named
/// `name`. This is the measurement helper used by the `repro_fig*`
/// binaries so their printed tables and the exported trace agree.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let guard = if tracing_enabled() {
        Some(begin_span(name, &[]))
    } else {
        None
    };
    let t0 = Instant::now();
    let out = f();
    let secs = t0.elapsed().as_secs_f64();
    drop(guard);
    (out, secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let mut acc = 0u64;
        for i in 0..10_000 {
            acc = acc.wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, secs) = timed("test.timed", || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
