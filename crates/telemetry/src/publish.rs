//! Cross-thread publication of thread-local metrics for live scraping.
//!
//! Metric values live in plain non-atomic thread-locals (see
//! [`crate::sink`]), so another thread — an exposition server answering
//! `GET /metrics` — cannot read them directly. Instead, instrumented
//! loops call [`publish_thread`] at a natural cadence (once per train
//! step, once per MFP iteration): it copies the thread's raw slot-indexed
//! values into a shared per-rank slot that scrapers merge on demand.
//!
//! Publication is keyed by the thread's rank tag (untagged threads — the
//! CLI main thread — use a reserved key), so a P-rank solve occupies at
//! most P+1 slots regardless of how many runs the process has hosted.
//! A warm publish reuses the slot's buffers: it is two short lock
//! acquisitions and a few memcpys, no allocation once layouts stabilise.

use crate::metrics::{snapshot_from, HistData, MetricsSnapshot};
use crate::series::{SeriesData, SeriesSnapshot};
use crate::sink::SINK;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};

/// Published key for threads without a rank tag (the process main
/// thread, in practice).
const MAIN_KEY: usize = usize::MAX;

#[derive(Default)]
struct PublishedSink {
    counters: Vec<u64>,
    gauges: Vec<f64>,
    hists: Vec<HistData>,
    series: Vec<SeriesData>,
}

static PUBLISHED: LazyLock<Mutex<HashMap<usize, Arc<Mutex<PublishedSink>>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

thread_local! {
    // Cache of (key, slot) so a warm publish skips the global map.
    static PUB_SLOT: RefCell<Option<(usize, Arc<Mutex<PublishedSink>>)>> = const { RefCell::new(None) };
}

fn copy_u64(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() != src.len() {
        dst.resize(src.len(), 0);
    }
    dst.copy_from_slice(src);
}

fn copy_f64(dst: &mut Vec<f64>, src: &[f64]) {
    if dst.len() != src.len() {
        dst.resize(src.len(), 0.0);
    }
    dst.copy_from_slice(src);
}

fn copy_hists(dst: &mut Vec<HistData>, src: &[HistData]) {
    if dst.len() != src.len() {
        dst.resize_with(src.len(), HistData::default);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        if d.counts.len() != s.counts.len() {
            d.counts.resize(s.counts.len(), 0);
        }
        d.counts.copy_from_slice(&s.counts);
        d.count = s.count;
        d.sum = s.sum;
        d.min = s.min;
        d.max = s.max;
    }
}

fn copy_series(dst: &mut Vec<SeriesData>, src: &[SeriesData]) {
    if dst.len() != src.len() {
        dst.resize_with(src.len(), SeriesData::default);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        if d.windows.len() != s.windows.len() {
            d.windows.resize_with(s.windows.len(), Default::default);
        }
        d.windows.copy_from_slice(&s.windows);
    }
}

/// Copy the current thread's metric values into its shared per-rank
/// slot, making them visible to [`merged_snapshot`] and friends. No-op
/// for a thread that has recorded nothing yet. Call this at a loop
/// cadence (per step / per iteration); a warm call does not allocate.
pub fn publish_thread() {
    SINK.with(|s| {
        let s = s.borrow();
        if s.counters.is_empty() && s.gauges.is_empty() && s.hists.is_empty() && s.series.is_empty()
        {
            return;
        }
        let key = s.rank.unwrap_or(MAIN_KEY);
        PUB_SLOT.with(|cache| {
            let mut cache = cache.borrow_mut();
            let stale = !matches!(&*cache, Some((k, _)) if *k == key);
            if stale {
                let slot = Arc::clone(PUBLISHED.lock().unwrap().entry(key).or_default());
                *cache = Some((key, slot));
            }
            let (_, slot) = cache.as_ref().unwrap();
            let mut p = slot.lock().unwrap();
            copy_u64(&mut p.counters, &s.counters);
            copy_f64(&mut p.gauges, &s.gauges);
            copy_hists(&mut p.hists, &s.hists);
            copy_series(&mut p.series, &s.series);
        });
    });
}

fn slots() -> Vec<(usize, Arc<Mutex<PublishedSink>>)> {
    let mut v: Vec<_> = PUBLISHED
        .lock()
        .unwrap()
        .iter()
        .map(|(k, s)| (*k, Arc::clone(s)))
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

/// Every published rank's metrics, ordered by rank (`None` labels the
/// untagged main thread).
pub fn per_rank_snapshots() -> Vec<(Option<usize>, MetricsSnapshot)> {
    slots()
        .into_iter()
        .map(|(k, slot)| {
            let p = slot.lock().unwrap();
            let snap = snapshot_from(&p.counters, &p.gauges, &p.hists);
            (if k == MAIN_KEY { None } else { Some(k) }, snap)
        })
        .collect()
}

/// One snapshot folding every published rank together (counters and
/// histogram buckets sum, gauges take the max). This is what a scrape
/// serves.
pub fn merged_snapshot() -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for (_, snap) in per_rank_snapshots() {
        merged.merge(&snap);
    }
    merged
}

/// Every registered series, with all published ranks' rings folded
/// together (window-id aligned).
pub fn merged_series() -> Vec<SeriesSnapshot> {
    let names = crate::metrics::series_names();
    let mut out: Vec<SeriesSnapshot> = names
        .iter()
        .map(|n| SeriesSnapshot {
            name: n.to_string(),
            windows: Vec::new(),
        })
        .collect();
    for (_, slot) in slots() {
        let p = slot.lock().unwrap();
        for (i, name) in names.iter().enumerate() {
            if let Some(d) = p.series.get(i) {
                out[i].merge(&crate::series::snapshot_data(name, d));
            }
        }
    }
    out
}

/// The merged ring of one named series, if it has been registered.
pub fn published_series(name: &str) -> Option<SeriesSnapshot> {
    merged_series().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, gauge, series};

    #[test]
    fn published_values_are_visible_to_other_threads() {
        let c = counter("test.publish.counter");
        let g = gauge("test.publish.gauge");
        let sr = series("test.publish.series");
        std::thread::spawn(move || {
            crate::set_thread_rank(91);
            c.add(4);
            g.set(2.5);
            sr.record(1.0);
            publish_thread();
        })
        .join()
        .unwrap();
        let merged = merged_snapshot();
        assert_eq!(merged.counter("test.publish.counter"), 4);
        assert_eq!(merged.gauge("test.publish.gauge"), 2.5);
        let per_rank = per_rank_snapshots();
        assert!(per_rank.iter().any(|(r, _)| *r == Some(91)));
        let ring = published_series("test.publish.series").expect("series registered");
        assert_eq!(ring.windows.iter().map(|w| w.count).sum::<u64>(), 1);
    }

    #[test]
    fn republishing_overwrites_the_rank_slot() {
        let c = counter("test.publish.overwrite");
        for val in [3u64, 8u64] {
            std::thread::spawn(move || {
                crate::set_thread_rank(92);
                c.add(val);
                publish_thread();
            })
            .join()
            .unwrap();
        }
        // Two threads shared rank key 92; the later publish replaced the
        // earlier one rather than stacking a second slot.
        let hits: Vec<u64> = per_rank_snapshots()
            .into_iter()
            .filter(|(r, _)| *r == Some(92))
            .map(|(_, s)| s.counter("test.publish.overwrite"))
            .collect();
        assert_eq!(hits, vec![8]);
    }
}
