//! Trace exporters: JSONL (one event per line) and Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / Perfetto), plus parsers that
//! invert them exactly — used by tests and offline tooling.

use crate::json::{escape, JsonValue};
use crate::span::SpanEvent;
use std::io::{self, Write};

fn fmt_args(args: &[(String, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let v = if v.is_finite() { *v } else { 0.0 };
        out.push_str(&format!("\"{}\":{}", escape(k), v));
    }
    out.push('}');
    out
}

/// Write events as JSON Lines: one self-contained object per line with
/// `name`, `rank`, `ts` (µs), `dur` (µs), `depth`, and `args`.
pub fn write_jsonl<W: Write>(events: &[SpanEvent], w: &mut W) -> io::Result<()> {
    for e in events {
        writeln!(
            w,
            "{{\"name\":\"{}\",\"rank\":{},\"ts\":{},\"dur\":{},\"depth\":{},\"args\":{}}}",
            escape(&e.name),
            e.rank,
            e.start_us,
            e.dur_us,
            e.depth,
            fmt_args(&e.args)
        )?;
    }
    Ok(())
}

/// Write events in the Chrome `trace_event` array format: complete
/// (`"ph":"X"`) events with microsecond `ts`/`dur`, `pid` 0, and the rank
/// as `tid`, so each rank renders as one flame-graph row.
pub fn write_chrome_trace<W: Write>(events: &[SpanEvent], w: &mut W) -> io::Result<()> {
    writeln!(w, "[")?;
    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        writeln!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"mf\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"depth\":{},\"args\":{}}}{sep}",
            escape(&e.name),
            e.start_us,
            e.dur_us,
            e.rank,
            e.depth,
            fmt_args(&e.args)
        )?;
    }
    writeln!(w, "]")?;
    Ok(())
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn event_from_json(v: &JsonValue, rank_key: &str) -> Result<SpanEvent, String> {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("missing field \"name\"")?
        .to_string();
    let args = match v.get("args") {
        Some(JsonValue::Obj(members)) => members
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| format!("non-numeric arg {k:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => Vec::new(),
    };
    Ok(SpanEvent {
        name,
        rank: field_u64(v, rank_key)? as usize,
        start_us: field_u64(v, "ts")?,
        dur_us: field_u64(v, "dur")?,
        depth: field_u64(v, "depth")? as u32,
        args,
    })
}

/// Parse a JSONL trace written by [`write_jsonl`].
pub fn parse_jsonl(s: &str) -> Result<Vec<SpanEvent>, String> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| event_from_json(&JsonValue::parse(l)?, "rank"))
        .collect()
}

/// Parse a Chrome trace written by [`write_chrome_trace`].
pub fn parse_chrome_trace(s: &str) -> Result<Vec<SpanEvent>, String> {
    let doc = JsonValue::parse(s)?;
    let events = doc
        .as_arr()
        .ok_or("chrome trace: top level is not an array")?;
    events
        .iter()
        .map(|e| {
            match e.get("ph").and_then(JsonValue::as_str) {
                Some("X") => {}
                other => return Err(format!("unsupported event phase {other:?}")),
            }
            event_from_json(e, "tid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "train.step".into(),
                rank: 0,
                start_us: 10,
                dur_us: 900,
                depth: 0,
                args: vec![],
            },
            SpanEvent {
                name: "comm.allreduce".into(),
                rank: 0,
                start_us: 700,
                dur_us: 150,
                depth: 1,
                args: vec![("bytes".into(), 4096.0), ("elems".into(), 512.0)],
            },
            SpanEvent {
                name: "mfp.iteration".into(),
                rank: 3,
                start_us: 42,
                dur_us: 0,
                depth: 0,
                args: vec![("residual".into(), 0.125)],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_identical_spans() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn chrome_trace_round_trips_identical_spans() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_chrome_trace(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = parse_chrome_trace(&text).unwrap();
        assert_eq!(back, events);
        // Structural validity: every event is a complete event with
        // microsecond timestamps and the rank as tid.
        let doc = JsonValue::parse(&text).unwrap();
        for e in doc.as_arr().unwrap() {
            assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(e.get("dur").and_then(JsonValue::as_f64).is_some());
            assert!(e.get("tid").and_then(JsonValue::as_f64).is_some());
        }
        assert_eq!(
            doc.as_arr().unwrap()[2]
                .get("tid")
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn names_with_quotes_survive_the_round_trip() {
        let events = vec![SpanEvent {
            name: "odd \"name\"\nwith\tescapes".into(),
            rank: 1,
            start_us: 0,
            dur_us: 1,
            depth: 0,
            args: vec![],
        }];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        assert_eq!(
            parse_jsonl(&String::from_utf8(buf).unwrap()).unwrap(),
            events
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&[], &mut buf).unwrap();
        let back = parse_chrome_trace(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(back.is_empty());
    }
}
