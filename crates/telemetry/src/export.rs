//! Trace exporters: JSONL (one event per line) and Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / Perfetto), plus parsers that
//! invert them exactly — used by tests and offline tooling.

use crate::flow::{FlowEvent, FlowPhase};
use crate::json::{escape, JsonValue};
use crate::span::SpanEvent;
use std::io::{self, Write};

fn fmt_args(args: &[(String, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let v = if v.is_finite() { *v } else { 0.0 };
        out.push_str(&format!("\"{}\":{}", escape(k), v));
    }
    out.push('}');
    out
}

/// Write events as JSON Lines: one self-contained object per line with
/// `name`, `rank`, `ts` (µs), `dur` (µs), `depth`, and `args`.
pub fn write_jsonl<W: Write>(events: &[SpanEvent], w: &mut W) -> io::Result<()> {
    for e in events {
        writeln!(
            w,
            "{{\"name\":\"{}\",\"rank\":{},\"ts\":{},\"dur\":{},\"depth\":{},\"args\":{}}}",
            escape(&e.name),
            e.rank,
            e.start_us,
            e.dur_us,
            e.depth,
            fmt_args(&e.args)
        )?;
    }
    Ok(())
}

/// Write events in the Chrome `trace_event` array format: complete
/// (`"ph":"X"`) events with microsecond `ts`/`dur`, `pid` 0, and the rank
/// as `tid`, so each rank renders as one flame-graph row.
pub fn write_chrome_trace<W: Write>(events: &[SpanEvent], w: &mut W) -> io::Result<()> {
    write_chrome_trace_with_flows(events, &[], w)
}

/// Write a Chrome trace with both slice events and cross-rank flow
/// events. Flows are emitted as `ph:"s"` (start) / `ph:"f"` with
/// `bp:"e"` (finish, bound to enclosing slice) pairs sharing an `id`, so
/// Perfetto draws an arrow from the sending rank's slice to the
/// receiving rank's — this is how one merged timeline shows a halo
/// arriving late or an allreduce waiting on a straggler.
pub fn write_chrome_trace_with_flows<W: Write>(
    events: &[SpanEvent],
    flows: &[FlowEvent],
    w: &mut W,
) -> io::Result<()> {
    let total = events.len() + flows.len();
    writeln!(w, "[")?;
    let mut written = 0usize;
    for e in events {
        written += 1;
        let sep = if written == total { "" } else { "," };
        writeln!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"mf\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"depth\":{},\"args\":{}}}{sep}",
            escape(&e.name),
            e.start_us,
            e.dur_us,
            e.rank,
            e.depth,
            fmt_args(&e.args)
        )?;
    }
    for f in flows {
        written += 1;
        let sep = if written == total { "" } else { "," };
        let phase = match f.phase {
            FlowPhase::Start => "\"ph\":\"s\"",
            FlowPhase::Finish => "\"ph\":\"f\",\"bp\":\"e\"",
        };
        // The id is a string: packed flow ids use all 64 bits and would
        // lose precision as a JSON double.
        writeln!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"mf.flow\",{phase},\"id\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}{sep}",
            escape(&f.name),
            f.id,
            f.ts_us,
            f.rank,
            fmt_args(&f.args)
        )?;
    }
    writeln!(w, "]")?;
    Ok(())
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn event_from_json(v: &JsonValue, rank_key: &str) -> Result<SpanEvent, String> {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("missing field \"name\"")?
        .to_string();
    let args = match v.get("args") {
        Some(JsonValue::Obj(members)) => members
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| format!("non-numeric arg {k:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => Vec::new(),
    };
    Ok(SpanEvent {
        name,
        rank: field_u64(v, rank_key)? as usize,
        start_us: field_u64(v, "ts")?,
        dur_us: field_u64(v, "dur")?,
        depth: field_u64(v, "depth")? as u32,
        args,
    })
}

/// Parse a JSONL trace written by [`write_jsonl`].
pub fn parse_jsonl(s: &str) -> Result<Vec<SpanEvent>, String> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| event_from_json(&JsonValue::parse(l)?, "rank"))
        .collect()
}

fn flow_from_json(v: &JsonValue, phase: FlowPhase) -> Result<FlowEvent, String> {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("missing field \"name\"")?
        .to_string();
    let id = match v.get("id") {
        Some(JsonValue::Str(s)) => s
            .parse::<u64>()
            .map_err(|e| format!("flow event {name}: bad id: {e}"))?,
        Some(other) => other
            .as_f64()
            .map(|f| f as u64)
            .ok_or_else(|| format!("flow event {name}: non-numeric id"))?,
        None => return Err(format!("flow event {name}: missing id")),
    };
    let args = match v.get("args") {
        Some(JsonValue::Obj(members)) => members
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| format!("non-numeric arg {k:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => Vec::new(),
    };
    Ok(FlowEvent {
        name,
        rank: field_u64(v, "tid")? as usize,
        ts_us: field_u64(v, "ts")?,
        id,
        phase,
        args,
    })
}

/// Parse a Chrome trace written by [`write_chrome_trace`] or
/// [`write_chrome_trace_with_flows`], returning only the slice events
/// (flow events are skipped).
pub fn parse_chrome_trace(s: &str) -> Result<Vec<SpanEvent>, String> {
    parse_chrome_trace_full(s).map(|(spans, _)| spans)
}

/// Parse a Chrome trace written by [`write_chrome_trace_with_flows`],
/// returning both slice and flow events.
pub fn parse_chrome_trace_full(s: &str) -> Result<(Vec<SpanEvent>, Vec<FlowEvent>), String> {
    let doc = JsonValue::parse(s)?;
    let events = doc
        .as_arr()
        .ok_or("chrome trace: top level is not an array")?;
    let mut spans = Vec::new();
    let mut flows = Vec::new();
    for e in events {
        match e.get("ph").and_then(JsonValue::as_str) {
            Some("X") => spans.push(event_from_json(e, "tid")?),
            Some("s") => flows.push(flow_from_json(e, FlowPhase::Start)?),
            Some("f") => flows.push(flow_from_json(e, FlowPhase::Finish)?),
            other => return Err(format!("unsupported event phase {other:?}")),
        }
    }
    Ok((spans, flows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "train.step".into(),
                rank: 0,
                start_us: 10,
                dur_us: 900,
                depth: 0,
                args: vec![],
            },
            SpanEvent {
                name: "comm.allreduce".into(),
                rank: 0,
                start_us: 700,
                dur_us: 150,
                depth: 1,
                args: vec![("bytes".into(), 4096.0), ("elems".into(), 512.0)],
            },
            SpanEvent {
                name: "mfp.iteration".into(),
                rank: 3,
                start_us: 42,
                dur_us: 0,
                depth: 0,
                args: vec![("residual".into(), 0.125)],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_identical_spans() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn chrome_trace_round_trips_identical_spans() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_chrome_trace(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = parse_chrome_trace(&text).unwrap();
        assert_eq!(back, events);
        // Structural validity: every event is a complete event with
        // microsecond timestamps and the rank as tid.
        let doc = JsonValue::parse(&text).unwrap();
        for e in doc.as_arr().unwrap() {
            assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(e.get("dur").and_then(JsonValue::as_f64).is_some());
            assert!(e.get("tid").and_then(JsonValue::as_f64).is_some());
        }
        assert_eq!(
            doc.as_arr().unwrap()[2]
                .get("tid")
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn names_with_quotes_survive_the_round_trip() {
        let events = vec![SpanEvent {
            name: "odd \"name\"\nwith\tescapes".into(),
            rank: 1,
            start_us: 0,
            dur_us: 1,
            depth: 0,
            args: vec![],
        }];
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        assert_eq!(
            parse_jsonl(&String::from_utf8(buf).unwrap()).unwrap(),
            events
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&[], &mut buf).unwrap();
        let back = parse_chrome_trace(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn flows_round_trip_and_preserve_full_64_bit_ids() {
        // Pack src/dst into the top bits: this id is NOT representable as
        // an f64, so it must survive as a string.
        let id = (3u64 << 56) | (1u64 << 48) | 0xFFFF_FFFF_FFFF;
        let flows = vec![
            FlowEvent {
                name: "comm.send".into(),
                rank: 3,
                ts_us: 100,
                id,
                phase: FlowPhase::Start,
                args: vec![("bytes".into(), 64.0)],
            },
            FlowEvent {
                name: "comm.recv".into(),
                rank: 1,
                ts_us: 180,
                id,
                phase: FlowPhase::Finish,
                args: vec![],
            },
        ];
        let events = sample_events();
        let mut buf = Vec::new();
        write_chrome_trace_with_flows(&events, &flows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (spans_back, flows_back) = parse_chrome_trace_full(&text).unwrap();
        assert_eq!(spans_back, events);
        assert_eq!(flows_back, flows);
        // The span-only parser tolerates (skips) flow phases.
        assert_eq!(parse_chrome_trace(&text).unwrap(), events);
        // Structural validity of the flow pair: "s" then "f" with bp:"e".
        let doc = JsonValue::parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();
        let start = &arr[events.len()];
        let finish = &arr[events.len() + 1];
        assert_eq!(start.get("ph").and_then(JsonValue::as_str), Some("s"));
        assert_eq!(finish.get("ph").and_then(JsonValue::as_str), Some("f"));
        assert_eq!(finish.get("bp").and_then(JsonValue::as_str), Some("e"));
        assert_eq!(
            start.get("id").and_then(JsonValue::as_str),
            finish.get("id").and_then(JsonValue::as_str)
        );
    }

    #[test]
    fn flows_only_trace_is_valid() {
        let flows = vec![FlowEvent {
            name: "f".into(),
            rank: 0,
            ts_us: 1,
            id: 7,
            phase: FlowPhase::Start,
            args: vec![],
        }];
        let mut buf = Vec::new();
        write_chrome_trace_with_flows(&[], &flows, &mut buf).unwrap();
        let (spans, back) = parse_chrome_trace_full(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(spans.is_empty());
        assert_eq!(back, flows);
    }
}
