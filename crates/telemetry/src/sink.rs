//! Per-thread collection buffers and the global span collector.
//!
//! Every thread owns a [`ThreadSink`]: plain vectors of counter/gauge/
//! histogram values (indexed by the slots handed out by the global
//! registry in [`crate::metrics`]) plus a buffer of finished spans.
//! Under `Cluster::run`, each simulated rank is one thread; the cluster
//! tags the thread with its rank ([`set_thread_rank`]) on entry and
//! [`flush_thread`]s finished spans into the process-wide collector on
//! exit, so a later [`drain_spans`] sees every rank's events.

use crate::flow::FlowEvent;
use crate::span::SpanEvent;
use std::cell::RefCell;
use std::sync::Mutex;

pub(crate) struct ThreadSink {
    pub rank: Option<usize>,
    pub counters: Vec<u64>,
    pub gauges: Vec<f64>,
    pub hists: Vec<crate::metrics::HistData>,
    pub series: Vec<crate::series::SeriesData>,
    pub spans: Vec<SpanEvent>,
    pub flows: Vec<FlowEvent>,
    pub depth: u32,
}

impl ThreadSink {
    const fn new() -> Self {
        Self {
            rank: None,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            series: Vec::new(),
            spans: Vec::new(),
            flows: Vec::new(),
            depth: 0,
        }
    }
}

thread_local! {
    pub(crate) static SINK: RefCell<ThreadSink> = const { RefCell::new(ThreadSink::new()) };
}

static COLLECTOR: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static FLOW_COLLECTOR: Mutex<Vec<FlowEvent>> = Mutex::new(Vec::new());

/// Tag the current thread with a rank id; spans it records are attributed
/// to this rank (`tid` in the Chrome trace). Untagged threads report
/// rank 0.
pub fn set_thread_rank(rank: usize) {
    SINK.with(|s| s.borrow_mut().rank = Some(rank));
}

/// The rank the current thread was tagged with, if any.
pub fn thread_rank() -> Option<usize> {
    SINK.with(|s| s.borrow().rank)
}

/// Move the current thread's finished spans into the global collector,
/// stamping them with the thread's rank. Called by the cluster when a
/// rank thread finishes; cheap (no lock) when no spans were recorded.
pub fn flush_thread() {
    // Leave the thread's final metric values visible to live scrapes
    // before the thread (e.g. a finished rank) goes away.
    crate::publish::publish_thread();
    let (rank, spans, flows) = SINK.with(|s| {
        let mut s = s.borrow_mut();
        (
            s.rank.unwrap_or(0),
            std::mem::take(&mut s.spans),
            std::mem::take(&mut s.flows),
        )
    });
    if !spans.is_empty() {
        let mut collector = COLLECTOR.lock().unwrap();
        collector.extend(spans.into_iter().map(|mut e| {
            e.rank = rank;
            e
        }));
    }
    if !flows.is_empty() {
        let mut collector = FLOW_COLLECTOR.lock().unwrap();
        collector.extend(flows.into_iter().map(|mut e| {
            e.rank = rank;
            e
        }));
    }
}

/// Flush the current thread, then take every collected span, ordered by
/// `(rank, start, depth)`. The collector is left empty.
pub fn drain_spans() -> Vec<SpanEvent> {
    flush_thread();
    let mut spans = std::mem::take(&mut *COLLECTOR.lock().unwrap());
    spans.sort_by(|a, b| {
        (a.rank, a.start_us, a.depth, &a.name).cmp(&(b.rank, b.start_us, b.depth, &b.name))
    });
    spans
}

/// Flush the current thread, then take every collected flow event,
/// ordered by `(rank, ts, id)`. The flow collector is left empty.
pub fn drain_flows() -> Vec<FlowEvent> {
    flush_thread();
    let mut flows = std::mem::take(&mut *FLOW_COLLECTOR.lock().unwrap());
    flows.sort_by(|a, b| (a.rank, a.ts_us, a.id, &a.name).cmp(&(b.rank, b.ts_us, b.id, &b.name)));
    flows
}

/// Discard all collected spans and flows (current thread and global
/// collectors).
pub fn clear_spans() {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.spans.clear();
        s.flows.clear();
    });
    COLLECTOR.lock().unwrap().clear();
    FLOW_COLLECTOR.lock().unwrap().clear();
}

/// Zero the current thread's metric values (counters, gauges,
/// histograms). Registered names and slots are untouched. Intended for
/// tests that need a clean sheet on a reused thread.
pub fn reset_thread_metrics() {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.counters.iter_mut().for_each(|v| *v = 0);
        s.gauges.iter_mut().for_each(|v| *v = 0.0);
        s.hists.iter_mut().for_each(|h| h.reset());
        s.series.iter_mut().for_each(|d| d.windows.clear());
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_tagging_is_per_thread() {
        set_thread_rank(7);
        assert_eq!(thread_rank(), Some(7));
        let other = std::thread::spawn(thread_rank).join().unwrap();
        assert_eq!(other, None);
    }

    #[test]
    fn flush_attaches_rank_and_drain_clears() {
        crate::set_tracing(true);
        std::thread::spawn(|| {
            set_thread_rank(3);
            {
                crate::span!("sink.test.unique");
            }
            flush_thread();
        })
        .join()
        .unwrap();
        crate::set_tracing(false);
        let drained = drain_spans();
        let mine: Vec<_> = drained
            .iter()
            .filter(|e| e.name == "sink.test.unique")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].rank, 3);
        assert!(drain_spans().iter().all(|e| e.name != "sink.test.unique"));
    }
}
