//! Human-readable summary report over per-rank metric snapshots.

use crate::metrics::{MetricValue, MetricsSnapshot};
use std::fmt::Write;

fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 100_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn fmt_bound(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        fmt_f64(v)
    }
}

/// Render one merged, human-readable report over per-rank snapshots
/// (index = rank). Counters show per-rank values and the total;
/// histograms are merged across ranks with count/mean/quantiles; gauges
/// show the per-rank maximum. Metrics that stayed at zero everywhere are
/// omitted.
pub fn render_report(per_rank: &[MetricsSnapshot]) -> String {
    let mut merged = MetricsSnapshot::default();
    for snap in per_rank {
        merged.merge(snap);
    }
    let show_ranks = per_rank.len() > 1 && per_rank.len() <= 8;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== telemetry report ({} rank{}) ==",
        per_rank.len(),
        if per_rank.len() == 1 { "" } else { "s" }
    );

    let counters: Vec<_> = merged
        .metrics
        .iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Counter(c) if *c > 0 => Some((n.clone(), *c)),
            _ => None,
        })
        .collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        for (name, total) in counters {
            let mut line = format!("{name:<28} total {:>10}", fmt_count(total));
            if show_ranks {
                let per: Vec<String> = per_rank
                    .iter()
                    .map(|s| fmt_count(s.counter(&name)))
                    .collect();
                let _ = write!(line, "   per-rank [{}]", per.join(" "));
            }
            let _ = writeln!(out, "{line}");
        }
    }

    let gauges: Vec<_> = merged
        .metrics
        .iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Gauge(g) if *g != 0.0 => Some((n.clone(), *g)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        let _ = writeln!(out, "-- gauges (max across ranks) --");
        for (name, max) in gauges {
            let _ = writeln!(out, "{name:<28} {:>16}", fmt_f64(max));
        }
    }

    let hists: Vec<_> = merged
        .metrics
        .iter()
        .filter_map(|(n, v)| match v {
            MetricValue::Histogram(h) if h.count > 0 => Some((n.clone(), h.clone())),
            _ => None,
        })
        .collect();
    if !hists.is_empty() {
        let _ = writeln!(out, "-- histograms (merged across ranks) --");
        for (name, h) in hists {
            let [p50, p95, p99] = h.percentiles();
            let _ = writeln!(
                out,
                "{name:<28} n {:>8}  mean {:>10}  p50 {:>10}  p95 {:>10}  p99 {:>10}  max {:>10}",
                fmt_count(h.count),
                fmt_f64(h.mean()),
                fmt_bound(p50),
                fmt_bound(p95),
                fmt_bound(p99),
                fmt_f64(h.max),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSnapshot;

    fn snap(msgs: u64, nodes: f64) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: vec![
                ("comm.msgs_sent".into(), MetricValue::Counter(msgs)),
                ("autodiff.graph_nodes".into(), MetricValue::Gauge(nodes)),
                ("zero.counter".into(), MetricValue::Counter(0)),
                (
                    "train.step_us".into(),
                    MetricValue::Histogram(HistSnapshot {
                        bounds: vec![100.0, 1000.0],
                        counts: vec![1, 2, 0],
                        count: 3,
                        sum: 900.0,
                        min: 50.0,
                        max: 600.0,
                    }),
                ),
            ],
        }
    }

    #[test]
    fn report_merges_and_lists_per_rank_values() {
        let r = render_report(&[snap(6, 100.0), snap(4, 120.0)]);
        assert!(r.contains("2 ranks"));
        let counters_line = r.lines().find(|l| l.contains("comm.msgs_sent")).unwrap();
        assert!(
            counters_line.contains("10"),
            "missing total: {counters_line}"
        );
        assert!(counters_line.contains("per-rank [6 4]"));
        assert!(r.contains("autodiff.graph_nodes"));
        assert!(r.contains("120"));
        // Merged histogram: 6 observations.
        let hist_line = r.lines().find(|l| l.contains("train.step_us")).unwrap();
        let toks: Vec<&str> = hist_line.split_whitespace().collect();
        let n_pos = toks.iter().position(|&t| t == "n").unwrap();
        assert_eq!(toks[n_pos + 1], "6", "bad merged count: {hist_line}");
        // Interpolated percentiles are rendered and finite.
        for p in ["p50", "p95", "p99"] {
            let pos = toks.iter().position(|&t| t == p).unwrap();
            let v: f64 = toks[pos + 1].parse().expect("percentile not numeric");
            assert!(v.is_finite() && (50.0..=600.0).contains(&v), "{p} = {v}");
        }
        // Zero-valued metrics are omitted.
        assert!(!r.contains("zero.counter"));
    }

    #[test]
    fn single_rank_report_omits_per_rank_column() {
        let r = render_report(&[snap(3, 10.0)]);
        assert!(r.contains("1 rank"));
        assert!(!r.contains("per-rank"));
    }
}
