//! Always-on metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Names are registered once in a process-wide registry that hands out
//! stable slot indices; values live in plain thread-local vectors indexed
//! by slot, so recording is lock-free and non-atomic. Each simulated rank
//! (thread) therefore accumulates an independent set, which
//! [`snapshot`] captures for per-rank reporting and cross-rank merging.

use crate::sink::SINK;
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};
use std::time::Instant;

/// Process-wide name → slot registry. Ordered vectors drive snapshot
/// iteration; the hash maps make registration O(1) instead of a linear
/// scan under the mutex (registration happens on hot paths that have not
/// hoisted their handles into a `OnceLock` yet).
#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: Vec<&'static str>,
    pub(crate) gauges: Vec<&'static str>,
    pub(crate) hists: Vec<(&'static str, Arc<[f64]>)>,
    pub(crate) series: Vec<&'static str>,
    counter_idx: HashMap<&'static str, usize>,
    gauge_idx: HashMap<&'static str, usize>,
    hist_idx: HashMap<&'static str, usize>,
    series_idx: HashMap<&'static str, usize>,
}

pub(crate) static REGISTRY: LazyLock<Mutex<Registry>> =
    LazyLock::new(|| Mutex::new(Registry::default()));

/// Register (or look up) the series named `name`, returning its slot.
pub(crate) fn series_slot(name: &'static str) -> usize {
    let mut r = REGISTRY.lock().unwrap();
    match r.series_idx.get(name) {
        Some(&i) => i,
        None => {
            let i = r.series.len();
            r.series.push(name);
            r.series_idx.insert(name, i);
            i
        }
    }
}

/// Names of all registered series, in slot order.
pub(crate) fn series_names() -> Vec<&'static str> {
    REGISTRY.lock().unwrap().series.clone()
}

/// Handle to a named monotonically increasing counter.
#[derive(Clone, Copy, Debug)]
pub struct Counter {
    slot: usize,
}

/// Handle to a named gauge (a settable/accumulable `f64`).
#[derive(Clone, Copy, Debug)]
pub struct Gauge {
    slot: usize,
}

/// Handle to a named fixed-bucket histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    slot: usize,
    bounds: Arc<[f64]>,
}

/// Get (registering on first use) the counter named `name`. Handles with
/// the same name share the slot, so counts accumulate regardless of where
/// the handle was created.
pub fn counter(name: &'static str) -> Counter {
    let mut r = REGISTRY.lock().unwrap();
    let slot = match r.counter_idx.get(name) {
        Some(&i) => i,
        None => {
            let i = r.counters.len();
            r.counters.push(name);
            r.counter_idx.insert(name, i);
            i
        }
    };
    Counter { slot }
}

/// Get (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    let mut r = REGISTRY.lock().unwrap();
    let slot = match r.gauge_idx.get(name) {
        Some(&i) => i,
        None => {
            let i = r.gauges.len();
            r.gauges.push(name);
            r.gauge_idx.insert(name, i);
            i
        }
    };
    Gauge { slot }
}

/// Get (registering on first use) the histogram named `name`. The bucket
/// layout is fixed by the first registration; later calls with different
/// `buckets` reuse the original layout.
pub fn histogram(name: &'static str, buckets: Buckets) -> Histogram {
    let mut r = REGISTRY.lock().unwrap();
    match r.hist_idx.get(name) {
        Some(&i) => Histogram {
            slot: i,
            bounds: Arc::clone(&r.hists[i].1),
        },
        None => {
            let i = r.hists.len();
            let bounds: Arc<[f64]> = buckets.bounds.into();
            r.hists.push((name, Arc::clone(&bounds)));
            r.hist_idx.insert(name, i);
            Histogram { slot: i, bounds }
        }
    }
}

impl Counter {
    /// Add `n` to the current thread's value.
    pub fn add(self, n: u64) {
        SINK.with(|s| {
            let mut s = s.borrow_mut();
            if s.counters.len() <= self.slot {
                s.counters.resize(self.slot + 1, 0);
            }
            s.counters[self.slot] += n;
        });
    }

    /// Increment by one.
    pub fn incr(self) {
        self.add(1);
    }

    /// Current thread's value.
    pub fn get(self) -> u64 {
        SINK.with(|s| s.borrow().counters.get(self.slot).copied().unwrap_or(0))
    }
}

impl Gauge {
    /// Set the current thread's value.
    pub fn set(self, v: f64) {
        self.update(|_| v);
    }

    /// Add to the current thread's value (for accumulated quantities such
    /// as seconds inside communication calls).
    pub fn add(self, v: f64) {
        self.update(|old| old + v);
    }

    /// Current thread's value.
    pub fn get(self) -> f64 {
        SINK.with(|s| s.borrow().gauges.get(self.slot).copied().unwrap_or(0.0))
    }

    /// Apply `f` to the current thread's value (e.g. a running maximum).
    pub fn update(self, f: impl FnOnce(f64) -> f64) {
        SINK.with(|s| {
            let mut s = s.borrow_mut();
            if s.gauges.len() <= self.slot {
                s.gauges.resize(self.slot + 1, 0.0);
            }
            s.gauges[self.slot] = f(s.gauges[self.slot]);
        });
    }
}

impl Histogram {
    /// Record one observation on the current thread.
    pub fn record(&self, v: f64) {
        let idx = bucket_index(&self.bounds, v);
        let nbuckets = self.bounds.len() + 1;
        SINK.with(|s| {
            let mut s = s.borrow_mut();
            if s.hists.len() <= self.slot {
                s.hists.resize_with(self.slot + 1, HistData::default);
            }
            let h = &mut s.hists[self.slot];
            if h.counts.is_empty() {
                h.counts = vec![0; nbuckets];
            }
            h.counts[idx] += 1;
            if h.count == 0 {
                h.min = v;
                h.max = v;
            } else {
                h.min = h.min.min(v);
                h.max = h.max.max(v);
            }
            h.count += 1;
            h.sum += v;
        });
    }

    /// Start a timer that records elapsed **microseconds** into this
    /// histogram when dropped.
    pub fn time(&self) -> HistTimer {
        HistTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// The bucket upper bounds (the last bucket, not listed, is
    /// unbounded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// RAII timer for [`Histogram::time`].
pub struct HistTimer {
    hist: Histogram,
    start: Instant,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_secs_f64() * 1e6);
    }
}

/// Bucket layout for a histogram: a strictly increasing list of inclusive
/// upper bounds. An observation `v` lands in the first bucket with
/// `v <= bound`; values above every bound land in an implicit overflow
/// bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct Buckets {
    bounds: Vec<f64>,
}

impl Buckets {
    /// Explicit upper bounds (must be finite and strictly increasing).
    pub fn explicit(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "Buckets::explicit: need at least one bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "Buckets::explicit: bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
        }
    }

    /// `count` bounds starting at `first`, each `factor` times the last:
    /// `first, first·factor, first·factor², …`.
    pub fn exponential(first: f64, factor: f64, count: usize) -> Self {
        assert!(
            first > 0.0 && factor > 1.0 && count > 0,
            "Buckets::exponential: bad layout"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = first;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self { bounds }
    }

    /// Default layout for microsecond latencies: powers of four from
    /// 1 µs to ~4.2 s.
    pub fn latency_us() -> Self {
        Self::exponential(1.0, 4.0, 12)
    }

    /// Default layout for byte volumes: powers of four from 64 B to
    /// ~268 MB.
    pub fn bytes() -> Self {
        Self::exponential(64.0, 4.0, 12)
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Index of the bucket that `v` lands in (`bounds().len()` is the
    /// overflow bucket).
    pub fn bucket_index(&self, v: f64) -> usize {
        bucket_index(&self.bounds, v)
    }
}

fn bucket_index(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

/// Per-thread histogram storage (crate-internal).
#[derive(Clone, Debug, Default)]
pub(crate) struct HistData {
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistData {
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = 0.0;
        self.max = 0.0;
    }
}

/// Frozen histogram state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Bucket upper bounds (the final bucket, unbounded, is not listed).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `bounds.len() + 1` entries, the
    /// last being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`f64::INFINITY` if it falls in the overflow bucket, 0 when
    /// empty). Bucket-resolution estimate, biased upward.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }

    /// Interpolated estimate of the `q`-quantile: finds the bucket
    /// holding the `q`-th observation and interpolates linearly within
    /// it, clamping to the observed `[min, max]` so estimates never
    /// stray outside the data (unlike [`HistSnapshot::quantile`], which
    /// reports the raw bucket upper bound and returns infinity for the
    /// overflow bucket). Returns 0 when empty.
    pub fn quantile_est(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                // Bucket i spans (bounds[i-1], bounds[i]]; the implicit
                // edges are the observed min and max.
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let hi = self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or(self.max)
                    .min(self.max);
                let hi = hi.max(lo);
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            cum = next;
        }
        self.max
    }

    /// Convenience: interpolated `[p50, p95, p99]` estimates.
    pub fn percentiles(&self) -> [f64; 3] {
        [
            self.quantile_est(0.50),
            self.quantile_est(0.95),
            self.quantile_est(0.99),
        ]
    }

    /// Accumulate `other` (same bucket layout) into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "HistSnapshot::merge: bucket layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One metric's frozen value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistSnapshot),
}

/// Every registered metric's value on one thread (one rank), captured by
/// [`snapshot`]. Serializable so ranks can ship their snapshots over the
/// communicator for a merged report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub metrics: Vec<(String, MetricValue)>,
}

/// Capture the current thread's value of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    SINK.with(|s| {
        let s = s.borrow();
        snapshot_from(&s.counters, &s.gauges, &s.hists)
    })
}

/// Build a [`MetricsSnapshot`] from raw slot-indexed value vectors
/// (a thread sink, or a published copy of one), resolving names through
/// the registry.
pub(crate) fn snapshot_from(
    counters: &[u64],
    gauges: &[f64],
    hists: &[HistData],
) -> MetricsSnapshot {
    let r = REGISTRY.lock().unwrap();
    let mut metrics: Vec<(String, MetricValue)> = Vec::new();
    for (i, name) in r.counters.iter().enumerate() {
        let v = counters.get(i).copied().unwrap_or(0);
        metrics.push((name.to_string(), MetricValue::Counter(v)));
    }
    for (i, name) in r.gauges.iter().enumerate() {
        let v = gauges.get(i).copied().unwrap_or(0.0);
        metrics.push((name.to_string(), MetricValue::Gauge(v)));
    }
    for (i, (name, bounds)) in r.hists.iter().enumerate() {
        let h = hists.get(i).cloned().unwrap_or_default();
        let counts = if h.counts.is_empty() {
            vec![0; bounds.len() + 1]
        } else {
            h.counts
        };
        metrics.push((
            name.to_string(),
            MetricValue::Histogram(HistSnapshot {
                bounds: bounds.to_vec(),
                counts,
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            }),
        ));
    }
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot { metrics }
}

impl MetricsSnapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: gauge value by name (0 if absent).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Accumulate `other` into `self`: counters and histograms add;
    /// gauges keep the maximum (they are point-in-time values). Metrics
    /// absent from `self` are copied in.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, val) in &other.metrics {
            match self.metrics.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => match (mine, val) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => {}
                },
                None => self.metrics.push((name.clone(), val.clone())),
            }
        }
        self.metrics.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Compact text encoding for shipping snapshots between ranks.
    /// Exact: floats are encoded as their IEEE-754 bits, so
    /// `parse(serialize(s)) == s`.
    pub fn serialize(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("mfm1\n");
        for (name, val) in &self.metrics {
            debug_assert!(!name.contains(char::is_whitespace), "metric name {name:?}");
            match val {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "c {name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "g {name} {}", v.to_bits());
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "h {name} {} {} {} {} {}",
                        h.bounds.len(),
                        h.count,
                        h.sum.to_bits(),
                        h.min.to_bits(),
                        h.max.to_bits()
                    );
                    for b in &h.bounds {
                        let _ = write!(out, " {}", b.to_bits());
                    }
                    for c in &h.counts {
                        let _ = write!(out, " {c}");
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Inverse of [`MetricsSnapshot::serialize`].
    pub fn parse(s: &str) -> Option<MetricsSnapshot> {
        let mut lines = s.lines();
        if lines.next()? != "mfm1" {
            return None;
        }
        let mut metrics = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut t = line.split_ascii_whitespace();
            let kind = t.next()?;
            let name = t.next()?.to_string();
            match kind {
                "c" => metrics.push((name, MetricValue::Counter(t.next()?.parse().ok()?))),
                "g" => metrics.push((
                    name,
                    MetricValue::Gauge(f64::from_bits(t.next()?.parse().ok()?)),
                )),
                "h" => {
                    let nbounds: usize = t.next()?.parse().ok()?;
                    let count: u64 = t.next()?.parse().ok()?;
                    let sum = f64::from_bits(t.next()?.parse().ok()?);
                    let min = f64::from_bits(t.next()?.parse().ok()?);
                    let max = f64::from_bits(t.next()?.parse().ok()?);
                    let mut bounds = Vec::with_capacity(nbounds);
                    for _ in 0..nbounds {
                        bounds.push(f64::from_bits(t.next()?.parse().ok()?));
                    }
                    let mut counts = Vec::with_capacity(nbounds + 1);
                    for _ in 0..nbounds + 1 {
                        counts.push(t.next()?.parse().ok()?);
                    }
                    metrics.push((
                        name,
                        MetricValue::Histogram(HistSnapshot {
                            bounds,
                            counts,
                            count,
                            sum,
                            min,
                            max,
                        }),
                    ));
                }
                _ => return None,
            }
        }
        Some(MetricsSnapshot { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let b = Buckets::explicit(&[1.0, 10.0, 100.0]);
        // Exactly on a bound lands in that bucket.
        assert_eq!(b.bucket_index(0.0), 0);
        assert_eq!(b.bucket_index(1.0), 0);
        assert_eq!(b.bucket_index(1.0000001), 1);
        assert_eq!(b.bucket_index(10.0), 1);
        assert_eq!(b.bucket_index(100.0), 2);
        // Above every bound: overflow bucket.
        assert_eq!(b.bucket_index(100.1), 3);
        assert_eq!(b.bucket_index(f64::INFINITY), 3);
    }

    #[test]
    fn exponential_buckets_have_geometric_bounds() {
        let b = Buckets::exponential(1.0, 4.0, 5);
        assert_eq!(b.bounds(), &[1.0, 4.0, 16.0, 64.0, 256.0]);
        assert_eq!(Buckets::latency_us().bounds().len(), 12);
    }

    #[test]
    fn histogram_records_into_correct_buckets() {
        let h = histogram("test.hist.buckets", Buckets::explicit(&[2.0, 4.0]));
        crate::reset_thread_metrics();
        for v in [1.0, 2.0, 3.0, 5.0, 100.0] {
            h.record(v);
        }
        let snap = snapshot();
        let Some(MetricValue::Histogram(hs)) = snap.get("test.hist.buckets") else {
            panic!("histogram missing from snapshot");
        };
        assert_eq!(hs.counts, vec![2, 1, 2]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min, 1.0);
        assert_eq!(hs.max, 100.0);
        assert!((hs.sum - 111.0).abs() < 1e-12);
        assert!((hs.mean() - 22.2).abs() < 1e-12);
        assert_eq!(hs.quantile(0.5), 4.0);
        assert_eq!(hs.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn interpolated_quantiles_stay_within_observed_range() {
        let h = histogram("test.hist.quantile_est", Buckets::explicit(&[2.0, 4.0]));
        crate::reset_thread_metrics();
        for v in [1.0, 2.0, 3.0, 5.0, 100.0] {
            h.record(v);
        }
        let snap = snapshot();
        let Some(MetricValue::Histogram(hs)) = snap.get("test.hist.quantile_est") else {
            panic!("histogram missing from snapshot");
        };
        let [p50, p95, p99] = hs.percentiles();
        // Estimates are finite, ordered, and inside [min, max] — unlike
        // quantile(), which reports inf for the overflow bucket.
        assert!(p50 >= hs.min && p99 <= hs.max);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99.is_finite());
        // p50 falls in the (2, 4] bucket, interpolated.
        assert!(p50 > 2.0 && p50 <= 4.0, "p50 = {p50}");
        // Degenerate cases.
        assert_eq!(
            HistSnapshot {
                bounds: vec![1.0],
                counts: vec![0, 0],
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
            }
            .quantile_est(0.5),
            0.0
        );
        // Single observation: every quantile is that observation.
        let single = HistSnapshot {
            bounds: vec![10.0],
            counts: vec![1, 0],
            count: 1,
            sum: 7.0,
            min: 7.0,
            max: 7.0,
        };
        assert_eq!(single.quantile_est(0.0), 7.0);
        assert_eq!(single.quantile_est(0.5), 7.0);
        assert_eq!(single.quantile_est(1.0), 7.0);
    }

    #[test]
    fn same_name_handles_share_a_slot() {
        // Registration is idempotent: a second handle for the same name
        // must resolve to the same slot (now via the hash-map index), so
        // counts recorded through either handle accumulate together.
        let c1 = counter("test.shared.counter");
        let c2 = counter("test.shared.counter");
        assert_eq!(c1.slot, c2.slot);
        let g1 = gauge("test.shared.gauge");
        let g2 = gauge("test.shared.gauge");
        assert_eq!(g1.slot, g2.slot);
        let h1 = histogram("test.shared.hist", Buckets::explicit(&[1.0, 2.0]));
        let h2 = histogram("test.shared.hist", Buckets::explicit(&[9.0])); // layout ignored
        assert_eq!(h1.slot, h2.slot);
        assert_eq!(h1.bounds(), h2.bounds(), "first registration wins");

        crate::reset_thread_metrics();
        c1.add(2);
        c2.add(3);
        assert_eq!(c1.get(), 5);
        g1.set(1.0);
        g2.add(0.5);
        assert_eq!(g1.get(), 1.5);
        h1.record(0.5);
        h2.record(1.5);
        let snap = snapshot();
        let Some(MetricValue::Histogram(hs)) = snap.get("test.shared.hist") else {
            panic!("histogram missing from snapshot");
        };
        assert_eq!(hs.count, 2);
        assert_eq!(hs.counts, vec![1, 1, 0]);
        // Distinct names must not collide.
        assert_ne!(counter("test.shared.counter2").slot, c1.slot);
    }

    #[test]
    fn counters_and_gauges_accumulate_per_thread() {
        let c = counter("test.counter.local");
        let g = gauge("test.gauge.local");
        crate::reset_thread_metrics();
        c.add(2);
        c.incr();
        g.set(1.5);
        g.add(0.25);
        assert_eq!(c.get(), 3);
        assert_eq!(g.get(), 1.75);
        // Another thread sees zero: storage is thread-local.
        let other = std::thread::spawn(move || (c.get(), g.get()))
            .join()
            .unwrap();
        assert_eq!(other, (0, 0.0));
    }

    #[test]
    fn snapshot_serialization_round_trips_exactly() {
        let c = counter("test.roundtrip.counter");
        let g = gauge("test.roundtrip.gauge");
        let h = histogram("test.roundtrip.hist", Buckets::exponential(0.1, 3.0, 4));
        crate::reset_thread_metrics();
        c.add(42);
        g.set(-0.1 + 0.3); // a value with an inexact decimal form
        h.record(0.05);
        h.record(7.25);
        let snap = snapshot();
        let text = snap.serialize();
        let back = MetricsSnapshot::parse(&text).expect("parse failed");
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_counters_and_histograms_and_maxes_gauges() {
        let mut a = MetricsSnapshot {
            metrics: vec![
                ("c".into(), MetricValue::Counter(2)),
                ("g".into(), MetricValue::Gauge(1.0)),
                (
                    "h".into(),
                    MetricValue::Histogram(HistSnapshot {
                        bounds: vec![1.0],
                        counts: vec![1, 0],
                        count: 1,
                        sum: 0.5,
                        min: 0.5,
                        max: 0.5,
                    }),
                ),
            ],
        };
        let b = MetricsSnapshot {
            metrics: vec![
                ("c".into(), MetricValue::Counter(3)),
                ("g".into(), MetricValue::Gauge(0.5)),
                (
                    "h".into(),
                    MetricValue::Histogram(HistSnapshot {
                        bounds: vec![1.0],
                        counts: vec![0, 2],
                        count: 2,
                        sum: 6.0,
                        min: 2.0,
                        max: 4.0,
                    }),
                ),
                ("only_b".into(), MetricValue::Counter(7)),
            ],
        };
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), 1.0);
        assert_eq!(a.counter("only_b"), 7);
        let Some(MetricValue::Histogram(h)) = a.get("h") else {
            panic!()
        };
        assert_eq!(h.counts, vec![1, 2]);
        assert_eq!((h.count, h.min, h.max), (3, 0.5, 4.0));
    }
}
