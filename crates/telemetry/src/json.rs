//! Minimal JSON support for the trace exporters: a writer-side string
//! escaper and a small recursive-descent parser, enough to round-trip the
//! documents this crate emits (and any standard JSON without `\u` escapes
//! beyond the basic two-character ones).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.i < self.s.len() && self.s[self.i] == b {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.s.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.s.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.s.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(r#"{"name":"a\"b","n":-1.5e2,"ok":true,"xs":[1,2,{"y":null}]}"#)
            .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-150.0));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("y"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "line1\nta\tb \"q\" back\\slash";
        let doc = format!("{{\"s\":\"{}\"}}", escape(raw));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }
}
