//! Exposition encodings for scrapers: Prometheus/OpenMetrics text and a
//! JSON snapshot document.
//!
//! These are pure formatters over [`MetricsSnapshot`] /
//! [`SeriesSnapshot`]; the TCP server that actually answers
//! `GET /metrics` lives in `mf-profile` so this crate stays free of any
//! I/O concerns.

use crate::metrics::{HistSnapshot, MetricValue, MetricsSnapshot};
use crate::series::SeriesSnapshot;
use std::fmt::Write;

/// Rewrite a dotted metric name (`infer.pts_per_s`) into the Prometheus
/// name charset (`infer_pts_per_s`): `[a-zA-Z0-9_:]`, non-conforming
/// bytes become `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_histogram(out: &mut String, name: &str, h: &HistSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cum += c;
        let le = match h.bounds.get(i) {
            Some(b) => fmt_value(*b),
            None => "+Inf".to_string(),
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render a snapshot (plus optional series rings) in the OpenMetrics
/// text format: `# TYPE` metadata, counters with a `_total` sample,
/// histograms as cumulative `_bucket{le=…}` samples ending in `+Inf`,
/// and a terminating `# EOF`. Series appear as `<name>_rate` gauges
/// (events/s over the most recent windows).
pub fn render_openmetrics(snap: &MetricsSnapshot, series: &[SeriesSnapshot]) -> String {
    let mut out = String::new();
    for (name, val) in &snap.metrics {
        let name = sanitize_metric_name(name);
        match val {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name}_total {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", fmt_value(*v));
            }
            MetricValue::Histogram(h) => write_histogram(&mut out, &name, h),
        }
    }
    for s in series {
        if s.windows.is_empty() {
            continue;
        }
        let name = format!("{}_rate", sanitize_metric_name(&s.name));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(s.rate_per_sec(10)));
    }
    out.push_str("# EOF\n");
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn write_metrics_json(out: &mut String, snap: &MetricsSnapshot) {
    out.push('{');
    for (i, (name, val)) in snap.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", crate::json::escape(name));
        match val {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => out.push_str(&json_num(*v)),
            MetricValue::Histogram(h) => {
                let [p50, p95, p99] = h.percentiles();
                let _ = write!(
                    out,
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    h.count,
                    json_num(h.sum),
                    json_num(h.min),
                    json_num(h.max),
                    json_num(p50),
                    json_num(p95),
                    json_num(p99)
                );
            }
        }
    }
    out.push('}');
}

/// Render the full scrape state as a JSON document:
/// `{"ranks": [{"rank": 0|"main", "metrics": {…}}, …],
///   "merged": {…}, "series": [{"name", "rate_per_s", "windows"}, …]}`.
/// Histograms appear as `{count, sum, min, max, p50, p95, p99}` objects;
/// series windows as `[id, count, sum, max]` rows.
pub fn render_snapshot_json(
    per_rank: &[(Option<usize>, MetricsSnapshot)],
    merged: &MetricsSnapshot,
    series: &[SeriesSnapshot],
) -> String {
    let mut out = String::from("{\"ranks\":[");
    for (i, (rank, snap)) in per_rank.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match rank {
            Some(r) => {
                let _ = write!(out, "{{\"rank\":{r},\"metrics\":");
            }
            None => out.push_str("{\"rank\":\"main\",\"metrics\":"),
        }
        write_metrics_json(&mut out, snap);
        out.push('}');
    }
    out.push_str("],\"merged\":");
    write_metrics_json(&mut out, merged);
    out.push_str(",\"series\":[");
    let mut first = true;
    for s in series {
        if s.windows.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"rate_per_s\":{},\"windows\":[",
            crate::json::escape(&s.name),
            json_num(s.rate_per_sec(10))
        );
        for (i, w) in s.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{}]",
                w.id,
                w.count,
                json_num(w.sum),
                json_num(w.max)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesWindow;
    use crate::JsonValue;

    fn demo_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: vec![
                ("comm.msgs_sent".into(), MetricValue::Counter(12)),
                ("infer.pts_per_s".into(), MetricValue::Gauge(4096.5)),
                (
                    "prof.gemm_us".into(),
                    MetricValue::Histogram(HistSnapshot {
                        bounds: vec![1.0, 4.0],
                        counts: vec![2, 1, 1],
                        count: 4,
                        sum: 17.0,
                        min: 0.5,
                        max: 9.0,
                    }),
                ),
            ],
        }
    }

    #[test]
    fn openmetrics_output_is_well_formed() {
        let text = render_openmetrics(&demo_snapshot(), &[]);
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE comm_msgs_sent counter\ncomm_msgs_sent_total 12\n"));
        assert!(text.contains("# TYPE infer_pts_per_s gauge\ninfer_pts_per_s 4096.5\n"));
        // Histogram buckets are cumulative and end with +Inf == _count.
        assert!(text.contains("prof_gemm_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("prof_gemm_us_bucket{le=\"4\"} 3"));
        assert!(text.contains("prof_gemm_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("prof_gemm_us_sum 17"));
        assert!(text.contains("prof_gemm_us_count 4"));
        // Every non-comment line is `name{labels} value` with a sane name.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, rest) = line.split_once(' ').expect("sample has a value");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {bare:?}"
            );
            assert!(!rest.is_empty());
        }
    }

    #[test]
    fn series_render_as_rate_gauges() {
        let series = vec![SeriesSnapshot {
            name: "mfp.iterations".into(),
            windows: vec![SeriesWindow {
                id: 3,
                count: 5,
                sum: 5.0,
                max: 1.0,
            }],
        }];
        let text = render_openmetrics(&MetricsSnapshot::default(), &series);
        assert!(text.contains("# TYPE mfp_iterations_rate gauge\nmfp_iterations_rate 50\n"));
    }

    #[test]
    fn json_snapshot_parses_and_holds_values() {
        let snap = demo_snapshot();
        let per_rank = vec![(None, snap.clone()), (Some(1), snap.clone())];
        let series = vec![SeriesSnapshot {
            name: "train.steps".into(),
            windows: vec![SeriesWindow {
                id: 7,
                count: 2,
                sum: 2.0,
                max: 1.0,
            }],
        }];
        let text = render_snapshot_json(&per_rank, &snap, &series);
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let ranks = doc.get("ranks").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].get("rank").and_then(|v| v.as_str()), Some("main"));
        assert_eq!(ranks[1].get("rank").and_then(|v| v.as_f64()), Some(1.0));
        let merged = doc.get("merged").unwrap();
        assert_eq!(
            merged.get("comm.msgs_sent").and_then(|v| v.as_f64()),
            Some(12.0)
        );
        let hist = merged.get("prof.gemm_us").unwrap();
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(4.0));
        let series_out = doc.get("series").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(
            series_out[0].get("name").and_then(|v| v.as_str()),
            Some("train.steps")
        );
    }
}
