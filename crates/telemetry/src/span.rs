//! RAII span tracing.
//!
//! A span is opened with [`crate::span!`] (or [`begin_span`]) and closes
//! when its guard drops; the finished interval is buffered thread-locally
//! and carries the nesting depth at open time, so exporters can rebuild
//! the flame graph without a parent pointer.

use crate::now_us;
use crate::sink::SINK;

/// One finished span interval.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Site name, e.g. `"comm.allreduce"`.
    pub name: String,
    /// Rank of the recording thread (0 for untagged threads); `tid` in
    /// the Chrome trace.
    pub rank: usize,
    /// Open timestamp, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Numeric arguments captured at open time.
    pub args: Vec<(String, f64)>,
}

/// Live span; records a [`SpanEvent`] when dropped.
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    depth: u32,
    args: Vec<(&'static str, f64)>,
}

/// Open a span. Prefer the [`crate::span!`] macro, which checks
/// [`crate::tracing_enabled`] first and skips argument evaluation when
/// tracing is off.
pub fn begin_span(name: &'static str, args: &[(&'static str, f64)]) -> SpanGuard {
    let depth = SINK.with(|s| {
        let mut s = s.borrow_mut();
        let d = s.depth;
        s.depth += 1;
        d
    });
    SpanGuard {
        name,
        start_us: now_us(),
        depth,
        args: args.to_vec(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = now_us();
        SINK.with(|s| {
            let mut s = s.borrow_mut();
            s.depth = s.depth.saturating_sub(1);
            let rank = s.rank.unwrap_or(0);
            s.spans.push(SpanEvent {
                name: self.name.to_string(),
                rank,
                start_us: self.start_us,
                dur_us: end.saturating_sub(self.start_us),
                depth: self.depth,
                args: self.args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            });
        });
    }
}

/// Run `f` inside a span named `name` (when tracing is enabled).
pub fn with_span<T>(name: &'static str, args: &[(&'static str, f64)], f: impl FnOnce() -> T) -> T {
    let _guard = if crate::tracing_enabled() {
        Some(begin_span(name, args))
    } else {
        None
    };
    f()
}

/// Open a span that lasts until the end of the enclosing scope.
///
/// ```
/// # let n = 1024;
/// mf_telemetry::span!("allreduce", bytes = n);
/// ```
///
/// Arguments are `ident = numeric-expr` pairs, converted to `f64`; they
/// are evaluated only when tracing is enabled. When tracing is disabled
/// the entire statement is one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        let _mf_telemetry_span_guard = if $crate::tracing_enabled() {
            Some($crate::begin_span($name, &[$((stringify!($key), $val as f64)),*]))
        } else {
            None
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drain_spans, set_tracing};

    #[test]
    fn spans_nest_and_record_depth() {
        set_tracing(true);
        let spans = std::thread::spawn(|| {
            crate::set_thread_rank(0);
            {
                crate::span!("span.test.outer", items = 2);
                {
                    crate::span!("span.test.inner");
                }
                {
                    crate::span!("span.test.inner");
                }
            }
            crate::flush_thread();
            drain_spans()
                .into_iter()
                .filter(|e| e.name.starts_with("span.test."))
                .collect::<Vec<_>>()
        })
        .join()
        .unwrap();
        set_tracing(false);

        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|e| e.name == "span.test.outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.args, vec![("items".to_string(), 2.0)]);
        for inner in spans.iter().filter(|e| e.name == "span.test.inner") {
            assert_eq!(inner.depth, 1);
            // Children are contained in the parent interval.
            assert!(inner.start_us >= outer.start_us);
            assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        }
    }

    #[test]
    fn disabled_tracing_records_nothing_and_skips_args() {
        assert!(!crate::tracing_enabled());
        let mut evaluated = false;
        {
            crate::span!(
                "span.test.disabled",
                x = {
                    evaluated = true;
                    1.0
                }
            );
        }
        assert!(
            !evaluated,
            "span! must not evaluate args when tracing is off"
        );
        assert!(drain_spans().iter().all(|e| e.name != "span.test.disabled"));
    }

    #[test]
    fn with_span_passes_through_result() {
        assert_eq!(with_span("span.test.wrap", &[], || 5), 5);
    }
}
