//! Integration coverage for the cross-thread collection paths: many
//! rank-tagged threads recording spans/flows/metrics concurrently, one
//! drain seeing all of them, and the snapshot wire format surviving a
//! serialize → parse → merge round trip (including histograms and the
//! interpolated quantiles).

use mf_telemetry::{
    drain_flows, drain_spans, histogram, snapshot, Buckets, FlowPhase, MetricValue, MetricsSnapshot,
};

#[test]
fn spans_and_flows_from_many_threads_drain_once_in_rank_order() {
    mf_telemetry::set_tracing(true);
    let ranks = 4;
    std::thread::scope(|s| {
        for rank in 0..ranks {
            s.spawn(move || {
                mf_telemetry::set_thread_rank(rank);
                for step in 0..3 {
                    mf_telemetry::span!("it.cross_drain.step", step = step as f64);
                }
                mf_telemetry::record_flow(
                    "it.cross_drain.flow",
                    rank as u64,
                    FlowPhase::Start,
                    &[],
                );
                mf_telemetry::flush_thread();
            });
        }
    });
    mf_telemetry::set_tracing(false);

    let spans: Vec<_> = drain_spans()
        .into_iter()
        .filter(|e| e.name == "it.cross_drain.step")
        .collect();
    assert_eq!(spans.len(), ranks * 3, "every thread's spans are drained");
    // drain_spans orders by (rank, start, ...).
    let rank_seq: Vec<usize> = spans.iter().map(|e| e.rank).collect();
    let mut sorted = rank_seq.clone();
    sorted.sort_unstable();
    assert_eq!(rank_seq, sorted, "spans come out grouped by rank");
    for rank in 0..ranks {
        assert_eq!(spans.iter().filter(|e| e.rank == rank).count(), 3);
    }

    let flows: Vec<_> = drain_flows()
        .into_iter()
        .filter(|f| f.name == "it.cross_drain.flow")
        .collect();
    assert_eq!(flows.len(), ranks);
    for rank in 0..ranks {
        assert!(flows.iter().any(|f| f.rank == rank && f.id == rank as u64));
    }

    // A second drain is empty: the collector was consumed.
    assert!(drain_spans()
        .iter()
        .all(|e| e.name != "it.cross_drain.step"));
    assert!(drain_flows()
        .iter()
        .all(|f| f.name != "it.cross_drain.flow"));
}

#[test]
fn per_rank_snapshots_serialize_parse_and_merge_with_quantiles() {
    // Two "ranks" record into the same named metrics on their own
    // threads; each ships its snapshot as text (exactly what
    // gather_rank_metrics does over the communicator).
    let mk = |rank: u64| {
        std::thread::spawn(move || {
            mf_telemetry::set_thread_rank(rank as usize);
            let c = mf_telemetry::counter("it.roundtrip.msgs");
            let g = mf_telemetry::gauge("it.roundtrip.peak");
            let h = histogram("it.roundtrip.lat_us", Buckets::explicit(&[10.0, 100.0]));
            c.add(2 + rank);
            g.set(1.5 * (rank + 1) as f64);
            for v in [1.0, 20.0, 30.0 + rank as f64 * 200.0] {
                h.record(v);
            }
            snapshot().serialize()
        })
        .join()
        .unwrap()
    };
    let wire0 = mk(0);
    let wire1 = mk(1);

    let s0 = MetricsSnapshot::parse(&wire0).expect("rank 0 snapshot parses");
    let s1 = MetricsSnapshot::parse(&wire1).expect("rank 1 snapshot parses");
    // The wire format is exact: re-serializing reproduces the bytes.
    assert_eq!(s0.serialize(), wire0);
    assert_eq!(s1.serialize(), wire1);

    let mut merged = s0.clone();
    merged.merge(&s1);
    assert_eq!(merged.counter("it.roundtrip.msgs"), 2 + 3);
    assert_eq!(merged.gauge("it.roundtrip.peak"), 3.0); // gauges keep max
    let Some(MetricValue::Histogram(h)) = merged.get("it.roundtrip.lat_us") else {
        panic!("merged histogram missing");
    };
    assert_eq!(h.count, 6);
    assert_eq!(h.counts, vec![2, 3, 1]); // per-bucket counts added
    assert_eq!((h.min, h.max), (1.0, 230.0));
    // Interpolated quantiles on the merged histogram: finite, ordered,
    // inside the observed range (the overflow bucket holds 230.0).
    let [p50, p95, p99] = h.percentiles();
    assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    assert!(p50 >= h.min && p99 <= h.max);
    assert!(p99.is_finite(), "overflow bucket must not yield inf");
    // The merged snapshot round-trips too.
    assert_eq!(
        MetricsSnapshot::parse(&merged.serialize()).as_ref(),
        Some(&merged)
    );
}
