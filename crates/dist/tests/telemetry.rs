//! Integration of `mf-telemetry` with the simulated cluster: span
//! nesting/ordering under `Cluster::run`, per-rank metric aggregation, and
//! trace-exporter round-trips over real collective traffic.

use mf_dist::{gather_rank_metrics, Cluster};
use mf_telemetry::{
    drain_spans, parse_chrome_trace, parse_jsonl, span, write_chrome_trace, write_jsonl,
};
use std::sync::Mutex;

/// The tracing flag and the span collector are global; serialize the
/// tests that use them.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn spans_nest_and_order_per_rank_under_cluster_run() {
    let _guard = TRACE_LOCK.lock().unwrap();
    mf_telemetry::clear_spans();
    mf_telemetry::set_tracing(true);
    Cluster::run(3, |c| {
        span!("itest.outer", rank = c.rank() as f64);
        for i in 0..2 {
            span!("itest.inner", i = i as f64);
            let mut buf = vec![c.rank() as f64; 4];
            c.allreduce_sum(&mut buf);
        }
    });
    mf_telemetry::set_tracing(false);
    let spans: Vec<_> = drain_spans()
        .into_iter()
        .filter(|s| s.name.starts_with("itest.") || s.name == "comm.allreduce")
        .collect();

    for rank in 0..3 {
        let mine: Vec<_> = spans.iter().filter(|s| s.rank == rank).collect();
        let outer: Vec<_> = mine.iter().filter(|s| s.name == "itest.outer").collect();
        let inner: Vec<_> = mine.iter().filter(|s| s.name == "itest.inner").collect();
        let ar: Vec<_> = mine.iter().filter(|s| s.name == "comm.allreduce").collect();
        assert_eq!(outer.len(), 1, "rank {rank}");
        assert_eq!(inner.len(), 2, "rank {rank}");
        assert_eq!(ar.len(), 2, "rank {rank}");
        // Depths reflect lexical nesting: outer(0) > inner(1) > allreduce(2).
        assert_eq!(outer[0].depth, 0);
        assert!(inner.iter().all(|s| s.depth == 1));
        assert!(ar.iter().all(|s| s.depth == 2));
        // Parents contain their children in time.
        let oend = outer[0].start_us + outer[0].dur_us;
        for s in inner.iter().chain(ar.iter()) {
            assert!(s.start_us >= outer[0].start_us, "rank {rank}");
            assert!(s.start_us + s.dur_us <= oend, "rank {rank}");
        }
        // drain_spans sorts by start time within a rank.
        for w in mine.windows(2) {
            assert!(w[0].start_us <= w[1].start_us, "rank {rank}");
        }
        // Span args carried the rank through.
        assert_eq!(outer[0].args, vec![("rank".to_string(), rank as f64)]);
    }

    // The full trace survives both exporters byte-exactly.
    let mut jsonl = Vec::new();
    write_jsonl(&spans, &mut jsonl).unwrap();
    assert_eq!(
        parse_jsonl(&String::from_utf8(jsonl).unwrap()).unwrap(),
        spans
    );
    let mut chrome = Vec::new();
    write_chrome_trace(&spans, &mut chrome).unwrap();
    assert_eq!(
        parse_chrome_trace(&String::from_utf8(chrome).unwrap()).unwrap(),
        spans
    );
}

#[test]
fn gather_rank_metrics_merges_per_rank_snapshots() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let outs = Cluster::run(4, |c| {
        // Distinct per-rank traffic: rank r sends r point-to-point
        // messages of 1 element to rank 0.
        if c.rank() > 0 {
            for i in 0..c.rank() {
                c.send(0, 77 + i as u64, &[1.0]);
            }
        } else {
            for src in 1..c.size() {
                for i in 0..src {
                    let _ = c.recv(src, 77 + i as u64);
                }
            }
        }
        c.barrier();
        let per_rank = gather_rank_metrics(c);
        (c.stats(), per_rank)
    });

    // Every rank saw the same gathered vector.
    let (_, per_rank0) = &outs[0];
    assert_eq!(per_rank0.len(), 4);
    for (_, per_rank) in &outs[1..] {
        for (a, b) in per_rank.iter().zip(per_rank0) {
            assert_eq!(a.serialize(), b.serialize());
        }
    }
    // Snapshot counters match each rank's own CommStats view of the
    // pre-gather traffic (the gather's messages are excluded because the
    // snapshot is taken first).
    for (rank, (stats, _)) in outs.iter().enumerate() {
        let snap = &per_rank0[rank];
        assert!(snap.counter("comm.msgs_sent") >= stats.msgs_sent as u64 - 3);
        if rank > 0 {
            assert_eq!(snap.counter("comm.msgs_sent"), rank as u64);
            assert_eq!(snap.counter("comm.bytes_sent"), rank as u64 * 8);
        } else {
            assert_eq!(snap.counter("comm.msgs_recv"), 6);
            assert_eq!(snap.counter("comm.bytes_recv"), 48);
        }
    }
}
