//! Ranks-as-threads cluster with MPI-flavored point-to-point and
//! collective operations, hardened by the `mf-faultsim` layer
//! ([`crate::fault`]): every link carries sequence numbers, receivers
//! deduplicate and reorder, lost messages are recovered from a
//! retransmit log, and rank death surfaces as a typed error instead of a
//! deadlock.

use crate::fault::{
    lock_robust, ClusterError, CommError, FaultBarrier, FaultCounters, FaultPlan, FaultState,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mf_observe::{flow_id, RecKind};
use mf_telemetry::{
    counter, gauge, histogram, span, Buckets, Counter, FlowPhase, Gauge, Histogram,
};
use std::collections::{BTreeMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll interval of blocked receives and barrier waits: how often a
/// waiter re-checks the rank-failure flags.
const TICK: Duration = Duration::from_millis(5);

/// A tagged, per-link-sequenced message between ranks.
#[derive(Clone, Debug)]
struct Message {
    src: usize,
    /// Position in the src→dst link's send order; receivers deliver in
    /// `seq` order and drop duplicates.
    seq: u64,
    tag: u64,
    payload: Vec<f64>,
}

/// Per-source reorder window: messages are handed to tag matching in
/// exact send (`seq`) order, so fault recovery preserves the lossless
/// cluster's per-link FIFO semantics bit-for-bit.
struct Reorder {
    /// Next sequence number to deliver.
    next: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    held: BTreeMap<u64, Message>,
}

/// Communication counters for one rank.
///
/// `comm_seconds` is wall time spent inside blocking communication calls.
/// On a single-core host the interesting outputs are `msgs_*`/`bytes_*`,
/// which feed the [`PerfModel`](crate::PerfModel).
///
/// Counters track *logical* traffic: a send is counted once even if the
/// fault layer drops, duplicates, or retransmits it, so a run under
/// `drop_rate = 0` counts exactly like the lossless cluster. Injected
/// faults are visible in the `fault.*` telemetry counters instead.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their internal
    /// messages).
    pub msgs_sent: usize,
    /// Payload bytes sent.
    pub bytes_sent: usize,
    /// Messages received.
    pub msgs_recv: usize,
    /// Payload bytes received.
    pub bytes_recv: usize,
    /// Wall-clock seconds inside communication calls.
    pub comm_seconds: f64,
}

/// Handles into the `mf-telemetry` registry backing [`CommStats`].
///
/// All recording goes through these; [`Communicator::stats`] is a *view*
/// over the registry (current thread-local values minus the baseline
/// captured when the rank thread started or at the last
/// [`Communicator::reset_stats`]).
#[derive(Clone)]
struct CommCounters {
    msgs_sent: Counter,
    bytes_sent: Counter,
    msgs_recv: Counter,
    bytes_recv: Counter,
    comm_seconds: Gauge,
    allreduce_bytes: Histogram,
    allreduce_us: Histogram,
    exchange_bytes: Histogram,
}

impl CommCounters {
    fn new() -> Self {
        CommCounters {
            msgs_sent: counter("comm.msgs_sent"),
            bytes_sent: counter("comm.bytes_sent"),
            msgs_recv: counter("comm.msgs_recv"),
            bytes_recv: counter("comm.bytes_recv"),
            comm_seconds: gauge("comm.comm_seconds"),
            allreduce_bytes: histogram("comm.allreduce_bytes", Buckets::bytes()),
            allreduce_us: histogram("comm.allreduce_us", Buckets::latency_us()),
            exchange_bytes: histogram("comm.exchange_bytes", Buckets::bytes()),
        }
    }

    /// Raw registry values for the calling thread.
    fn raw(&self) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent.get() as usize,
            bytes_sent: self.bytes_sent.get() as usize,
            msgs_recv: self.msgs_recv.get() as usize,
            bytes_recv: self.bytes_recv.get() as usize,
            comm_seconds: self.comm_seconds.get(),
        }
    }
}

/// One rank's endpoint of the simulated cluster.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    pending: Vec<Message>,
    barrier: Arc<FaultBarrier>,
    faults: Arc<FaultState>,
    /// Per-source dedup/reorder windows.
    reorder: Vec<Reorder>,
    /// `(src, tag)` pairs abandoned by a deadline receive; late arrivals
    /// are acknowledged and discarded instead of polluting `pending`.
    tombstones: HashSet<(usize, u64)>,
    counters: CommCounters,
    fcounters: FaultCounters,
    /// Registry values at thread start / last `reset_stats`; `stats()`
    /// reports the delta since then.
    baseline: CommStats,
    /// Shared scratch for [`align_clocks`](Self::align_clocks): one slot
    /// per rank, written between two barriers. Deliberately *not* a link
    /// message — clock alignment must never perturb the per-link fault
    /// RNG streams or the message counters.
    clock_samples: Arc<Vec<AtomicU64>>,
}

/// Factory for simulated clusters.
pub struct Cluster;

impl Cluster {
    /// Run `f` on `size` ranks (threads) and collect the per-rank results
    /// in rank order.
    ///
    /// Panics in any rank propagate (the whole run fails), mirroring an
    /// MPI abort. Unlike a bare thread join, a panicking rank does *not*
    /// leave peers blocked in `recv` forever: the failure flag trips
    /// every blocked wait within a poll tick, and the resulting panic
    /// names the originating rank.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Send + Sync,
    {
        match Self::try_run(size, FaultPlan::none(), f) {
            Ok(outs) => outs,
            Err(e) => panic!("cluster failed: {e}"),
        }
    }

    /// Run `f` on `size` ranks under a [`FaultPlan`], collecting per-rank
    /// results in rank order or a [`ClusterError`] naming every failed
    /// rank (origin first) if any rank panicked or was crash-injected.
    pub fn try_run<T, F>(size: usize, plan: FaultPlan, f: F) -> Result<Vec<T>, ClusterError>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Send + Sync,
    {
        assert!(size >= 1, "Cluster::try_run: need at least one rank");
        // Full mesh of channels: channel[dst] receives from anyone.
        let mut senders_per_dst = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders_per_dst.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(FaultBarrier::new(size));
        let faults = Arc::new(FaultState::new(size, plan));
        let clock_samples: Arc<Vec<AtomicU64>> =
            Arc::new((0..size).map(|_| AtomicU64::new(0)).collect());

        let mut comms: Vec<Communicator> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Communicator {
                rank,
                size,
                senders: senders_per_dst.clone(),
                receiver,
                pending: Vec::new(),
                barrier: Arc::clone(&barrier),
                faults: Arc::clone(&faults),
                reorder: (0..size)
                    .map(|_| Reorder {
                        next: 0,
                        held: BTreeMap::new(),
                    })
                    .collect(),
                tombstones: HashSet::new(),
                counters: CommCounters::new(),
                fcounters: FaultCounters::new(),
                baseline: CommStats::default(),
                clock_samples: Arc::clone(&clock_samples),
            })
            .collect();
        drop(senders_per_dst);

        let f = &f;
        let outs: Vec<Option<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter_mut()
                .map(|comm| {
                    let faults = Arc::clone(&faults);
                    scope.spawn(move || {
                        // Metrics and spans are recorded into thread-local
                        // buffers; tag them with this rank and capture the
                        // stats baseline *on the rank thread* (the
                        // Communicator was built on the spawning thread).
                        mf_telemetry::set_thread_rank(comm.rank);
                        comm.baseline = comm.counters.raw();
                        let rank = comm.rank;
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        mf_telemetry::flush_thread();
                        // Flush the flight recorder after catch_unwind so
                        // a panicked rank's recent history (its last halo
                        // exchange, its last step) is preserved for the
                        // post-mortem bundle.
                        mf_observe::flush_rank(rank);
                        match out {
                            Ok(v) => Some(v),
                            Err(payload) => {
                                faults.mark_failed(rank, panic_message(payload.as_ref()));
                                None
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(None))
                .collect()
        });

        let failed = std::mem::take(&mut *lock_robust(&faults.panics));
        if failed.is_empty() {
            Ok(outs.into_iter().map(|o| o.expect("rank result")).collect())
        } else {
            let err = ClusterError { failed };
            // Post-mortem: every rank's flight recorder was flushed on
            // thread exit above, so assemble the bundle now while the
            // evidence is fresh. `dump` self-gates on MF_OBSERVE /
            // set_dump_dir and never panics.
            mf_observe::postmortem::dump(
                &mf_observe::postmortem::DumpReason {
                    kind: "cluster-failure".to_string(),
                    detail: err.to_string(),
                    failing_rank: Some(err.origin()),
                },
                &format!("size = {size}\nfault plan = {:?}", faults.plan),
            );
            Err(err)
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// How long a receive is allowed to wait.
enum WaitMode {
    /// Wait indefinitely (lossless) or until the retry budget is spent
    /// (lossy plan), recovering dropped messages from the retransmit log.
    Block,
    /// Wait until the deadline only, with no retransmission — the
    /// degraded-halo path: if the data is not there in time, the caller
    /// uses stale values instead.
    Deadline(Instant),
}

impl Communicator {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The fault plan this cluster runs under.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults.plan
    }

    /// Counters accumulated since the rank thread started (or the last
    /// [`reset_stats`](Self::reset_stats)). This is a view over the
    /// `mf-telemetry` registry for the calling thread.
    pub fn stats(&self) -> CommStats {
        let raw = self.counters.raw();
        CommStats {
            msgs_sent: raw.msgs_sent.saturating_sub(self.baseline.msgs_sent),
            bytes_sent: raw.bytes_sent.saturating_sub(self.baseline.bytes_sent),
            msgs_recv: raw.msgs_recv.saturating_sub(self.baseline.msgs_recv),
            bytes_recv: raw.bytes_recv.saturating_sub(self.baseline.bytes_recv),
            comm_seconds: (raw.comm_seconds - self.baseline.comm_seconds).max(0.0),
        }
    }

    /// Reset the counters (e.g. after warmup iterations). The underlying
    /// telemetry registry is monotone; this only moves the baseline that
    /// [`stats`](Self::stats) subtracts.
    pub fn reset_stats(&mut self) {
        self.baseline = self.counters.raw();
    }

    fn count_sent(&self, bytes: usize, t0: Instant) {
        self.counters.msgs_sent.incr();
        self.counters.bytes_sent.add(bytes as u64);
        self.counters.comm_seconds.add(t0.elapsed().as_secs_f64());
    }

    /// Send `payload` to `dst` with a user tag. Non-blocking (buffered).
    ///
    /// Under an active [`FaultPlan`] the transmission may be dropped,
    /// duplicated, or delayed; the message is always appended to the
    /// link's retransmit log first, so a receiver can recover it. Counted
    /// once as a logical send regardless of injected faults.
    pub fn send(&mut self, dst: usize, tag: u64, payload: &[f64]) {
        assert!(dst < self.size, "send: destination {dst} out of range");
        let t0 = Instant::now();
        if let Some(crash) = self.faults.plan.crash {
            if crash.rank == self.rank {
                let issued = self.faults.sends_issued[self.rank].fetch_add(1, Ordering::SeqCst);
                if issued >= crash.after_sends {
                    panic!(
                        "injected crash: rank {} after {} sends",
                        self.rank, crash.after_sends
                    );
                }
            }
        }
        let plan = &self.faults.plan;
        // Log the message and draw the link's fault decisions under the
        // link lock: the decision stream depends only on the seed and the
        // link's send count, never on thread scheduling. Exactly four
        // draws per send keep the stream aligned.
        let (seq, dropped, duplicated, delay_us) = {
            let mut link = self.faults.link(self.rank, dst, self.size);
            let seq = link.next_seq;
            link.next_seq += 1;
            link.unacked.insert(seq, (tag, payload.to_vec()));
            if plan.is_lossy() {
                let d_drop = link.rng.unit();
                let d_dup = link.rng.unit();
                let d_delay = link.rng.unit();
                let d_amount = link.rng.unit();
                (
                    seq,
                    d_drop < plan.drop_rate,
                    d_dup < plan.dup_rate,
                    (d_delay < plan.delay_rate)
                        .then_some((d_amount * plan.delay_max_us as f64) as u64),
                )
            } else {
                (seq, false, false, None)
            }
        };
        // Causal tracing: a flow *start* stamped with the (epoch, step,
        // seq, src→dst) coordinates plus a flight-recorder entry. Both
        // are purely local — no extra messages, no RNG draws — so the
        // per-link fault decision stream and the pinned message counts
        // are untouched.
        let fid = flow_id(self.rank, dst, seq);
        if mf_telemetry::tracing_enabled() {
            let ctx = mf_observe::step_context();
            mf_telemetry::record_flow(
                "comm.send",
                fid,
                FlowPhase::Start,
                &[
                    ("epoch", ctx.epoch as f64),
                    ("step", ctx.step as f64),
                    ("seq", seq as f64),
                    ("src", self.rank as f64),
                    ("dst", dst as f64),
                    ("bytes", (payload.len() * 8) as f64),
                ],
            );
        }
        mf_observe::record(RecKind::Send, "comm.send", fid, (payload.len() * 8) as f64);
        if let Some(us) = delay_us {
            if us > 0 {
                self.fcounters.delayed.incr();
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        let msg = Message {
            src: self.rank,
            seq,
            tag,
            payload: payload.to_vec(),
        };
        if dropped {
            self.fcounters.dropped.incr();
        } else {
            if duplicated {
                self.fcounters.duplicated.incr();
                let _ = self.senders[dst].send(msg.clone());
            }
            let _ = self.senders[dst].send(msg);
        }
        self.count_sent(payload.len() * 8, t0);
    }

    /// Acknowledge, deduplicate, and reorder one arriving transmission,
    /// returning the messages that became deliverable (in `seq` order).
    fn accept(&mut self, m: Message) -> Vec<Message> {
        let src = m.src;
        // Ack: the transmission reached us, drop it from the sender's
        // retransmit log whether or not it turns out to be a duplicate.
        lock_robust(&self.faults.links[src * self.size + self.rank])
            .unacked
            .remove(&m.seq);
        let duplicate = {
            let ro = &self.reorder[src];
            m.seq < ro.next || ro.held.contains_key(&m.seq)
        };
        if duplicate {
            self.fcounters.dedup_discarded.incr();
            return Vec::new();
        }
        self.reorder[src].held.insert(m.seq, m);
        let mut out = Vec::new();
        loop {
            let msg = {
                let ro = &mut self.reorder[src];
                match ro.held.remove(&ro.next) {
                    Some(m) => {
                        ro.next += 1;
                        m
                    }
                    None => break,
                }
            };
            if self.tombstones.contains(&(src, msg.tag)) {
                continue;
            }
            self.counters.msgs_recv.incr();
            self.counters.bytes_recv.add((msg.payload.len() * 8) as u64);
            // Causal tracing: close the sender's flow on delivery so the
            // merged Chrome trace draws an arrow from the send site to
            // this rank's receive.
            let fid = flow_id(src, self.rank, msg.seq);
            if mf_telemetry::tracing_enabled() {
                let ctx = mf_observe::step_context();
                mf_telemetry::record_flow(
                    "comm.recv",
                    fid,
                    FlowPhase::Finish,
                    &[
                        ("epoch", ctx.epoch as f64),
                        ("step", ctx.step as f64),
                        ("seq", msg.seq as f64),
                        ("src", src as f64),
                        ("dst", self.rank as f64),
                        ("bytes", (msg.payload.len() * 8) as f64),
                    ],
                );
            }
            mf_observe::record(
                RecKind::Recv,
                "comm.recv",
                fid,
                (msg.payload.len() * 8) as f64,
            );
            out.push(msg);
        }
        out
    }

    /// Replay the src→me retransmit log through the accept path (dedup
    /// makes this idempotent), returning the payload if the wanted
    /// message was among the recovered ones.
    fn replay_unacked(&mut self, src: usize, tag: u64) -> Option<Vec<f64>> {
        let entries: Vec<Message> = {
            let link = self.faults.link(src, self.rank, self.size);
            link.unacked
                .iter()
                .map(|(&seq, (t, p))| Message {
                    src,
                    seq,
                    tag: *t,
                    payload: p.clone(),
                })
                .collect()
        };
        let mut found = None;
        for m in entries {
            for m in self.accept(m) {
                if found.is_none() && m.src == src && m.tag == tag {
                    found = Some(m.payload);
                } else {
                    self.pending.push(m);
                }
            }
        }
        found
    }

    fn recv_inner(&mut self, src: usize, tag: u64, mode: WaitMode) -> Result<Vec<f64>, CommError> {
        // Check the out-of-order buffer first. `remove` (not
        // `swap_remove`): the buffer may hold several messages with the
        // same (src, tag) when a peer runs a collective ahead, and they
        // must keep arriving in seq order.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return Ok(self.pending.remove(pos).payload);
        }
        let lossy = self.faults.plan.is_lossy();
        let retry = self.faults.plan.retry;
        let mut retries = 0usize;
        let mut round_deadline = Instant::now() + retry.timeout;
        loop {
            let wait = match mode {
                WaitMode::Block => TICK,
                WaitMode::Deadline(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.fcounters.timeouts.incr();
                        mf_observe::record(RecKind::CommError, "comm.timeout", src as u64, 0.0);
                        return Err(CommError::Timeout { src, tag, retries });
                    }
                    TICK.min(d - now)
                }
            };
            match self.receiver.recv_timeout(wait) {
                Ok(m) => {
                    let mut found = None;
                    for m in self.accept(m) {
                        if found.is_none() && m.src == src && m.tag == tag {
                            found = Some(m.payload);
                        } else {
                            self.pending.push(m);
                        }
                    }
                    if let Some(payload) = found {
                        return Ok(payload);
                    }
                }
                Err(_) => {
                    // Idle tick (disconnection is unreachable while we hold
                    // a sender to ourselves): poll the failure flags, then
                    // the retry budget.
                    if let Some(rank) = self.faults.any_failed() {
                        mf_observe::record(
                            RecKind::CommError,
                            "comm.rank_failed",
                            rank as u64,
                            0.0,
                        );
                        return Err(CommError::RankFailed { rank });
                    }
                    if lossy && matches!(mode, WaitMode::Block) && Instant::now() >= round_deadline
                    {
                        if retries >= retry.max_retries {
                            self.fcounters.timeouts.incr();
                            mf_observe::record(
                                RecKind::CommError,
                                "comm.timeout",
                                src as u64,
                                retries as f64,
                            );
                            return Err(CommError::Timeout { src, tag, retries });
                        }
                        retries += 1;
                        self.fcounters.retries.incr();
                        if let Some(payload) = self.replay_unacked(src, tag) {
                            return Ok(payload);
                        }
                        round_deadline = Instant::now() + retry.timeout;
                    }
                }
            }
        }
    }

    /// Blocking receive of the message with the given source and tag.
    /// Other messages arriving first are buffered (MPI matching
    /// semantics). Panics on a communication fault — use
    /// [`recv_result`](Self::recv_result) to handle faults explicitly.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        match self.recv_result(src, tag) {
            Ok(payload) => payload,
            Err(e) => panic!("recv: {e}"),
        }
    }

    /// Blocking receive that surfaces faults as typed errors: a crashed
    /// peer yields [`CommError::RankFailed`]; under a lossy plan a
    /// message still missing after the retry budget yields
    /// [`CommError::Timeout`].
    pub fn recv_result(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let t0 = Instant::now();
        let result = self.recv_inner(src, tag, WaitMode::Block);
        self.counters.comm_seconds.add(t0.elapsed().as_secs_f64());
        result
    }

    /// Receive with an explicit deadline and *no* retransmission: if the
    /// message has not arrived when `timeout` expires, returns
    /// [`CommError::Timeout`] and leaves recovery policy to the caller.
    /// The slot is not tombstoned; a later identical `recv` can still
    /// match the message.
    pub fn recv_timeout(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        let t0 = Instant::now();
        let result = self.recv_inner(src, tag, WaitMode::Deadline(t0 + timeout));
        self.counters.comm_seconds.add(t0.elapsed().as_secs_f64());
        result
    }

    /// Abandon the `(src, tag)` receive slot: any queued or future
    /// arrival with this pair is acknowledged and discarded.
    fn tombstone(&mut self, src: usize, tag: u64) {
        self.tombstones.insert((src, tag));
        self.pending.retain(|m| !(m.src == src && m.tag == tag));
    }

    /// Synchronize all ranks. Panics with the failed rank id if a rank
    /// dies while others wait.
    pub fn barrier(&mut self) {
        let t0 = Instant::now();
        let result = self.barrier.wait(&self.faults, TICK);
        self.counters.comm_seconds.add(t0.elapsed().as_secs_f64());
        if let Err(e) = result {
            panic!("barrier: {e}");
        }
    }

    /// Align per-rank monotonic clocks at a barrier point and report each
    /// rank's offset relative to rank 0 as the `observe.clock_offset_us`
    /// gauge (plus a flight-recorder mark).
    ///
    /// All ranks share one telemetry epoch (`mf_telemetry::now_us` reads
    /// a process-wide `Instant`), so the offset measures residual barrier
    /// jitter rather than true clock skew — on a real deployment this is
    /// the hook where NTP-style skew would be estimated. Implemented with
    /// two barriers and a shared atomic slot per rank, deliberately *not*
    /// with link messages: alignment must never perturb the per-link
    /// fault RNG streams or the pinned message counters.
    pub fn align_clocks(&mut self) -> f64 {
        self.barrier();
        self.clock_samples[self.rank].store(mf_telemetry::now_us(), Ordering::SeqCst);
        self.barrier();
        let mine = self.clock_samples[self.rank].load(Ordering::SeqCst) as f64;
        let base = self.clock_samples[0].load(Ordering::SeqCst) as f64;
        let offset_us = mine - base;
        gauge("observe.clock_offset_us").set(offset_us);
        mf_observe::record(
            RecKind::Mark,
            "observe.align_clocks",
            self.rank as u64,
            offset_us,
        );
        offset_us
    }

    /// Exchange buffers with a set of peers: send to every peer, then
    /// receive one buffer from each. This is the halo-exchange primitive
    /// of the distributed MFP (§4.2). Sends complete before any receive
    /// blocks, so the pattern is deadlock-free.
    pub fn exchange(&mut self, outgoing: &[(usize, Vec<f64>)], tag: u64) -> Vec<(usize, Vec<f64>)> {
        let bytes: usize = outgoing.iter().map(|(_, p)| p.len() * 8).sum();
        span!(
            "comm.exchange",
            peers = outgoing.len() as f64,
            bytes = bytes as f64
        );
        mf_observe::record(
            RecKind::Collective,
            "comm.exchange",
            outgoing.len() as u64,
            bytes as f64,
        );
        self.counters.exchange_bytes.record(bytes as f64);
        {
            mf_profile::zone!("halo_send");
            for (dst, payload) in outgoing {
                self.send(*dst, tag, payload);
            }
        }
        mf_profile::zone!("halo_recv");
        outgoing
            .iter()
            .map(|(peer, _)| (*peer, self.recv(*peer, tag)))
            .collect()
    }

    /// Halo exchange with a per-call deadline — the degraded mode of the
    /// distributed MFP (§6.3). Sends to every peer, then gives the whole
    /// receive phase `timeout` to complete. A peer whose buffer misses
    /// the deadline yields `Err(CommError::Timeout)` and its `(src, tag)`
    /// slot is tombstoned (a late arrival is discarded, not delivered to
    /// a future iteration); the caller reuses stale halo values instead.
    /// The `tag` must be unique per exchange round for tombstoning to be
    /// sound — the MFP uses its iteration index.
    pub fn exchange_deadline(
        &mut self,
        outgoing: &[(usize, Vec<f64>)],
        tag: u64,
        timeout: Duration,
    ) -> Vec<(usize, Result<Vec<f64>, CommError>)> {
        let bytes: usize = outgoing.iter().map(|(_, p)| p.len() * 8).sum();
        span!(
            "comm.exchange",
            peers = outgoing.len() as f64,
            bytes = bytes as f64
        );
        mf_observe::record(
            RecKind::Collective,
            "comm.exchange_deadline",
            outgoing.len() as u64,
            bytes as f64,
        );
        self.counters.exchange_bytes.record(bytes as f64);
        {
            mf_profile::zone!("halo_send");
            for (dst, payload) in outgoing {
                self.send(*dst, tag, payload);
            }
        }
        mf_profile::zone!("halo_recv");
        let t0 = Instant::now();
        let deadline = t0 + timeout;
        let results: Vec<(usize, Result<Vec<f64>, CommError>)> = outgoing
            .iter()
            .map(|(peer, _)| {
                let r = self.recv_inner(*peer, tag, WaitMode::Deadline(deadline));
                if matches!(r, Err(CommError::Timeout { .. })) {
                    self.tombstone(*peer, tag);
                }
                (*peer, r)
            })
            .collect();
        self.counters.comm_seconds.add(t0.elapsed().as_secs_f64());
        results
    }

    /// In-place allreduce (sum).
    ///
    /// Large buffers use the ring algorithm (reduce-scatter + allgather,
    /// 2(P−1) messages per rank) — the bandwidth-optimal choice used by
    /// MPI/NCCL and cited by the paper for gradient averaging. Buffers of
    /// at most [`ALLREDUCE_RD_MAX_ELEMS`] elements use latency-optimal
    /// recursive doubling (⌈log₂P⌉ rounds) instead, matching MPI's
    /// small-message switch.
    pub fn allreduce_sum(&mut self, buf: &mut [f64]) {
        let bytes = buf.len() * 8;
        span!(
            "comm.allreduce",
            bytes = bytes as f64,
            elems = buf.len() as f64
        );
        mf_observe::record(
            RecKind::Collective,
            "comm.allreduce",
            self.size as u64,
            buf.len() as f64,
        );
        mf_profile::zone!("allreduce");
        let t0 = Instant::now();
        if self.size > 1 {
            if buf.is_empty() {
                self.barrier();
            } else if buf.len() <= ALLREDUCE_RD_MAX_ELEMS {
                self.allreduce_rd(buf);
            } else {
                self.allreduce_ring(buf);
            }
        }
        self.counters.allreduce_bytes.record(bytes as f64);
        self.counters
            .allreduce_us
            .record(t0.elapsed().as_secs_f64() * 1e6);
    }

    /// Ring allreduce: reduce-scatter followed by allgather.
    fn allreduce_ring(&mut self, buf: &mut [f64]) {
        let p = self.size;
        let n = buf.len();
        // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
        let starts: Vec<usize> = (0..=p).map(|c| c * n / p).collect();
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;

        // Reduce-scatter: after step s, rank r holds the partial sum of
        // chunk (r - s) over ranks r-s..=r.
        for step in 0..p - 1 {
            let send_chunk = (self.rank + p - step) % p;
            let recv_chunk = (self.rank + p - step - 1) % p;
            let payload = buf[starts[send_chunk]..starts[send_chunk + 1]].to_vec();
            self.send(right, tag_ar(step, false), &payload);
            let incoming = self.recv(left, tag_ar(step, false));
            let dst = &mut buf[starts[recv_chunk]..starts[recv_chunk + 1]];
            for (d, v) in dst.iter_mut().zip(incoming) {
                *d += v;
            }
        }
        // Allgather the completed chunks around the ring.
        for step in 0..p - 1 {
            let send_chunk = (self.rank + 1 + p - step) % p;
            let recv_chunk = (self.rank + p - step) % p;
            let payload = buf[starts[send_chunk]..starts[send_chunk + 1]].to_vec();
            self.send(right, tag_ar(step, true), &payload);
            let incoming = self.recv(left, tag_ar(step, true));
            buf[starts[recv_chunk]..starts[recv_chunk + 1]].copy_from_slice(&incoming);
        }
    }

    /// Recursive-doubling allreduce with the MPICH fold/unfold scheme for
    /// non-power-of-two rank counts: the first `2·rem` ranks pair up
    /// (even sends its buffer to the odd neighbor, which joins the
    /// power-of-two group), the group runs log₂ pairwise exchange rounds,
    /// and the result is unfolded back to the idle even ranks.
    ///
    /// Pairwise exchanges compute `a + b` on one side and `b + a` on the
    /// other, so all ranks end bit-identical (IEEE addition commutes).
    fn allreduce_rd(&mut self, buf: &mut [f64]) {
        let p = self.size;
        let pof2 = prev_power_of_two(p);
        let rem = p - pof2;
        let me = self.rank;
        // Fold the surplus ranks into the power-of-two group.
        let newrank = if me < 2 * rem {
            if me.is_multiple_of(2) {
                self.send(me + 1, TAG_RD_FOLD, buf);
                None
            } else {
                let incoming = self.recv(me - 1, TAG_RD_FOLD);
                for (a, b) in buf.iter_mut().zip(incoming) {
                    *a += b;
                }
                Some(me / 2)
            }
        } else {
            Some(me - rem)
        };
        if let Some(nr) = newrank {
            let mut mask = 1usize;
            let mut step = 0u64;
            while mask < pof2 {
                let partner_new = nr ^ mask;
                let partner = if partner_new < rem {
                    partner_new * 2 + 1
                } else {
                    partner_new + rem
                };
                self.send(partner, tag_rd(step), buf);
                let incoming = self.recv(partner, tag_rd(step));
                for (a, b) in buf.iter_mut().zip(incoming) {
                    *a += b;
                }
                mask <<= 1;
                step += 1;
            }
        }
        // Unfold: hand the finished sum back to the idle even ranks.
        if me < 2 * rem {
            if me % 2 == 1 {
                self.send(me - 1, TAG_RD_UNFOLD, buf);
            } else {
                let incoming = self.recv(me + 1, TAG_RD_UNFOLD);
                buf.copy_from_slice(&incoming);
            }
        }
    }

    /// Allreduce-sum with a *canonical reduction order*: every element is
    /// summed over ranks 0, 1, …, P−1 left to right, on every rank.
    ///
    /// The ring and recursive-doubling paths of
    /// [`allreduce_sum`](Self::allreduce_sum) reduce in an order that
    /// depends on P, so the same per-rank contributions give slightly
    /// different floating-point totals at different rank counts. This
    /// variant (allgather + ordered local sum, P−1 messages each way)
    /// trades bandwidth optimality for a P-independent summation order —
    /// the basis of the cross-world-size determinism guarantee in
    /// training.
    pub fn allreduce_sum_ordered(&mut self, buf: &mut [f64]) {
        if self.size == 1 {
            return;
        }
        span!("comm.allreduce", bytes = (buf.len() * 8) as f64);
        mf_profile::zone!("allreduce");
        let gathered = self.allgather(buf);
        for (i, slot) in buf.iter_mut().enumerate() {
            let mut acc = 0.0;
            for contribution in &gathered {
                acc += contribution[i];
            }
            *slot = acc;
        }
    }

    /// Average `buf` across all ranks (allreduce-sum then divide) — the
    /// gradient synchronization of Algorithm 1.
    pub fn allreduce_mean(&mut self, buf: &mut [f64]) {
        self.allreduce_sum(buf);
        let inv = 1.0 / self.size as f64;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }

    /// Rank-ordered mean: [`allreduce_sum_ordered`](Self::allreduce_sum_ordered)
    /// followed by the division, for reduction-order-independent gradient
    /// averaging.
    pub fn allreduce_mean_ordered(&mut self, buf: &mut [f64]) {
        self.allreduce_sum_ordered(buf);
        let inv = 1.0 / self.size as f64;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }

    /// Gather every rank's buffer on every rank, indexed by rank.
    /// Per-rank payload lengths may differ (ragged gather).
    pub fn allgather(&mut self, local: &[f64]) -> Vec<Vec<f64>> {
        span!("comm.allgather", bytes = (local.len() * 8) as f64);
        mf_observe::record(
            RecKind::Collective,
            "comm.allgather",
            self.size as u64,
            local.len() as f64,
        );
        let mut out = vec![Vec::new(); self.size];
        for dst in 0..self.size {
            if dst != self.rank {
                self.send(dst, TAG_ALLGATHER, local);
            }
        }
        out[self.rank] = local.to_vec();
        let me = self.rank;
        for src in (0..self.size).filter(|&s| s != me) {
            out[src] = self.recv(src, TAG_ALLGATHER);
        }
        out
    }

    /// Sum a single scalar across ranks (used for global convergence
    /// tests in Algorithm 2).
    pub fn allreduce_scalar(&mut self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Broadcast `buf` from `root` to all ranks (binomial tree: O(log P)
    /// rounds).
    pub fn broadcast(&mut self, root: usize, buf: &mut Vec<f64>) {
        assert!(root < self.size, "broadcast: root {root} out of range");
        span!("comm.broadcast", bytes = (buf.len() * 8) as f64);
        mf_observe::record(
            RecKind::Collective,
            "comm.broadcast",
            self.size as u64,
            buf.len() as f64,
        );
        let p = self.size;
        if p == 1 {
            return;
        }
        // Re-index ranks so the root is virtual rank 0.
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        // Receive once (if not root), then forward down the tree.
        while mask < p {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % p;
                *buf = self.recv(src, TAG_BCAST);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 && vrank & mask == 0 {
                let vdst = vrank | mask;
                if vdst < p {
                    let dst = (vdst + root) % p;
                    self.send(dst, TAG_BCAST, buf);
                }
            }
            mask >>= 1;
        }
    }

    /// Reduce-sum `buf` onto `root` (other ranks' buffers are left as
    /// their partial sums; only the root holds the total).
    pub fn reduce_sum_to(&mut self, root: usize, buf: &mut [f64]) {
        assert!(root < self.size, "reduce_sum_to: root {root} out of range");
        let p = self.size;
        if p == 1 {
            return;
        }
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let dst = (vrank - mask + root) % p;
                self.send(dst, TAG_REDUCE, buf);
                return;
            } else {
                let vsrc = vrank | mask;
                if vsrc < p {
                    let src = (vsrc + root) % p;
                    let incoming = self.recv(src, TAG_REDUCE);
                    for (a, b) in buf.iter_mut().zip(incoming) {
                        *a += b;
                    }
                }
            }
            mask <<= 1;
        }
    }
}

/// Buffers of at most this many elements take the recursive-doubling
/// allreduce path; larger buffers use the bandwidth-optimal ring.
pub const ALLREDUCE_RD_MAX_ELEMS: usize = 8;

const TAG_ALLGATHER: u64 = u64::MAX - 1;
const TAG_BCAST: u64 = u64::MAX - 2;
const TAG_REDUCE: u64 = u64::MAX - 3;
const TAG_RD_FOLD: u64 = u64::MAX - 4;
const TAG_RD_UNFOLD: u64 = u64::MAX - 5;

/// Internal tags for ring-allreduce steps, kept far from user tags.
fn tag_ar(step: usize, gather_phase: bool) -> u64 {
    (u64::MAX - 1024) + step as u64 * 2 + gather_phase as u64
}

/// Internal tags for recursive-doubling exchange rounds.
fn tag_rd(step: u64) -> u64 {
    (u64::MAX - 2048) + step
}

/// Largest power of two `<= p` (`p >= 1`).
fn prev_power_of_two(p: usize) -> usize {
    let mut v = 1usize;
    while v * 2 <= p {
        v *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_rank_cluster_runs() {
        let out = Cluster::run(1, |c| {
            assert_eq!(c.size(), 1);
            let mut v = vec![1.0, 2.0];
            c.allreduce_sum(&mut v);
            v
        });
        assert_eq!(out, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = Cluster::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, &[1.0, 2.0, 3.0]);
                c.recv(1, 8)
            } else {
                let got = c.recv(0, 7);
                c.send(0, 8, &[got.iter().sum()]);
                got
            }
        });
        assert_eq!(out[0], vec![6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Cluster::run(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1.
                c.send(1, 2, &[20.0]);
                c.send(1, 1, &[10.0]);
                vec![]
            } else {
                // Receive in the opposite order.
                let a = c.recv(0, 1);
                let b = c.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![10.0, 20.0]);
    }

    #[test]
    fn allreduce_matches_sequential_sum() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for p in [2usize, 3, 4, 5, 8] {
            for n in [1usize, 3, 7, 64, 100] {
                let inputs: Vec<Vec<f64>> = (0..p)
                    .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect();
                let expect: Vec<f64> = (0..n).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
                let inputs_ref = &inputs;
                let outs = Cluster::run(p, move |c| {
                    let mut buf = inputs_ref[c.rank()].clone();
                    c.allreduce_sum(&mut buf);
                    buf
                });
                for (r, o) in outs.iter().enumerate() {
                    for (a, e) in o.iter().zip(&expect) {
                        assert!((a - e).abs() < 1e-9, "p={p} n={n} rank {r}: {a} vs {e}");
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_mean_averages() {
        let outs = Cluster::run(4, |c| {
            let mut buf = vec![c.rank() as f64; 3];
            c.allreduce_mean(&mut buf);
            buf
        });
        for o in outs {
            assert_eq!(o, vec![1.5, 1.5, 1.5]);
        }
    }

    #[test]
    fn allreduce_message_count_is_ring_optimal() {
        let outs = Cluster::run(4, |c| {
            let mut buf = vec![1.0; 16];
            c.allreduce_sum(&mut buf);
            c.stats()
        });
        for s in outs {
            assert_eq!(s.msgs_sent, 2 * 3, "ring allreduce sends 2(P-1) messages");
            assert_eq!(s.msgs_recv, 2 * 3);
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let outs = Cluster::run(3, |c| c.allgather(&[c.rank() as f64, 1.0]));
        for o in outs {
            assert_eq!(o, vec![vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]]);
        }
    }

    #[test]
    fn exchange_is_symmetric_and_deadlock_free() {
        // Every rank exchanges with every other rank simultaneously.
        let outs = Cluster::run(4, |c| {
            let peers: Vec<(usize, Vec<f64>)> = (0..4)
                .filter(|&p| p != c.rank())
                .map(|p| (p, vec![c.rank() as f64 * 10.0 + p as f64]))
                .collect();
            let mut got = c.exchange(&peers, 99);
            got.sort_by_key(|(p, _)| *p);
            got
        });
        // Rank 1 receives from peer p the value p*10 + 1.
        let r1 = &outs[1];
        assert_eq!(r1[0], (0, vec![1.0]));
        assert_eq!(r1[1], (2, vec![21.0]));
        assert_eq!(r1[2], (3, vec![31.0]));
    }

    #[test]
    fn allreduce_scalar_sums() {
        let outs = Cluster::run(5, |c| c.allreduce_scalar(c.rank() as f64));
        for o in outs {
            assert_eq!(o, 10.0);
        }
    }

    #[test]
    fn stats_count_bytes() {
        let outs = Cluster::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, &[0.0; 10]);
            } else {
                let _ = c.recv(0, 0);
            }
            c.stats()
        });
        assert_eq!(outs[0].bytes_sent, 80);
        assert_eq!(outs[1].bytes_recv, 80);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let outs = Cluster::run(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all increments.
            counter.load(Ordering::SeqCst)
        });
        for o in outs {
            assert_eq!(o, 4);
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..5 {
            let outs = Cluster::run(5, move |c| {
                let mut buf = if c.rank() == root {
                    vec![7.0, 8.0, 9.0]
                } else {
                    Vec::new()
                };
                c.broadcast(root, &mut buf);
                buf
            });
            for (r, o) in outs.iter().enumerate() {
                assert_eq!(o, &vec![7.0, 8.0, 9.0], "root {root}, rank {r}");
            }
        }
    }

    #[test]
    fn reduce_sum_collects_on_root() {
        for root in [0usize, 2] {
            let outs = Cluster::run(4, move |c| {
                let mut buf = vec![c.rank() as f64 + 1.0; 3];
                c.reduce_sum_to(root, &mut buf);
                (c.rank(), buf)
            });
            let (_, root_buf) = outs.iter().find(|(r, _)| *r == root).unwrap();
            assert_eq!(root_buf, &vec![10.0; 3], "root {root}");
        }
    }

    #[test]
    fn reduce_then_broadcast_equals_allreduce() {
        let outs = Cluster::run(6, |c| {
            let mut a = vec![c.rank() as f64; 4];
            c.reduce_sum_to(0, &mut a);
            c.broadcast(0, &mut a);
            let mut b = vec![c.rank() as f64; 4];
            c.allreduce_sum(&mut b);
            (a, b)
        });
        for (a, b) in outs {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn allreduce_with_fewer_elements_than_ranks() {
        let outs = Cluster::run(6, |c| {
            let mut buf = vec![1.0, 2.0];
            c.allreduce_sum(&mut buf);
            buf
        });
        for o in outs {
            assert_eq!(o, vec![6.0, 12.0]);
        }
    }

    #[test]
    fn small_allreduce_uses_recursive_doubling() {
        // p=4 (power of two), n=2 ≤ ALLREDUCE_RD_MAX_ELEMS: exactly
        // log₂P = 2 rounds, each exchanging the full 16-byte buffer.
        let outs = Cluster::run(4, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum(&mut buf);
            (buf, c.stats())
        });
        for (r, (buf, s)) in outs.iter().enumerate() {
            assert_eq!(buf, &vec![6.0, 4.0], "rank {r}");
            assert_eq!(s.msgs_sent, 2, "rank {r}");
            assert_eq!(s.msgs_recv, 2, "rank {r}");
            assert_eq!(s.bytes_sent, 2 * 16, "rank {r}");
            assert_eq!(s.bytes_recv, 2 * 16, "rank {r}");
        }
        // Recursive doubling is bit-reproducible across ranks.
        for (buf, _) in &outs[1..] {
            assert_eq!(buf, &outs[0].0);
        }
    }

    #[test]
    fn non_power_of_two_recursive_doubling_message_counts() {
        // p=6 → pof2=4, rem=2. Ranks 0 and 2 fold out (1 send, 1 recv);
        // ranks 1 and 3 absorb a fold, run 2 rounds, then unfold
        // (3 sends, 3 recvs); ranks 4 and 5 just run the 2 rounds.
        let outs = Cluster::run(6, |c| {
            let mut buf = vec![1.0; 2];
            c.allreduce_sum(&mut buf);
            (buf, c.stats())
        });
        for (r, (buf, s)) in outs.iter().enumerate() {
            assert_eq!(buf, &vec![6.0; 2], "rank {r}");
            let expect = match r {
                0 | 2 => (1, 1),
                1 | 3 => (3, 3),
                _ => (2, 2),
            };
            assert_eq!((s.msgs_sent, s.msgs_recv), expect, "rank {r}");
        }
    }

    #[test]
    fn stats_view_is_exact_per_primitive() {
        // Ring allreduce: p=4, n=16 → 6 messages of one 4-element chunk.
        let outs = Cluster::run(4, |c| {
            let mut buf = vec![1.0; 16];
            c.allreduce_sum(&mut buf);
            c.stats()
        });
        for s in outs {
            assert_eq!(s.msgs_sent, 6);
            assert_eq!(s.msgs_recv, 6);
            assert_eq!(s.bytes_sent, 6 * 4 * 8);
            assert_eq!(s.bytes_recv, 6 * 4 * 8);
        }

        // Allgather: p=3 → each rank sends its 5-element buffer twice.
        let outs = Cluster::run(3, |c| {
            let _ = c.allgather(&[0.0; 5]);
            c.stats()
        });
        for s in outs {
            assert_eq!((s.msgs_sent, s.bytes_sent), (2, 2 * 5 * 8));
            assert_eq!((s.msgs_recv, s.bytes_recv), (2, 2 * 5 * 8));
        }

        // Broadcast: p=5 → p−1 messages in total, one receive per
        // non-root rank.
        let outs = Cluster::run(5, |c| {
            let mut buf = if c.rank() == 0 {
                vec![1.0; 3]
            } else {
                Vec::new()
            };
            c.broadcast(0, &mut buf);
            c.stats()
        });
        let total_sent: usize = outs.iter().map(|s| s.msgs_sent).sum();
        assert_eq!(total_sent, 4);
        assert_eq!(outs[0].msgs_recv, 0);
        for s in &outs[1..] {
            assert_eq!((s.msgs_recv, s.bytes_recv), (1, 3 * 8));
        }

        // Exchange: two peers swap one 3-element buffer each.
        let outs = Cluster::run(2, |c| {
            let peer = 1 - c.rank();
            let _ = c.exchange(&[(peer, vec![0.0; 3])], 5);
            c.stats()
        });
        for s in outs {
            assert_eq!(
                (s.msgs_sent, s.bytes_sent, s.msgs_recv, s.bytes_recv),
                (1, 24, 1, 24)
            );
        }
    }

    #[test]
    fn reset_stats_zeroes_the_view() {
        let outs = Cluster::run(2, |c| {
            let peer = 1 - c.rank();
            c.send(peer, 1, &[0.0; 4]);
            let _ = c.recv(peer, 1);
            let before = c.stats();
            c.reset_stats();
            let zeroed = c.stats();
            c.send(peer, 2, &[0.0; 2]);
            let _ = c.recv(peer, 2);
            (before, zeroed, c.stats())
        });
        for (before, zeroed, after) in outs {
            assert_eq!((before.msgs_sent, before.bytes_sent), (1, 32));
            assert_eq!((before.msgs_recv, before.bytes_recv), (1, 32));
            assert_eq!(zeroed, CommStats::default());
            assert_eq!((after.msgs_sent, after.bytes_sent), (1, 16));
            assert_eq!((after.msgs_recv, after.bytes_recv), (1, 16));
        }
    }

    #[test]
    fn ordered_allreduce_matches_plain_sum_and_is_rank_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for p in [1usize, 2, 3, 5] {
            let inputs: Vec<Vec<f64>> = (0..p)
                .map(|_| (0..12).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect();
            let expect: Vec<f64> = (0..12).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
            let inputs_ref = &inputs;
            let outs = Cluster::run(p, move |c| {
                let mut buf = inputs_ref[c.rank()].clone();
                c.allreduce_sum_ordered(&mut buf);
                buf
            });
            for o in &outs {
                assert_eq!(o, &outs[0], "all ranks bit-identical");
                for (a, e) in o.iter().zip(&expect) {
                    assert!((a - e).abs() < 1e-12, "p={p}: {a} vs {e}");
                }
            }
        }
    }

    #[test]
    fn ordered_mean_divides() {
        let outs = Cluster::run(4, |c| {
            let mut buf = vec![c.rank() as f64; 3];
            c.allreduce_mean_ordered(&mut buf);
            buf
        });
        for o in outs {
            assert_eq!(o, vec![1.5; 3]);
        }
    }

    /// Regression: the out-of-order buffer must stay FIFO per (src, tag).
    /// A `swap_remove` there once let a consume for one peer move a
    /// later-seq message in front of an earlier one from another peer,
    /// so a rank running a collective ahead could get its step-N+1
    /// payload delivered in step N.
    #[test]
    fn pending_buffer_preserves_same_tag_message_order() {
        let outs = Cluster::run(4, |c| {
            if c.rank() == 0 {
                // Park in a recv from the slowest sender so the other
                // messages accumulate in the pending buffer in arrival
                // order: [1/tag7, 2/tag7 seq0, 2/tag7 seq1].
                assert_eq!(c.recv(3, 9), vec![99.0]);
                assert_eq!(c.recv(1, 7), vec![1.0]);
                let first = c.recv(2, 7);
                let second = c.recv(2, 7);
                (first, second)
            } else {
                match c.rank() {
                    1 => c.send(0, 7, &[1.0]),
                    2 => {
                        std::thread::sleep(Duration::from_millis(30));
                        c.send(0, 7, &[10.0]);
                        c.send(0, 7, &[20.0]);
                    }
                    _ => {
                        std::thread::sleep(Duration::from_millis(90));
                        c.send(0, 9, &[99.0]);
                    }
                }
                (Vec::new(), Vec::new())
            }
        });
        assert_eq!(outs[0], (vec![10.0], vec![20.0]));
    }
}
