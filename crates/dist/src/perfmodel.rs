//! Alpha–beta communication cost model (§4.3) with presets for the
//! paper's evaluation platforms (Table 2).
//!
//! The paper models per-processor communication as
//! `C_comm = (#msgs)·α + (bytes)/β` and per-processor computation as
//! `c · (#subdomain inferences)`. Since this reproduction runs on a single
//! core, the benches count real messages and bytes through
//! [`CommStats`](crate::CommStats) and convert them to modeled seconds with
//! this model, while compute is measured directly.

use crate::CommStats;

/// Latency/bandwidth model for one interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Per-message latency α in seconds.
    pub alpha: f64,
    /// Bandwidth β in bytes per second.
    pub beta: f64,
}

impl PerfModel {
    /// ConnectX-5 InfiniBand (100 Gbit/s) inter-node fabric used by all
    /// three clusters in Table 2, with MPI-level small-message latency.
    pub fn infiniband_100g() -> Self {
        Self {
            alpha: 2.0e-6,
            beta: 12.5e9,
        }
    }

    /// V100 nodes: PCIe intra-node staging (32 GB/s) raises the effective
    /// latency for GPU buffers.
    pub fn v100_pcie() -> Self {
        Self {
            alpha: 6.0e-6,
            beta: 12.5e9,
        }
    }

    /// A30 nodes with NVLink (200 GB/s intra-node); inter-node still
    /// 100 Gbit/s InfiniBand — this is the platform of the paper's headline
    /// scaling runs.
    pub fn a30_cluster() -> Self {
        Self {
            alpha: 2.5e-6,
            beta: 12.5e9,
        }
    }

    /// A100 nodes with 600 GB/s NVLink.
    pub fn a100_nvlink() -> Self {
        Self {
            alpha: 2.0e-6,
            beta: 25.0e9,
        }
    }

    /// The mpi4py path the paper actually measured serializes tensors
    /// before sending; model that as a higher per-message latency.
    pub fn mpi4py_serialized() -> Self {
        Self {
            alpha: 5.0e-5,
            beta: 10.0e9,
        }
    }

    /// Modeled time for a message count and byte volume.
    pub fn time(&self, msgs: usize, bytes: usize) -> f64 {
        msgs as f64 * self.alpha + bytes as f64 / self.beta
    }

    /// Modeled time for recorded counters (sent side).
    pub fn time_for(&self, stats: &CommStats) -> f64 {
        self.time(stats.msgs_sent, stats.bytes_sent)
    }

    /// The paper's closed-form per-processor MFP communication cost
    /// (§4.3): `C_comm = 8·I·α + I·16·N·d/√P · w/β`, where `I` is the
    /// iteration count, `N` the global resolution, `d` the subdomain
    /// density, `P` the processor count and `w` the word size in bytes.
    pub fn mfp_comm_cost(&self, iters: usize, n: usize, d: usize, p: usize) -> f64 {
        let bytes_per_iter = 16.0 * n as f64 * d as f64 / (p as f64).sqrt() * 8.0;
        iters as f64 * (8.0 * self.alpha + bytes_per_iter / self.beta)
    }
}

/// Device-level (GPU-like) inference cost model, used where a real
/// accelerator's occupancy behaviour cannot be measured on this host.
///
/// A batched inference of `q` points costs
/// `launch_overhead + q / (peak_points_per_sec · occupancy(q))` with
/// `occupancy(q) = min(1, q / saturation_points)`: tiny launches leave the
/// device idle, which is exactly why the paper's batched MFP (§4.1) beats
/// the one-subdomain-at-a-time baseline by up to 100×.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuModel {
    /// Fixed cost per kernel launch / inference call, seconds.
    pub launch_overhead: f64,
    /// Peak sustained throughput, points per second.
    pub peak_points_per_sec: f64,
    /// Batch size (points) at which the device reaches full occupancy.
    pub saturation_points: usize,
}

impl GpuModel {
    /// A30-like inference behaviour for a small MLP.
    pub fn a30_like() -> Self {
        Self {
            launch_overhead: 3.0e-5,
            peak_points_per_sec: 5.0e7,
            saturation_points: 8192,
        }
    }

    /// Occupancy fraction for a launch of `q` points.
    pub fn occupancy(&self, q: usize) -> f64 {
        (q as f64 / self.saturation_points as f64).min(1.0)
    }

    /// Modeled time of one launch of `q` points.
    pub fn launch_time(&self, q: usize) -> f64 {
        if q == 0 {
            return 0.0;
        }
        self.launch_overhead + q as f64 / (self.peak_points_per_sec * self.occupancy(q))
    }

    /// Modeled time of `launches` equal launches totalling `points`.
    pub fn time(&self, launches: usize, points: usize) -> f64 {
        if launches == 0 {
            return 0.0;
        }
        launches as f64 * self.launch_time(points / launches.max(1))
    }
}

/// CPU time consumed by the calling thread, in seconds.
///
/// Unlike `Instant::now()` differences, this excludes time the thread
/// spent descheduled — essential when many simulated ranks timeshare a
/// single core and each must report only its *own* work.
pub fn thread_cpu_time() -> f64 {
    // Direct libc call (declared here so the workspace needs no `libc`
    // crate; the C library is linked by std anyway).
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid, writable timespec; the clock id is a constant.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_model_rewards_batching() {
        let m = GpuModel::a30_like();
        // 1000 launches of 13 points vs 18 launches of ~722 points
        // (same total work, the Fig-8 situation).
        let unbatched = m.time(1000, 13_000);
        let batched = m.time(18, 13_000);
        assert!(
            unbatched / batched > 10.0,
            "batching speedup only {:.1}x",
            unbatched / batched
        );
    }

    #[test]
    fn gpu_occupancy_saturates() {
        let m = GpuModel::a30_like();
        assert!(m.occupancy(100) < 0.1);
        assert_eq!(m.occupancy(100_000), 1.0);
        // Above saturation, time is linear in points.
        let a = m.launch_time(10_000);
        let b = m.launch_time(20_000);
        assert!((b - a - 10_000.0 / m.peak_points_per_sec).abs() < 1e-9);
    }

    #[test]
    fn thread_cpu_time_advances_with_work() {
        let t0 = thread_cpu_time();
        let mut acc = 0.0_f64;
        for i in 0..2_000_000 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        let t1 = thread_cpu_time();
        assert!(t1 > t0, "thread CPU time did not advance");
    }

    #[test]
    fn time_is_linear_in_messages_and_bytes() {
        let m = PerfModel {
            alpha: 1e-6,
            beta: 1e9,
        };
        assert!((m.time(10, 0) - 1e-5).abs() < 1e-18);
        assert!((m.time(0, 1_000_000) - 1e-3).abs() < 1e-12);
        assert!((m.time(10, 1_000_000) - (1e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = PerfModel::mpi4py_serialized();
        // A 1 KiB message: latency term ≫ bandwidth term, matching the
        // paper's observation that CUDA-aware MPI did not help.
        let lat = m.alpha;
        let bw = 1024.0 / m.beta;
        assert!(lat > 100.0 * bw);
    }

    #[test]
    fn mfp_cost_decreases_with_more_processors() {
        let m = PerfModel::a30_cluster();
        let c1 = m.mfp_comm_cost(1000, 2048, 2, 1);
        let c16 = m.mfp_comm_cost(1000, 2048, 2, 16);
        assert!(c16 < c1, "bandwidth term must shrink with √P");
        // But not below the latency floor.
        let floor = 1000.0 * 8.0 * m.alpha;
        assert!(c16 >= floor);
    }

    #[test]
    fn mfp_cost_scales_linearly_with_iterations() {
        let m = PerfModel::infiniband_100g();
        let a = m.mfp_comm_cost(100, 512, 2, 4);
        let b = m.mfp_comm_cost(200, 512, 2, 4);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn time_for_uses_sent_counters() {
        let m = PerfModel {
            alpha: 1.0,
            beta: 8.0,
        };
        let stats = CommStats {
            msgs_sent: 2,
            bytes_sent: 16,
            ..Default::default()
        };
        assert!((m.time_for(&stats) - 4.0).abs() < 1e-12);
    }
}
