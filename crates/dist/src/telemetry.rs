//! Distributed metric aggregation: gather every rank's `mf-telemetry`
//! snapshot over the [`Communicator`] so a run emits one merged report.
//!
//! Snapshots are serialized to the registry's text format, the bytes are
//! packed into `f64` bit patterns (the only payload type the simulated
//! cluster carries), and exchanged with a ragged
//! [`allgather`](Communicator::allgather). No arithmetic ever touches the
//! packed words, so arbitrary bit patterns (including NaNs) survive.

use crate::Communicator;
use mf_telemetry::{render_report, snapshot, MetricsSnapshot};

/// Pack raw bytes into `f64` bit patterns, length-prefixed.
fn pack_bytes(bytes: &[u8]) -> Vec<f64> {
    let mut out = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    out.push(f64::from_bits(bytes.len() as u64));
    for chunk in bytes.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        out.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    out
}

/// Invert [`pack_bytes`].
fn unpack_bytes(words: &[f64]) -> Vec<u8> {
    let len = words[0].to_bits() as usize;
    let mut out = Vec::with_capacity(len);
    for w in &words[1..] {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Gather the calling thread's metrics snapshot from every rank; the
/// result is indexed by rank and identical on all ranks.
///
/// The gather itself sends messages, but those are counted *after* the
/// snapshot is taken, so the report excludes its own traffic.
pub fn gather_rank_metrics(comm: &mut Communicator) -> Vec<MetricsSnapshot> {
    let text = snapshot().serialize();
    let packed = pack_bytes(text.as_bytes());
    comm.allgather(&packed)
        .iter()
        .map(|words| {
            let bytes = unpack_bytes(words);
            let text = String::from_utf8(bytes).expect("snapshot: invalid utf-8");
            MetricsSnapshot::parse(&text).expect("snapshot: unparseable")
        })
        .collect()
}

/// Gather every rank's metrics and fold them into one snapshot:
/// counters add, gauges take the per-rank maximum, and histograms sum
/// **per-bucket counts** (not a concatenation of per-rank snapshots), so
/// quantile estimates over the merged histogram match the pooled
/// observation set. Identical on every rank; collective — call on all
/// ranks.
pub fn merge_rank_metrics(comm: &mut Communicator) -> MetricsSnapshot {
    let per_rank = gather_rank_metrics(comm);
    let mut merged = MetricsSnapshot::default();
    for snap in &per_rank {
        merged.merge(snap);
    }
    merged
}

/// Gather all ranks' metrics and print the merged report to stderr on
/// rank 0. Call at the end of a distributed region, on every rank.
pub fn print_merged_report(comm: &mut Communicator) {
    let per_rank = gather_rank_metrics(comm);
    if comm.rank() == 0 {
        eprint!("{}", render_report(&per_rank));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;
    use mf_telemetry::{histogram, Buckets, MetricValue};

    #[test]
    fn merged_histograms_pool_per_bucket_counts_across_ranks() {
        // Each rank records a disjoint slice of one observation set; the
        // merged histogram must behave as if a single rank had observed
        // the whole pool: summed bucket counts, pooled count/sum/min/max,
        // and quantile estimates that land in the pooled quantile's
        // bucket (rather than anything a concatenation of per-rank
        // snapshots would produce).
        const P: usize = 4;
        let per_rank_obs: [&[f64]; P] = [
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0, 900.0],
            &[40.0, 55.0],
            &[0.5, 7.0, 70.0, 800.0],
        ];
        let mut pooled: Vec<f64> = per_rank_obs
            .iter()
            .flat_map(|o| o.iter().copied())
            .collect();
        pooled.sort_by(f64::total_cmp);
        let buckets = Buckets::exponential(1.0, 4.0, 6);
        let bounds = buckets.bounds().to_vec();

        let merged = Cluster::run(P, move |comm| {
            // Rank threads are fresh, so thread-local values start at 0.
            let h = histogram("test.dist.merge_hist", Buckets::exponential(1.0, 4.0, 6));
            for &v in per_rank_obs[comm.rank()] {
                h.record(v);
            }
            merge_rank_metrics(comm)
        })
        .pop()
        .unwrap();

        let Some(MetricValue::Histogram(h)) = merged.get("test.dist.merge_hist") else {
            panic!("merged histogram missing");
        };
        assert_eq!(h.count, pooled.len() as u64);
        assert_eq!(h.sum, pooled.iter().sum::<f64>());
        assert_eq!((h.min, h.max), (0.5, 900.0));
        // Bucket counts equal a direct pooled histogram.
        let mut expect = vec![0u64; bounds.len() + 1];
        for &v in &pooled {
            expect[buckets.bucket_index(v)] += 1;
        }
        assert_eq!(h.counts, expect);
        // quantile_est agrees with the pooled observations: the estimate
        // falls within the bucket that contains the exact sample
        // quantile.
        for q in [0.5, 0.95, 0.99] {
            let exact =
                pooled[((q * pooled.len() as f64).ceil() as usize - 1).min(pooled.len() - 1)];
            let est = h.quantile_est(q);
            let b = buckets.bucket_index(exact);
            let lo = if b == 0 {
                h.min
            } else {
                bounds[b - 1].max(h.min)
            };
            let hi = bounds.get(b).copied().unwrap_or(h.max).min(h.max);
            assert!(
                est >= lo && est <= hi,
                "q{q}: est {est} outside bucket [{lo}, {hi}] containing exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_identical_on_every_rank() {
        let snaps = Cluster::run(3, |comm| {
            mf_telemetry::counter("test.dist.merge_counter").add((comm.rank() + 1) as u64);
            merge_rank_metrics(comm)
        });
        assert_eq!(snaps[0].counter("test.dist.merge_counter"), 6);
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[1], snaps[2]);
    }

    #[test]
    fn bytes_round_trip_through_f64_packing() {
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            assert_eq!(unpack_bytes(&pack_bytes(&bytes)), bytes, "len {len}");
        }
        // Bit patterns that would be NaN as floats survive untouched.
        let nan_bytes = f64::NAN.to_bits().to_le_bytes().to_vec();
        assert_eq!(unpack_bytes(&pack_bytes(&nan_bytes)), nan_bytes);
    }
}
