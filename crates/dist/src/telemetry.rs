//! Distributed metric aggregation: gather every rank's `mf-telemetry`
//! snapshot over the [`Communicator`] so a run emits one merged report.
//!
//! Snapshots are serialized to the registry's text format, the bytes are
//! packed into `f64` bit patterns (the only payload type the simulated
//! cluster carries), and exchanged with a ragged
//! [`allgather`](Communicator::allgather). No arithmetic ever touches the
//! packed words, so arbitrary bit patterns (including NaNs) survive.

use crate::Communicator;
use mf_telemetry::{render_report, snapshot, MetricsSnapshot};

/// Pack raw bytes into `f64` bit patterns, length-prefixed.
fn pack_bytes(bytes: &[u8]) -> Vec<f64> {
    let mut out = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    out.push(f64::from_bits(bytes.len() as u64));
    for chunk in bytes.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        out.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    out
}

/// Invert [`pack_bytes`].
fn unpack_bytes(words: &[f64]) -> Vec<u8> {
    let len = words[0].to_bits() as usize;
    let mut out = Vec::with_capacity(len);
    for w in &words[1..] {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Gather the calling thread's metrics snapshot from every rank; the
/// result is indexed by rank and identical on all ranks.
///
/// The gather itself sends messages, but those are counted *after* the
/// snapshot is taken, so the report excludes its own traffic.
pub fn gather_rank_metrics(comm: &mut Communicator) -> Vec<MetricsSnapshot> {
    let text = snapshot().serialize();
    let packed = pack_bytes(text.as_bytes());
    comm.allgather(&packed)
        .iter()
        .map(|words| {
            let bytes = unpack_bytes(words);
            let text = String::from_utf8(bytes).expect("snapshot: invalid utf-8");
            MetricsSnapshot::parse(&text).expect("snapshot: unparseable")
        })
        .collect()
}

/// Gather all ranks' metrics and print the merged report to stderr on
/// rank 0. Call at the end of a distributed region, on every rank.
pub fn print_merged_report(comm: &mut Communicator) {
    let per_rank = gather_rank_metrics(comm);
    if comm.rank() == 0 {
        eprint!("{}", render_report(&per_rank));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_through_f64_packing() {
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            assert_eq!(unpack_bytes(&pack_bytes(&bytes)), bytes, "len {len}");
        }
        // Bit patterns that would be NaN as floats survive untouched.
        let nan_bytes = f64::NAN.to_bits().to_le_bytes().to_vec();
        assert_eq!(unpack_bytes(&pack_bytes(&nan_bytes)), nan_bytes);
    }
}
