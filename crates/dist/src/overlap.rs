//! Comm/compute overlap accounting.
//!
//! Parallel-PINN efficiency is governed by the ratio of communication to
//! computation per subdomain (Shukla et al.): time a rank spends blocked
//! in halo exchanges and allreduces is time its kernels are idle unless
//! the transport can progress sends underneath compute. The simulated
//! cluster measures *wait* directly (the `comm.comm_seconds` gauge
//! accumulates wall time inside every blocking call); this module folds
//! those busy/wait intervals through the alpha–beta [`PerfModel`] to
//! estimate how much of the modeled wire time a real asynchronous
//! transport could hide under the measured compute, and reports:
//!
//! - `dist.compute_us` — accumulated busy (kernel) time this rank,
//! - `dist.comm_wait_us` — accumulated measured blocking time,
//! - `dist.comm_modeled_us` — accumulated alpha–beta wire-time estimate,
//! - `dist.overlap_ratio` — fraction of the modeled wire time hideable
//!   under compute (`min(compute, modeled) / modeled`, accumulated),
//! - `dist.iter_wait_us` — per-iteration wait histogram, for tails.
//!
//! The tracker only reads [`Communicator::stats`] deltas — it never
//! sends messages or draws fault randomness, so instrumented runs stay
//! bitwise identical to uninstrumented ones.

use crate::comm::{CommStats, Communicator};
use crate::perfmodel::PerfModel;
use std::sync::OnceLock;

/// One iteration's overlap accounting, as recorded by
/// [`OverlapTracker::observe_iteration`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverlapSample {
    /// Busy (compute) seconds this iteration.
    pub compute_s: f64,
    /// Measured seconds blocked in communication calls this iteration.
    pub comm_wait_s: f64,
    /// Alpha–beta estimate of the wire time for this iteration's
    /// traffic.
    pub modeled_comm_s: f64,
    /// Cumulative hideable fraction so far: `Σ min(compute, modeled) /
    /// Σ modeled` (1 when no traffic has been modeled yet — nothing to
    /// hide).
    pub overlap_ratio: f64,
}

struct Metrics {
    compute_us: mf_telemetry::Gauge,
    comm_wait_us: mf_telemetry::Gauge,
    comm_modeled_us: mf_telemetry::Gauge,
    overlap_ratio: mf_telemetry::Gauge,
    iter_wait_us: mf_telemetry::Histogram,
    iter_series: mf_telemetry::Series,
}

// Registry lookups lock a process-wide mutex; resolve the handles once
// instead of on every iteration.
fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        compute_us: mf_telemetry::gauge("dist.compute_us"),
        comm_wait_us: mf_telemetry::gauge("dist.comm_wait_us"),
        comm_modeled_us: mf_telemetry::gauge("dist.comm_modeled_us"),
        overlap_ratio: mf_telemetry::gauge("dist.overlap_ratio"),
        iter_wait_us: mf_telemetry::histogram(
            "dist.iter_wait_us",
            mf_telemetry::Buckets::latency_us(),
        ),
        iter_series: mf_telemetry::series("dist.iterations"),
    })
}

/// Per-rank busy/comm-wait interval tracker. Construct once per rank
/// before the iteration loop; call
/// [`observe_iteration`](OverlapTracker::observe_iteration) once per
/// iteration with that iteration's compute seconds.
pub struct OverlapTracker {
    model: PerfModel,
    base: CommStats,
    total_compute_s: f64,
    total_wait_s: f64,
    total_modeled_s: f64,
    total_hideable_s: f64,
}

impl OverlapTracker {
    /// Start tracking from `comm`'s current counters, modeling wire
    /// time with `model`.
    pub fn new(model: PerfModel, comm: &Communicator) -> Self {
        Self {
            model,
            base: comm.stats(),
            total_compute_s: 0.0,
            total_wait_s: 0.0,
            total_modeled_s: 0.0,
            total_hideable_s: 0.0,
        }
    }

    /// Record one iteration: `compute_s` is the iteration's busy time
    /// (e.g. from `thread_cpu_time` deltas around the sweeps); the
    /// communication interval is taken from the [`Communicator::stats`]
    /// delta since the previous observation. Updates the `dist.*`
    /// metrics on the calling rank and returns the sample.
    pub fn observe_iteration(&mut self, comm: &Communicator, compute_s: f64) -> OverlapSample {
        let now = comm.stats();
        let wait_s = (now.comm_seconds - self.base.comm_seconds).max(0.0);
        let msgs = now.msgs_sent.saturating_sub(self.base.msgs_sent);
        let bytes = now.bytes_sent.saturating_sub(self.base.bytes_sent);
        let modeled_s = if msgs == 0 {
            0.0
        } else {
            self.model.time(msgs, bytes)
        };
        self.base = now;

        self.total_compute_s += compute_s.max(0.0);
        self.total_wait_s += wait_s;
        self.total_modeled_s += modeled_s;
        self.total_hideable_s += compute_s.max(0.0).min(modeled_s);
        let ratio = if self.total_modeled_s > 0.0 {
            self.total_hideable_s / self.total_modeled_s
        } else {
            1.0
        };

        let m = metrics();
        m.compute_us.set(self.total_compute_s * 1e6);
        m.comm_wait_us.set(self.total_wait_s * 1e6);
        m.comm_modeled_us.set(self.total_modeled_s * 1e6);
        m.overlap_ratio.set(ratio);
        m.iter_wait_us.record(wait_s * 1e6);
        m.iter_series.mark();

        OverlapSample {
            compute_s: compute_s.max(0.0),
            comm_wait_s: wait_s,
            modeled_comm_s: modeled_s,
            overlap_ratio: ratio,
        }
    }

    /// Accumulated busy seconds observed so far.
    pub fn total_compute_s(&self) -> f64 {
        self.total_compute_s
    }

    /// Accumulated measured comm-wait seconds observed so far.
    pub fn total_comm_wait_s(&self) -> f64 {
        self.total_wait_s
    }

    /// Cumulative hideable fraction (see [`OverlapSample::overlap_ratio`]).
    pub fn overlap_ratio(&self) -> f64 {
        if self.total_modeled_s > 0.0 {
            self.total_hideable_s / self.total_modeled_s
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;

    #[test]
    fn tracker_accounts_traffic_and_sets_gauges() {
        let samples = Cluster::run(2, |comm| {
            let mut t = OverlapTracker::new(PerfModel::a30_cluster(), comm);
            // Iteration 1: an exchange with the peer plus fake compute.
            let peer = 1 - comm.rank();
            let _ = comm.exchange(&[(peer, vec![1.0; 64])], 0);
            let s1 = t.observe_iteration(comm, 1e-3);
            // Iteration 2: no traffic at all.
            let s2 = t.observe_iteration(comm, 2e-3);
            (s1, s2)
        });
        for (s1, s2) in samples {
            assert!(s1.modeled_comm_s > 0.0, "exchange must be modeled");
            assert!(s1.comm_wait_s >= 0.0);
            // Modeled alpha-beta time for one small message is far below
            // the 1 ms of compute, so it is fully hideable.
            assert!((s1.overlap_ratio - 1.0).abs() < 1e-9, "{s1:?}");
            assert_eq!(s2.modeled_comm_s, 0.0, "quiet iteration models zero");
            assert_eq!(s2.overlap_ratio, s1.overlap_ratio);
        }
    }

    #[test]
    fn gauges_reflect_cumulative_totals() {
        Cluster::run(1, |comm| {
            let mut t = OverlapTracker::new(PerfModel::infiniband_100g(), comm);
            t.observe_iteration(comm, 0.5e-3);
            t.observe_iteration(comm, 0.25e-3);
            let snap = mf_telemetry::snapshot();
            let compute = snap.gauge("dist.compute_us");
            assert!((compute - 750.0).abs() < 1e-6, "compute_us = {compute}");
            assert_eq!(snap.gauge("dist.overlap_ratio"), 1.0);
            assert!((t.total_compute_s() - 0.75e-3).abs() < 1e-12);
        });
    }
}
