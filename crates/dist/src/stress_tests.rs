//! Property and stress tests of the simulated communicator: random
//! message schedules, interleaved collectives, and the invariants the
//! distributed MFP depends on (FIFO per channel, tag matching, collective
//! consistency under arbitrary rank counts).

use crate::{CartesianGrid, Cluster, Direction, RankOrder};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ring allreduce matches the sequential reduction for arbitrary rank
    /// counts and lengths (including len < P and len = 0 handled
    /// elsewhere).
    #[test]
    fn allreduce_random_shapes(p in 2usize..7, n in 1usize..80, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        let expect: Vec<f64> =
            (0..n).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        let inputs_ref = &inputs;
        let outs = Cluster::run(p, move |c| {
            let mut buf = inputs_ref[c.rank()].clone();
            c.allreduce_sum(&mut buf);
            buf
        });
        for o in outs {
            for (a, e) in o.iter().zip(&expect) {
                prop_assert!((a - e).abs() < 1e-9);
            }
        }
    }

    /// Messages with distinct tags can be received in any order; FIFO
    /// holds per (source, tag).
    #[test]
    fn tag_matching_is_order_independent(perm_seed in 0u64..1000) {
        let n_msgs = 6u64;
        let outs = Cluster::run(2, move |c| {
            if c.rank() == 0 {
                // Send messages tag 0..6, each carrying its tag twice.
                for t in 0..n_msgs {
                    c.send(1, t, &[t as f64, t as f64 + 0.5]);
                }
                Vec::new()
            } else {
                // Receive in a pseudo-random permutation.
                let mut order: Vec<u64> = (0..n_msgs).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(perm_seed);
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                order
                    .iter()
                    .map(|&t| {
                        let m = c.recv(0, t);
                        (t, m)
                    })
                    .map(|(t, m)| {
                        assert_eq!(m, vec![t as f64, t as f64 + 0.5]);
                        t as f64
                    })
                    .collect()
            }
        });
        prop_assert_eq!(outs[1].len(), n_msgs as usize);
    }

    /// Broadcast and reduce are inverse-consistent for random roots.
    #[test]
    fn broadcast_reduce_consistency(p in 2usize..7, root in 0usize..7, seed in 0u64..100) {
        let root = root % p;
        let outs = Cluster::run(p, move |c| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed + c.rank() as u64);
            let local: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // Everyone contributes; root learns the sum; root broadcasts.
            let mut acc = local.clone();
            c.reduce_sum_to(root, &mut acc);
            let mut total = if c.rank() == root { acc } else { Vec::new() };
            c.broadcast(root, &mut total);
            (local, total)
        });
        // Reference sum.
        let expect: Vec<f64> = (0..5)
            .map(|i| outs.iter().map(|(l, _)| l[i]).sum())
            .collect();
        for (_, total) in &outs {
            for (a, e) in total.iter().zip(&expect) {
                prop_assert!((a - e).abs() < 1e-9, "{a} vs {e}");
            }
        }
    }
}

#[test]
fn interleaved_halo_and_collectives_many_rounds() {
    // The distributed MFP's traffic pattern, stress-tested: every rank
    // exchanges with its grid neighbors and joins an allreduce, 100
    // rounds, with payload sizes varying per round.
    let grid = CartesianGrid::new(3, 3, RankOrder::RowMajor);
    let grid_ref = &grid;
    let outs = Cluster::run(9, move |c| {
        let rank = c.rank();
        let neighbors = grid_ref.neighbors(rank);
        let mut checksum = 0.0;
        for round in 0..100u64 {
            let len = 1 + (round as usize % 7);
            let outgoing: Vec<(usize, Vec<f64>)> = neighbors
                .iter()
                .map(|&(_, nb)| (nb, vec![rank as f64 + round as f64; len]))
                .collect();
            let incoming = c.exchange(&outgoing, round);
            for ((_, nb), (peer, data)) in neighbors.iter().zip(&incoming) {
                assert_eq!(nb, peer);
                assert_eq!(data.len(), len);
                assert_eq!(data[0], *peer as f64 + round as f64);
                checksum += data[0];
            }
            let s = c.allreduce_scalar(1.0);
            assert_eq!(s, 9.0);
        }
        checksum
    });
    // Symmetric pattern: total checksum is the same computed either way.
    let total: f64 = outs.iter().sum();
    assert!(total > 0.0);
}

#[test]
fn opposite_direction_band_identities() {
    // The halo protocol depends on: my neighbor in direction d sees me as
    // its neighbor in d.opposite(), for every rank and direction.
    for order in [RankOrder::RowMajor, RankOrder::Morton] {
        let grid = CartesianGrid::new(4, 4, order);
        for rank in 0..grid.size() {
            for (d, nb) in grid.neighbors(rank) {
                assert_eq!(grid.neighbor(nb, d.opposite()), Some(rank));
            }
        }
    }
}

#[test]
fn all_directions_have_unique_offsets() {
    let mut seen = std::collections::HashSet::new();
    for d in Direction::ALL {
        assert!(seen.insert(d.offset()), "duplicate offset for {d:?}");
    }
    assert_eq!(seen.len(), 8);
}
