//! 2-D Cartesian processor grids with 8-neighbor stencils.
//!
//! §4.2 assigns processors to a 2-D grid "in a row-wise scan pattern" and
//! notes that locality-preserving space-filling curves (Morton order) are a
//! promising alternative. Both placements are implemented; the distributed
//! MFP takes the grid as a parameter so the ablation bench can compare
//! them.

/// How ranks are laid out on the processor grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankOrder {
    /// Rank `r` at `(row, col) = (r / px, r % px)` — the paper's default.
    RowMajor,
    /// Ranks follow the Morton (Z-order) curve over the grid cells,
    /// improving locality between numerically adjacent ranks.
    Morton,
}

/// The eight stencil directions of the halo exchange (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Up (+row).
    North,
    /// Down (−row).
    South,
    /// Right (+col).
    East,
    /// Left (−col).
    West,
    /// Up-right diagonal.
    NorthEast,
    /// Up-left diagonal.
    NorthWest,
    /// Down-right diagonal.
    SouthEast,
    /// Down-left diagonal.
    SouthWest,
}

impl Direction {
    /// All eight directions.
    pub const ALL: [Direction; 8] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::NorthEast,
        Direction::NorthWest,
        Direction::SouthEast,
        Direction::SouthWest,
    ];

    /// `(d_row, d_col)` offset of this direction.
    pub fn offset(&self) -> (isize, isize) {
        match self {
            Direction::North => (1, 0),
            Direction::South => (-1, 0),
            Direction::East => (0, 1),
            Direction::West => (0, -1),
            Direction::NorthEast => (1, 1),
            Direction::NorthWest => (1, -1),
            Direction::SouthEast => (-1, 1),
            Direction::SouthWest => (-1, -1),
        }
    }

    /// The direction a neighbor uses to refer back to us.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::NorthEast => Direction::SouthWest,
            Direction::NorthWest => Direction::SouthEast,
            Direction::SouthEast => Direction::NorthWest,
            Direction::SouthWest => Direction::NorthEast,
        }
    }

    /// True for the four diagonal directions (red halo lines in Fig. 4).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Direction::NorthEast
                | Direction::NorthWest
                | Direction::SouthEast
                | Direction::SouthWest
        )
    }
}

/// A `py × px` grid of ranks.
#[derive(Clone, Debug)]
pub struct CartesianGrid {
    py: usize,
    px: usize,
    /// cell (row-major index) → rank
    rank_of_cell: Vec<usize>,
    /// rank → (row, col)
    coords_of_rank: Vec<(usize, usize)>,
}

impl CartesianGrid {
    /// Build a grid with the given rank placement.
    pub fn new(py: usize, px: usize, order: RankOrder) -> Self {
        assert!(py >= 1 && px >= 1, "CartesianGrid: empty grid");
        let n = py * px;
        let mut coords_of_rank = Vec::with_capacity(n);
        match order {
            RankOrder::RowMajor => {
                for r in 0..n {
                    coords_of_rank.push((r / px, r % px));
                }
            }
            RankOrder::Morton => {
                // Sort cells by Morton code; rank i gets the i-th cell.
                let mut cells: Vec<(u64, (usize, usize))> = (0..py)
                    .flat_map(|row| (0..px).map(move |col| (morton2(row, col), (row, col))))
                    .collect();
                cells.sort_by_key(|&(code, _)| code);
                coords_of_rank = cells.into_iter().map(|(_, rc)| rc).collect();
            }
        }
        let mut rank_of_cell = vec![0; n];
        for (rank, &(row, col)) in coords_of_rank.iter().enumerate() {
            rank_of_cell[row * px + col] = rank;
        }
        Self {
            py,
            px,
            rank_of_cell,
            coords_of_rank,
        }
    }

    /// Nearly square factorization of `p` ranks (√P×√P when P is a
    /// perfect square, else the most balanced `py×px = p`).
    pub fn square_for(p: usize, order: RankOrder) -> Self {
        assert!(p >= 1);
        let mut py = (p as f64).sqrt() as usize;
        while !p.is_multiple_of(py) {
            py -= 1;
        }
        Self::new(py, p / py, order)
    }

    /// Grid height (rows of processors).
    pub fn py(&self) -> usize {
        self.py
    }

    /// Grid width (columns of processors).
    pub fn px(&self) -> usize {
        self.px
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.py * self.px
    }

    /// `(row, col)` of a rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        self.coords_of_rank[rank]
    }

    /// Rank at a grid cell.
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.py && col < self.px,
            "rank_at: ({row},{col}) out of grid"
        );
        self.rank_of_cell[row * self.px + col]
    }

    /// Neighbor rank in a direction, if inside the grid.
    pub fn neighbor(&self, rank: usize, dir: Direction) -> Option<usize> {
        let (row, col) = self.coords_of(rank);
        let (dr, dc) = dir.offset();
        let nr = row as isize + dr;
        let nc = col as isize + dc;
        if nr < 0 || nc < 0 || nr >= self.py as isize || nc >= self.px as isize {
            None
        } else {
            Some(self.rank_at(nr as usize, nc as usize))
        }
    }

    /// All existing stencil neighbors `(direction, rank)` of a rank.
    pub fn neighbors(&self, rank: usize) -> Vec<(Direction, usize)> {
        Direction::ALL
            .iter()
            .filter_map(|&d| self.neighbor(rank, d).map(|r| (d, r)))
            .collect()
    }
}

/// Interleave the low 32 bits of `row` and `col` into a Morton code.
fn morton2(row: usize, col: usize) -> u64 {
    fn spread(mut x: u64) -> u64 {
        x &= 0xFFFF_FFFF;
        x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }
    (spread(row as u64) << 1) | spread(col as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let g = CartesianGrid::new(3, 3, RankOrder::RowMajor);
        assert_eq!(g.coords_of(0), (0, 0));
        assert_eq!(g.coords_of(4), (1, 1));
        assert_eq!(g.rank_at(2, 1), 7);
    }

    #[test]
    fn interior_rank_has_eight_neighbors() {
        let g = CartesianGrid::new(3, 3, RankOrder::RowMajor);
        let n = g.neighbors(4); // center of 3x3
        assert_eq!(n.len(), 8);
        let ranks: Vec<usize> = n.iter().map(|&(_, r)| r).collect();
        for r in [0, 1, 2, 3, 5, 6, 7, 8] {
            assert!(ranks.contains(&r));
        }
    }

    #[test]
    fn corner_rank_has_three_neighbors() {
        let g = CartesianGrid::new(3, 3, RankOrder::RowMajor);
        assert_eq!(g.neighbors(0).len(), 3);
        assert_eq!(g.neighbors(8).len(), 3);
    }

    #[test]
    fn edge_rank_has_five_neighbors() {
        let g = CartesianGrid::new(3, 3, RankOrder::RowMajor);
        assert_eq!(g.neighbors(1).len(), 5);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let g = CartesianGrid::new(4, 5, RankOrder::RowMajor);
        for rank in 0..g.size() {
            for (dir, nb) in g.neighbors(rank) {
                assert_eq!(
                    g.neighbor(nb, dir.opposite()),
                    Some(rank),
                    "asymmetric: {rank} --{dir:?}--> {nb}"
                );
            }
        }
    }

    #[test]
    fn morton_is_a_bijection() {
        let g = CartesianGrid::new(4, 4, RankOrder::Morton);
        let mut seen = std::collections::HashSet::new();
        for rank in 0..16 {
            let c = g.coords_of(rank);
            assert!(seen.insert(c));
            assert_eq!(g.rank_at(c.0, c.1), rank);
        }
    }

    #[test]
    fn morton_first_quad_stays_local() {
        // On a 4x4 grid, Z-order visits the 2x2 sub-block first.
        let g = CartesianGrid::new(4, 4, RankOrder::Morton);
        let first4: std::collections::HashSet<_> = (0..4).map(|r| g.coords_of(r)).collect();
        let expect: std::collections::HashSet<_> =
            [(0, 0), (0, 1), (1, 0), (1, 1)].into_iter().collect();
        assert_eq!(first4, expect);
    }

    #[test]
    fn morton_improves_average_neighbor_rank_distance() {
        // Locality metric: mean |rank - neighbor_rank| over all pairs.
        let metric = |order: RankOrder| {
            let g = CartesianGrid::new(8, 8, order);
            let mut total = 0usize;
            let mut count = 0usize;
            for rank in 0..g.size() {
                for (_, nb) in g.neighbors(rank) {
                    total += rank.abs_diff(nb);
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        assert!(
            metric(RankOrder::Morton) < metric(RankOrder::RowMajor),
            "Morton should reduce average rank distance"
        );
    }

    #[test]
    fn square_for_prefers_balanced_factorizations() {
        let g = CartesianGrid::square_for(16, RankOrder::RowMajor);
        assert_eq!((g.py(), g.px()), (4, 4));
        let g = CartesianGrid::square_for(8, RankOrder::RowMajor);
        assert_eq!((g.py(), g.px()), (2, 4));
        let g = CartesianGrid::square_for(7, RankOrder::RowMajor);
        assert_eq!((g.py(), g.px()), (1, 7));
    }

    #[test]
    fn direction_opposites_compose_to_identity() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (a, b) = d.offset();
            let (oa, ob) = d.opposite().offset();
            assert_eq!((a + oa, b + ob), (0, 0));
        }
    }
}
