//! `mf-faultsim`: deterministic fault injection for the simulated cluster.
//!
//! A seeded [`FaultPlan`] wraps every link of the cluster with message
//! drops, duplication, delivery delays, and rank-crash injection, all
//! behind the existing [`Communicator`](crate::Communicator) API. The
//! recovery machinery lives here too:
//!
//! * every point-to-point message carries a per-link sequence number and
//!   is kept in a shared **retransmit log** until the receiver
//!   acknowledges it, so a receive timeout can replay lost messages
//!   (NACK/retry semantics) without involving the — possibly busy —
//!   sender thread, exactly like a NIC-level reliable transport;
//! * receivers **deduplicate** by sequence number, so retransmits and
//!   injected duplicates deliver exactly once;
//! * a per-rank **failure flag** turns a crashed or panicking rank into a
//!   typed [`CommError::RankFailed`] on every peer instead of a deadlock.
//!
//! Drop/duplicate/delay decisions are drawn from a per-link splitmix64
//! stream seeded from `FaultPlan::seed`, advanced once per `send` in the
//! sender's program order — so the set of dropped first transmissions is
//! a pure function of the seed, independent of thread scheduling.
//! Retransmissions travel the reliable path (they model a NACK-triggered
//! resend over a control channel), which bounds recovery: any message in
//! the log is delivered after at most one retry round.

use mf_telemetry::{counter, Counter};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Receive timeout + bounded-retry policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// How long a receiver waits for a matching message before it
    /// requests a retransmission of the link's unacknowledged messages.
    pub timeout: Duration,
    /// Retransmission rounds before the receive fails with
    /// [`CommError::Timeout`].
    pub max_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            timeout: Duration::from_millis(100),
            max_retries: 8,
        }
    }
}

/// Crash injection: rank `rank` panics once it has issued
/// `after_sends` point-to-point messages (collectives count their
/// internal messages), simulating a mid-iteration node failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashAt {
    /// The rank that dies.
    pub rank: usize,
    /// Messages the rank sends before dying.
    pub after_sends: usize,
}

/// A seeded description of the faults to inject into a cluster run.
///
/// The default plan injects nothing and detects failures only; it is what
/// [`Cluster::run`](crate::Cluster::run) uses.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-link fault streams.
    pub seed: u64,
    /// Probability that a first transmission is dropped.
    pub drop_rate: f64,
    /// Probability that a delivered message is duplicated.
    pub dup_rate: f64,
    /// Probability that a send stalls before delivery.
    pub delay_rate: f64,
    /// Maximum stall, in microseconds (uniform in `0..=max`).
    pub delay_max_us: u64,
    /// Optional injected rank crash.
    pub crash: Option<CrashAt>,
    /// Timeout/retry policy used by every blocking receive while this
    /// plan is active.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: lossless delivery, failure detection only.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay_max_us: 0,
            crash: None,
            retry: RetryPolicy::default(),
        }
    }

    /// A lossy plan: drop `drop_rate` of first transmissions, recover via
    /// the default retry policy.
    pub fn lossy(seed: u64, drop_rate: f64) -> Self {
        Self {
            seed,
            drop_rate,
            ..Self::none()
        }
    }

    /// Whether transmissions themselves can be perturbed (drop /
    /// duplicate / delay). Crash-only plans are not lossy: nothing sent
    /// is lost, so receives wait without a retry budget.
    pub fn is_lossy(&self) -> bool {
        self.drop_rate > 0.0 || self.dup_rate > 0.0 || self.delay_rate > 0.0
    }

    /// Whether any fault is injected (as opposed to pure detection).
    pub fn is_active(&self) -> bool {
        self.is_lossy() || self.crash.is_some()
    }
}

/// A typed communication failure, carrying the rank it implicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the policy's timeout and retry
    /// budget.
    Timeout {
        /// Expected source rank.
        src: usize,
        /// Expected message tag.
        tag: u64,
        /// Retransmission rounds that were attempted.
        retries: usize,
    },
    /// A rank in the job crashed or panicked.
    RankFailed {
        /// The failed rank.
        rank: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { src, tag, retries } => write!(
                f,
                "timed out waiting for message (src {src}, tag {tag}) after {retries} retries"
            ),
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
        }
    }
}

impl std::error::Error for CommError {}

/// Error from [`Cluster::try_run`](crate::Cluster::try_run): one or more
/// ranks panicked or crashed. Failures are listed in the order they were
/// observed, so the first entry is the originating fault and later ones
/// are cascades (peers erroring out with [`CommError::RankFailed`]).
#[derive(Debug)]
pub struct ClusterError {
    /// `(rank, panic message)` in observation order.
    pub failed: Vec<(usize, String)>,
}

impl ClusterError {
    /// The first-failing rank (the root cause).
    pub fn origin(&self) -> usize {
        self.failed.first().map(|(r, _)| *r).unwrap_or(usize::MAX)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.failed.as_slice() {
            [] => write!(f, "cluster failed with no recorded rank"),
            [(rank, msg), rest @ ..] => {
                write!(f, "rank {rank} failed: {msg}")?;
                if !rest.is_empty() {
                    write!(f, " ({} rank(s) failed in cascade)", rest.len())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Telemetry counters of the fault layer (`fault.*`), one handle set per
/// thread.
#[derive(Clone)]
pub(crate) struct FaultCounters {
    pub dropped: Counter,
    pub duplicated: Counter,
    pub delayed: Counter,
    pub retries: Counter,
    pub timeouts: Counter,
    pub dedup_discarded: Counter,
}

impl FaultCounters {
    pub(crate) fn new() -> Self {
        Self {
            dropped: counter("fault.dropped"),
            duplicated: counter("fault.duplicated"),
            delayed: counter("fault.delayed"),
            retries: counter("fault.retries"),
            timeouts: counter("fault.timeouts"),
            dedup_discarded: counter("fault.dedup_discarded"),
        }
    }
}

/// splitmix64 — a tiny, dependency-free deterministic stream.
#[derive(Clone, Debug)]
pub(crate) struct Splitmix {
    state: u64,
}

impl Splitmix {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-directed-link shared state: the sequence counter, the retransmit
/// log of unacknowledged messages, and the link's fault stream.
pub(crate) struct Link {
    pub next_seq: u64,
    /// seq → (tag, payload) for every sent-but-unacknowledged message.
    pub unacked: BTreeMap<u64, (u64, Vec<f64>)>,
    pub rng: Splitmix,
}

/// Shared fault/recovery state of one cluster run.
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    /// `links[src * size + dst]`.
    pub links: Vec<Mutex<Link>>,
    /// First rank to fail (`usize::MAX` while all are healthy); checked
    /// by every blocked receive so peers report the root cause, not a
    /// cascade.
    pub origin: AtomicUsize,
    /// Panic messages in observation order.
    pub panics: Mutex<Vec<(usize, String)>>,
    /// Per-rank count of issued point-to-point sends (crash trigger).
    pub sends_issued: Vec<AtomicUsize>,
}

impl FaultState {
    pub(crate) fn new(size: usize, plan: FaultPlan) -> Self {
        let links = (0..size * size)
            .map(|idx| {
                Mutex::new(Link {
                    next_seq: 0,
                    unacked: BTreeMap::new(),
                    // Decorrelate links; golden-ratio offset per link id.
                    rng: Splitmix::new(
                        plan.seed ^ (idx as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                    ),
                })
            })
            .collect();
        Self {
            plan,
            links,
            origin: AtomicUsize::new(usize::MAX),
            panics: Mutex::new(Vec::new()),
            sends_issued: (0..size).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    pub(crate) fn link(&self, src: usize, dst: usize, size: usize) -> MutexGuard<'_, Link> {
        lock_robust(&self.links[src * size + dst])
    }

    /// The first-failing rank, if any rank has failed.
    pub(crate) fn any_failed(&self) -> Option<usize> {
        let origin = self.origin.load(Ordering::Acquire);
        (origin != usize::MAX).then_some(origin)
    }

    /// Record a rank failure: the message first (so cascades always sort
    /// after their origin), then the flag peers poll. Only the first
    /// failure becomes the origin.
    pub(crate) fn mark_failed(&self, rank: usize, msg: String) {
        lock_robust(&self.panics).push((rank, msg));
        let _ =
            self.origin
                .compare_exchange(usize::MAX, rank, Ordering::Release, Ordering::Relaxed);
    }
}

/// Lock a mutex, recovering from poisoning (a rank may panic while its
/// peers keep running; their view of the shared state stays usable).
pub(crate) fn lock_robust<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A sense-reversing barrier whose waiters poll the failure flags, so a
/// dead rank turns `wait` into an error instead of a permanent hang.
pub(crate) struct FaultBarrier {
    size: usize,
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl FaultBarrier {
    pub(crate) fn new(size: usize) -> Self {
        Self {
            size,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self, faults: &FaultState, tick: Duration) -> Result<(), CommError> {
        let mut guard = lock_robust(&self.state);
        guard.0 += 1;
        if guard.0 == self.size {
            guard.0 = 0;
            guard.1 += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let generation = guard.1;
        loop {
            let (g, _timeout) = self
                .cv
                .wait_timeout(guard, tick)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
            if guard.1 != generation {
                return Ok(());
            }
            if let Some(rank) = faults.any_failed() {
                return Err(CommError::RankFailed { rank });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = Splitmix::new(7);
        let mut b = Splitmix::new(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mean: f64 = (0..1000).map(|_| a.unit()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn plan_activity_flag() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::lossy(1, 0.1).is_active());
        let crash = FaultPlan {
            crash: Some(CrashAt {
                rank: 0,
                after_sends: 1,
            }),
            ..FaultPlan::none()
        };
        assert!(crash.is_active());
    }

    #[test]
    fn cluster_error_reports_origin_first() {
        let e = ClusterError {
            failed: vec![(2, "injected crash".into()), (0, "rank 2 failed".into())],
        };
        assert_eq!(e.origin(), 2);
        let msg = e.to_string();
        assert!(msg.starts_with("rank 2 failed: injected crash"), "{msg}");
        assert!(msg.contains("1 rank(s) failed in cascade"), "{msg}");
    }

    #[test]
    fn comm_error_messages_name_the_rank() {
        let t = CommError::Timeout {
            src: 3,
            tag: 9,
            retries: 2,
        };
        assert!(t.to_string().contains("src 3"));
        let f = CommError::RankFailed { rank: 5 };
        assert!(f.to_string().contains("rank 5"));
    }
}
