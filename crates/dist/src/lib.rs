#![warn(missing_docs)]

//! Simulated distributed runtime: the repository's stand-in for
//! CUDA-aware MPI on a GPU cluster.
//!
//! The paper's distributed algorithms (data-parallel training with a fused
//! allreduce, and the halo-exchanging Mosaic Flow predictor) are expressed
//! against a small message-passing interface. Here every *rank* is an OS
//! thread and every link is a crossbeam channel:
//!
//! * [`Cluster::run`] spawns one thread per rank and hands each a
//!   [`Communicator`],
//! * point-to-point [`Communicator::send`]/[`Communicator::recv`] with
//!   tags and out-of-order buffering (MPI semantics),
//! * collectives: ring [`Communicator::allreduce_sum`] (reduce-scatter +
//!   allgather, the same algorithm NCCL/MPI use), [`Communicator::allgather`],
//!   [`Communicator::barrier`],
//! * [`CartesianGrid`] — the 2-D processor grid of §4.2 with row-scan or
//!   Morton rank placement and 8-neighbor stencils,
//! * [`CommStats`] counters and the [`PerfModel`] alpha–beta model of
//!   §4.3, which converts counted messages/bytes into modeled wall-clock
//!   on paper-like hardware (Table 2 presets).
//!
//! Because the host running this reproduction has a single core, scaling
//! results are reported as *measured per-rank compute + modeled
//! communication*; the message traffic itself is real and verified.

mod comm;
mod fault;
#[cfg(test)]
mod fault_tests;
mod overlap;
mod perfmodel;
#[cfg(test)]
mod stress_tests;
mod telemetry;
mod topology;

pub use comm::{Cluster, CommStats, Communicator, ALLREDUCE_RD_MAX_ELEMS};
pub use fault::{ClusterError, CommError, CrashAt, FaultPlan, RetryPolicy};
pub use overlap::{OverlapSample, OverlapTracker};
pub use perfmodel::{thread_cpu_time, GpuModel, PerfModel};
pub use telemetry::{gather_rank_metrics, merge_rank_metrics, print_merged_report};
pub use topology::{CartesianGrid, Direction, RankOrder};
