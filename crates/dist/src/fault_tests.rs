//! Tests of the `mf-faultsim` layer: fail-fast failure detection,
//! deterministic fault streams, exactly-once recovery, and the
//! zero-fault equivalence guarantee (a `FaultPlan` with all rates at
//! zero is observationally identical to the lossless cluster).

use crate::fault::{CommError, CrashAt, FaultPlan, RetryPolicy};
use crate::{Cluster, Communicator};
use mf_telemetry::counter;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Tight retry budget so drop-recovery tests run in milliseconds.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: Duration::from_millis(20),
        max_retries: 100,
    }
}

#[test]
fn panicking_rank_fails_fast_and_names_the_rank() {
    let t0 = Instant::now();
    let err = Cluster::try_run(4, FaultPlan::none(), |c| {
        if c.rank() == 2 {
            panic!("boom at rank 2");
        }
        // Peers block on a message the dead rank never sends; the
        // failure flag must unblock them within a poll tick.
        c.recv(2, 9)
    })
    .unwrap_err();
    assert_eq!(err.origin(), 2, "{err}");
    assert!(err.failed[0].1.contains("boom"), "{err}");
    // Cascaded ranks report the failed peer, not themselves, as cause.
    for (rank, msg) in &err.failed[1..] {
        assert_ne!(*rank, 2);
        assert!(msg.contains("rank 2 failed"), "rank {rank}: {msg}");
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "failure detection took {:?}",
        t0.elapsed()
    );
}

#[test]
fn cluster_run_panic_message_names_origin_rank() {
    let result = std::panic::catch_unwind(|| {
        Cluster::run(3, |c| {
            if c.rank() == 1 {
                panic!("injected bug");
            }
            c.barrier();
        })
    });
    let payload = result.unwrap_err();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("rank 1"), "panic message: {msg}");
    assert!(msg.contains("injected bug"), "panic message: {msg}");
}

#[test]
fn injected_crash_surfaces_typed_error_with_rank_id() {
    let plan = FaultPlan {
        crash: Some(CrashAt {
            rank: 1,
            after_sends: 3,
        }),
        ..FaultPlan::none()
    };
    let err = Cluster::try_run(4, plan, |c| {
        // Ring allreduce: every rank sends 6 messages, so rank 1 dies
        // mid-collective.
        let mut buf = vec![c.rank() as f64; 16];
        c.allreduce_sum(&mut buf);
        buf
    })
    .unwrap_err();
    assert_eq!(err.origin(), 1, "{err}");
    assert!(err.failed[0].1.contains("injected crash"), "{err}");
}

#[test]
fn recv_result_reports_failed_peer() {
    let outs = Cluster::try_run(3, FaultPlan::none(), |c| {
        if c.rank() == 0 {
            // Die without sending; peers must see RankFailed(0), then
            // return normally (no cascade).
            panic!("rank 0 dies");
        }
        c.recv_result(0, 1)
    });
    let err = outs.unwrap_err();
    assert_eq!(err.origin(), 0);
    // Only rank 0 actually failed: ranks 1 and 2 handled the error.
    assert_eq!(err.failed.len(), 1, "{err}");
}

#[test]
fn collectives_under_drops_recover_bitwise_identical_results() {
    let p = 4;
    let mk_inputs = || -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        (0..p)
            .map(|_| (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    };
    let body = |c: &mut Communicator, inputs: &[Vec<f64>]| {
        let mut buf = inputs[c.rank()].clone();
        c.allreduce_sum(&mut buf);
        let gathered = c.allgather(&buf[..4]);
        let mut bcast = if c.rank() == 2 {
            buf[..3].to_vec()
        } else {
            vec![]
        };
        c.broadcast(2, &mut bcast);
        (buf, gathered, bcast)
    };
    let inputs = mk_inputs();
    let clean = Cluster::run(p, |c| body(c, &inputs));
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan {
            retry: fast_retry(),
            ..FaultPlan::lossy(seed, 0.15)
        };
        let faulty = Cluster::try_run(p, plan, |c| body(c, &inputs)).unwrap();
        // Retransmission delivers the same payloads, so results are not
        // merely close — they are bitwise equal to the fault-free run.
        for (a, b) in clean.iter().zip(&faulty) {
            assert_eq!(a, b, "seed {seed}");
        }
    }
}

#[test]
fn fault_stream_is_seed_deterministic() {
    let run = || {
        let plan = FaultPlan {
            dup_rate: 0.1,
            retry: fast_retry(),
            ..FaultPlan::lossy(42, 0.2)
        };
        Cluster::try_run(3, plan, |c| {
            let mut buf = vec![c.rank() as f64; 32];
            c.allreduce_sum(&mut buf);
            let dropped = counter("fault.dropped").get();
            let duplicated = counter("fault.duplicated").get();
            (buf, dropped, duplicated)
        })
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give the same faults and results");
    let total_dropped: u64 = a.iter().map(|(_, d, _)| d).sum();
    assert!(total_dropped > 0, "20% drop over 24 sends should drop some");
}

#[test]
fn duplicates_are_discarded() {
    let plan = FaultPlan {
        seed: 5,
        dup_rate: 1.0,
        retry: fast_retry(),
        ..FaultPlan::none()
    };
    let outs = Cluster::try_run(2, plan, |c| {
        if c.rank() == 0 {
            for i in 0..10u64 {
                c.send(1, i, &[i as f64]);
            }
            // Final marker so the receiver can drain the last duplicate
            // (links deliver in sequence order).
            c.send(1, 100, &[0.0]);
            0
        } else {
            for i in 0..10u64 {
                assert_eq!(c.recv(0, i), vec![i as f64]);
            }
            let _ = c.recv(0, 100);
            counter("fault.dedup_discarded").get()
        }
    })
    .unwrap();
    // Every payload message was sent twice; exactly one copy of each
    // survived (the marker's own duplicate may still be in flight).
    assert!(outs[1] >= 10, "dedup_discarded = {}", outs[1]);
}

#[test]
fn exchange_deadline_times_out_then_tombstones_the_slot() {
    let outs = Cluster::try_run(2, FaultPlan::none(), |c| {
        if c.rank() == 0 {
            // Miss the peer's round-1 deadline by an order of magnitude.
            std::thread::sleep(Duration::from_millis(120));
            c.send(1, 7, &[1.0]);
            let got1 = c.recv(1, 7);
            // Round 2 on a fresh tag proceeds normally.
            c.send(1, 8, &[2.0]);
            let got2 = c.recv(1, 8);
            (got1, got2)
        } else {
            let mut round1 = c.exchange_deadline(&[(0, vec![9.0])], 7, Duration::from_millis(15));
            let (_, r1) = round1.pop().unwrap();
            assert!(
                matches!(r1, Err(CommError::Timeout { src: 0, tag: 7, .. })),
                "expected timeout, got {r1:?}"
            );
            assert!(counter("fault.timeouts").get() >= 1);
            // The late round-1 message must be discarded, not delivered
            // into round 2.
            let mut round2 = c.exchange(&[(0, vec![10.0])], 8);
            let (_, got2) = round2.pop().unwrap();
            (vec![9.0], got2)
        }
    })
    .unwrap();
    assert_eq!(outs[0].0, vec![9.0]);
    assert_eq!(outs[1].1, vec![2.0]);
}

#[test]
fn recv_timeout_is_soft_late_message_still_matches() {
    let outs = Cluster::try_run(2, FaultPlan::none(), |c| {
        if c.rank() == 0 {
            std::thread::sleep(Duration::from_millis(60));
            c.send(1, 3, &[4.0]);
            Vec::new()
        } else {
            // First attempt times out; unlike exchange_deadline, the slot
            // is not tombstoned, so a retry sees the late arrival.
            let first = c.recv_timeout(0, 3, Duration::from_millis(5));
            assert!(first.is_err(), "{first:?}");
            c.recv(0, 3)
        }
    })
    .unwrap();
    assert_eq!(outs[1], vec![4.0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// With every fault rate at zero, the fault-wrapped cluster produces
    /// the exact per-rank message/byte counts of the plain cluster for
    /// arbitrary collectives — the counters-match-PR1 guarantee.
    #[test]
    fn zero_fault_plan_preserves_exact_counts(
        p in 2usize..6,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let body = move |c: &mut Communicator| {
            let mut buf = vec![c.rank() as f64; n];
            c.allreduce_sum(&mut buf);
            let _ = c.allgather(&buf[..1.min(n)]);
            // Symmetric ring exchange (each rank talks to both
            // neighbors, which coincide at p = 2).
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let _ = c.exchange(&[(right, vec![0.5; 3]), (left, vec![0.25; 2])], 1);
            c.stats()
        };
        let plain = Cluster::run(p, body);
        let plan = FaultPlan { seed, ..FaultPlan::none() };
        let wrapped = Cluster::try_run(p, plan, body).unwrap();
        for (a, b) in plain.iter().zip(&wrapped) {
            prop_assert_eq!(a.msgs_sent, b.msgs_sent);
            prop_assert_eq!(a.bytes_sent, b.bytes_sent);
            prop_assert_eq!(a.msgs_recv, b.msgs_recv);
            prop_assert_eq!(a.bytes_recv, b.bytes_recv);
        }
    }

    /// Under drops and duplication, retried point-to-point delivery is
    /// exactly-once and in order, for any seed.
    #[test]
    fn lossy_p2p_delivery_is_exactly_once(
        seed in 0u64..500,
        drop_pm in 0usize..350,
        dup_pm in 0usize..350,
    ) {
        let n_msgs = 20u64;
        let plan = FaultPlan {
            seed,
            drop_rate: drop_pm as f64 / 1000.0,
            dup_rate: dup_pm as f64 / 1000.0,
            retry: fast_retry(),
            ..FaultPlan::none()
        };
        let outs = Cluster::try_run(2, plan, move |c| {
            if c.rank() == 0 {
                for i in 0..n_msgs {
                    c.send(1, i, &[i as f64, i as f64 * 2.0]);
                }
                (Vec::new(), 0)
            } else {
                let got: Vec<Vec<f64>> =
                    (0..n_msgs).map(|i| c.recv(0, i)).collect();
                (got, c.stats().msgs_recv)
            }
        }).unwrap();
        let (got, msgs_recv) = &outs[1];
        for (i, m) in got.iter().enumerate() {
            prop_assert_eq!(m, &vec![i as f64, i as f64 * 2.0]);
        }
        // Logical receive count: one per sent message, despite dups and
        // retransmits.
        prop_assert_eq!(*msgs_recv, n_msgs as usize);
    }
}
