//! Periodic training checkpoints with atomic writes and keep-K pruning.
//!
//! A checkpoint captures *everything* a rank needs to resume the training
//! loop bitwise-identically: network parameters, full optimizer state
//! (step counter + moment buffers), the batch sampler's RNG position at
//! the start of the current epoch plus the batch offset within it, the
//! partial epoch loss sums, and the rank-0 epoch logs. Files are written
//! per rank per step (`ckpt-step00000040-rank0.mfc`) via a temp-file +
//! rename so a crash mid-write never leaves a truncated checkpoint with a
//! valid name, and only the newest `keep` checkpoints per rank survive.
//!
//! Resume negotiation is collective: each rank offers its newest step and
//! the cluster takes the minimum, so after a crash that interrupted some
//! ranks mid-save, everyone restarts from the newest step *all* ranks
//! have (see [`crate::trainer::train_ddp_resumable`]).

use crate::trainer::EpochLog;
use mf_data::SamplerState;
use mf_nn::wire::{
    bad, read_f64, read_str, read_tensor, read_u64, write_f64, write_str, write_tensor, write_u64,
};
use mf_nn::SdNet;
use mf_opt::OptimizerState;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"MFCKPT01";

/// Where and how often to checkpoint a training run.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory for checkpoint files (created on first save).
    pub dir: PathBuf,
    /// Save every this many optimizer steps.
    pub every_steps: usize,
    /// Newest checkpoints to retain per rank (older ones are pruned).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every_steps` steps, keeping the 2
    /// newest files per rank.
    pub fn new(dir: impl Into<PathBuf>, every_steps: usize) -> Self {
        assert!(every_steps > 0, "CheckpointConfig: every_steps must be > 0");
        Self {
            dir: dir.into(),
            every_steps,
            keep: 2,
        }
    }
}

/// Complete per-rank training state at a step boundary.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// Optimizer steps completed (the next step to run).
    pub step: usize,
    /// Zero-based epoch the run is inside.
    pub epoch: usize,
    /// Batches already consumed in this epoch.
    pub batch_in_epoch: usize,
    /// Cumulative training wall-clock seconds.
    pub train_seconds: f64,
    /// Partial sum of data losses within the current epoch.
    pub data_loss_sum: f64,
    /// Partial sum of (weighted) PDE losses within the current epoch.
    pub pde_loss_sum: f64,
    /// Network parameters.
    pub net: SdNet,
    /// Optimizer snapshot (moment buffers + step counter).
    pub opt: OptimizerState,
    /// Sampler snapshot taken at the *start* of `epoch`, so replaying
    /// `epoch()` regenerates the identical batch list to skip into.
    pub sampler_at_epoch_start: SamplerState,
    /// Epoch logs accumulated so far (rank 0 carries them; other ranks
    /// store an empty list).
    pub logs: Vec<EpochLog>,
}

impl TrainState {
    /// Serialize to a writer.
    pub fn save_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u64(w, self.step as u64)?;
        write_u64(w, self.epoch as u64)?;
        write_u64(w, self.batch_in_epoch as u64)?;
        write_f64(w, self.train_seconds)?;
        write_f64(w, self.data_loss_sum)?;
        write_f64(w, self.pde_loss_sum)?;
        self.net.save_to(w)?;
        write_str(w, &self.opt.kind)?;
        write_u64(w, self.opt.t as u64)?;
        write_u64(w, self.opt.scalars.len() as u64)?;
        for &s in &self.opt.scalars {
            write_f64(w, s)?;
        }
        write_u64(w, self.opt.tensors.len() as u64)?;
        for t in &self.opt.tensors {
            write_tensor(w, t)?;
        }
        write_u64(w, self.sampler_at_epoch_start.batch_size as u64)?;
        write_u64(w, self.sampler_at_epoch_start.qd as u64)?;
        write_u64(w, self.sampler_at_epoch_start.qc as u64)?;
        write_u64(w, self.sampler_at_epoch_start.rng_words.len() as u64)?;
        for &word in &self.sampler_at_epoch_start.rng_words {
            write_u64(w, word as u64)?;
        }
        write_u64(w, self.logs.len() as u64)?;
        for l in &self.logs {
            write_u64(w, l.epoch as u64)?;
            write_f64(w, l.data_loss)?;
            write_f64(w, l.pde_loss)?;
            write_f64(w, l.val_mse)?;
            write_f64(w, l.seconds)?;
        }
        Ok(())
    }

    /// Deserialize a state saved with [`TrainState::save_to`].
    pub fn load_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a Mosaic Flow checkpoint (bad magic)"));
        }
        let step = read_u64(r)? as usize;
        let epoch = read_u64(r)? as usize;
        let batch_in_epoch = read_u64(r)? as usize;
        let train_seconds = read_f64(r)?;
        let data_loss_sum = read_f64(r)?;
        let pde_loss_sum = read_f64(r)?;
        let net = SdNet::load_from(r)?;
        let kind = read_str(r)?;
        let t = read_u64(r)? as usize;
        let n_scalars = read_u64(r)? as usize;
        if n_scalars > 64 {
            return Err(bad("optimizer scalar count out of range"));
        }
        let mut scalars = Vec::with_capacity(n_scalars);
        for _ in 0..n_scalars {
            scalars.push(read_f64(r)?);
        }
        let n_tensors = read_u64(r)? as usize;
        if n_tensors > 1 << 16 {
            return Err(bad("optimizer tensor count out of range"));
        }
        let mut tensors = Vec::with_capacity(n_tensors);
        for _ in 0..n_tensors {
            tensors.push(read_tensor(r)?);
        }
        let batch_size = read_u64(r)? as usize;
        let qd = read_u64(r)? as usize;
        let qc = read_u64(r)? as usize;
        let n_words = read_u64(r)? as usize;
        if n_words > 256 {
            return Err(bad("sampler RNG word count out of range"));
        }
        let mut rng_words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            rng_words.push(read_u64(r)? as u32);
        }
        let n_logs = read_u64(r)? as usize;
        if n_logs > 1 << 24 {
            return Err(bad("log count out of range"));
        }
        let mut logs = Vec::with_capacity(n_logs);
        for _ in 0..n_logs {
            logs.push(EpochLog {
                epoch: read_u64(r)? as usize,
                data_loss: read_f64(r)?,
                pde_loss: read_f64(r)?,
                val_mse: read_f64(r)?,
                seconds: read_f64(r)?,
            });
        }
        Ok(Self {
            step,
            epoch,
            batch_in_epoch,
            train_seconds,
            data_loss_sum,
            pde_loss_sum,
            net,
            opt: OptimizerState {
                kind,
                t,
                scalars,
                tensors,
            },
            sampler_at_epoch_start: SamplerState {
                batch_size,
                qd,
                qc,
                rng_words,
            },
            logs,
        })
    }
}

/// File name of the checkpoint for (`step`, `rank`).
pub fn checkpoint_file(dir: &Path, step: usize, rank: usize) -> PathBuf {
    dir.join(format!("ckpt-step{step:08}-rank{rank}.mfc"))
}

/// Atomically write `state` for `rank`, then prune to `cfg.keep` files.
///
/// The write goes to a `.tmp` sibling first and is renamed into place, so
/// readers never observe a partially written checkpoint under its final
/// name.
pub fn save_checkpoint(
    cfg: &CheckpointConfig,
    rank: usize,
    state: &TrainState,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(&cfg.dir)?;
    let path = checkpoint_file(&cfg.dir, state.step, rank);
    let tmp = path.with_extension("mfc.tmp");
    {
        let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
        state.save_to(&mut f)?;
        f.flush()?;
    }
    std::fs::rename(&tmp, &path)?;
    prune(cfg, rank)?;
    Ok(path)
}

/// Load the checkpoint for (`step`, `rank`).
pub fn load_checkpoint(cfg: &CheckpointConfig, step: usize, rank: usize) -> io::Result<TrainState> {
    let path = checkpoint_file(&cfg.dir, step, rank);
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    TrainState::load_from(&mut f)
}

/// Steps for which `rank` has a (fully written) checkpoint, ascending.
pub fn available_steps(cfg: &CheckpointConfig, rank: usize) -> Vec<usize> {
    let suffix = format!("-rank{rank}.mfc");
    let mut steps = Vec::new();
    let Ok(entries) = std::fs::read_dir(&cfg.dir) else {
        return steps;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mid) = name
            .strip_prefix("ckpt-step")
            .and_then(|s| s.strip_suffix(&suffix))
        {
            if let Ok(step) = mid.parse::<usize>() {
                steps.push(step);
            }
        }
    }
    steps.sort_unstable();
    steps
}

/// Newest checkpointed step for `rank`, if any.
pub fn latest_step(cfg: &CheckpointConfig, rank: usize) -> Option<usize> {
    available_steps(cfg, rank).pop()
}

fn prune(cfg: &CheckpointConfig, rank: usize) -> io::Result<()> {
    let steps = available_steps(cfg, rank);
    if steps.len() > cfg.keep {
        for &old in &steps[..steps.len() - cfg.keep] {
            let _ = std::fs::remove_file(checkpoint_file(&cfg.dir, old, rank));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_data::BatchSampler;
    use mf_nn::SdNetConfig;
    use mf_opt::{Adam, Optimizer};
    use mf_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_state(step: usize) -> TrainState {
        let mut cfg = SdNetConfig::small(16);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![8];
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(7));
        let mut opt = Adam::new();
        let mut p = [Tensor::scalar(0.0)];
        opt.step(p.iter_mut(), &[Tensor::scalar(1.0)], 0.01);
        TrainState {
            step,
            epoch: 1,
            batch_in_epoch: 3,
            train_seconds: 1.5,
            data_loss_sum: 0.25,
            pde_loss_sum: 0.125,
            net,
            opt: opt.export_state(),
            sampler_at_epoch_start: BatchSampler::new(2, 4, 4, 11).state(),
            logs: vec![EpochLog {
                epoch: 0,
                data_loss: 0.5,
                pde_loss: 0.25,
                val_mse: 0.1,
                seconds: 0.7,
            }],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mf_ckpt_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn state_roundtrips_bitwise() {
        let state = tiny_state(40);
        let mut buf = Vec::new();
        state.save_to(&mut buf).unwrap();
        let loaded = TrainState::load_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.step, 40);
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.batch_in_epoch, 3);
        assert_eq!(loaded.train_seconds, 1.5);
        assert_eq!(loaded.net.params.flatten(), state.net.params.flatten());
        assert_eq!(loaded.opt, state.opt);
        assert_eq!(loaded.sampler_at_epoch_start, state.sampler_at_epoch_start);
        assert_eq!(loaded.logs.len(), 1);
        assert_eq!(loaded.logs[0].val_mse, 0.1);
        // A second serialization is byte-identical (format is canonical).
        let mut buf2 = Vec::new();
        loaded.save_to(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut buf = Vec::new();
        tiny_state(1).save_to(&mut buf).unwrap();
        let mut broken = buf.clone();
        broken[0] = b'X';
        assert!(TrainState::load_from(&mut broken.as_slice()).is_err());
        buf.truncate(buf.len() - 7);
        assert!(TrainState::load_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn save_prunes_to_keep_and_latest_wins() {
        let dir = tmpdir("prune");
        let cfg = CheckpointConfig {
            dir: dir.clone(),
            every_steps: 10,
            keep: 2,
        };
        for step in [10, 20, 30] {
            save_checkpoint(&cfg, 0, &tiny_state(step)).unwrap();
        }
        assert_eq!(available_steps(&cfg, 0), vec![20, 30]);
        assert_eq!(latest_step(&cfg, 0), Some(30));
        // Another rank's files are independent.
        assert_eq!(latest_step(&cfg, 1), None);
        save_checkpoint(&cfg, 1, &tiny_state(20)).unwrap();
        assert_eq!(available_steps(&cfg, 0), vec![20, 30]);
        assert_eq!(latest_step(&cfg, 1), Some(20));
        let loaded = load_checkpoint(&cfg, 30, 0).unwrap();
        assert_eq!(loaded.step, 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let dir = tmpdir("tmpclean");
        let cfg = CheckpointConfig::new(&dir, 5);
        save_checkpoint(&cfg, 0, &tiny_state(5)).unwrap();
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftover.is_empty(), "tmp files left behind: {leftover:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
