//! One training iteration — Algorithm 1 of the paper.
//!
//! ```text
//! Step 1: forward + backward on data points        (no sync)
//! Step 2: forward + backward on collocation points (accumulate grads)
//! Step 3: ONE allreduce-mean of the accumulated gradient
//! ```
//!
//! Splitting the two point sets into separate passes keeps the data loss
//! applied only where solutions are known; accumulating before a single
//! fused allreduce preserves exact SGD semantics (a true global average)
//! while paying one collective per iteration instead of two.

use crate::losses::{data_loss, pde_loss};
use mf_autodiff::Graph;
use mf_data::Batch;
use mf_dist::Communicator;
use mf_nn::SdNet;
use mf_observe::{GradHealth, RecKind};
use mf_opt::Optimizer;
use mf_telemetry::{counter, gauge, histogram, span, Buckets, Counter, Gauge, Histogram};
use mf_tensor::Tensor;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    /// The per-rank training graph. It persists across steps so that the
    /// buffer pool it owns reaches a steady state: after the first step
    /// every tensor the hot path needs comes back out of the pool and the
    /// heap allocator is no longer involved.
    static STEP_GRAPH: RefCell<Graph> = RefCell::new(Graph::new());
    static CKPT_SEGMENTS: Cell<bool> = const { Cell::new(false) };
}

/// Opt into checkpointed segments for the second-order residual backward
/// on this thread: the PDE loss evicts cheap-to-recompute node values
/// between its inner backward passes and rematerializes them on demand
/// (bitwise-identically) during the weight backward. Trades FLOPs for
/// peak graph bytes; off by default.
pub fn set_checkpointed_segments(on: bool) {
    CKPT_SEGMENTS.with(|c| c.set(on));
}

/// Whether [`set_checkpointed_segments`] is active on this thread.
pub fn checkpointed_segments() -> bool {
    CKPT_SEGMENTS.with(|c| c.get())
}

/// Gradient synchronization strategy (ablation knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradSync {
    /// Algorithm 1: accumulate data + collocation gradients locally, one
    /// fused allreduce.
    Fused,
    /// One allreduce per loss term (what naive DDP hooks would do): same
    /// numerics, twice the latency cost.
    PerLoss,
    /// Like [`GradSync::Fused`] but the mean is computed in a fixed rank
    /// order (allgather + ordered local sum), so the floating-point
    /// reduction is independent of the world size. Costs more bandwidth
    /// than the ring allreduce; use it when loss curves must match
    /// across 1/2/4-rank runs bit-for-bit.
    OrderedFused,
}

/// Cached `mf-telemetry` handles for the trainer hot path (registered
/// once; recording is thread-local and lock-free).
pub(crate) struct TrainMetrics {
    pub data_pass_us: Histogram,
    pub pde_pass_us: Histogram,
    pub sync_us: Histogram,
    pub opt_us: Histogram,
    pub step_us: Histogram,
    pub graph_nodes: Gauge,
    pub graph_bytes: Gauge,
    pub bytes_peak: Gauge,
    pub pool_hits: Counter,
    pub pool_misses: Counter,
    pub allocs_per_step: Gauge,
    pub grad_norm: Gauge,
    pub nonfinite_grads: Counter,
}

/// The shared trainer metric handles.
pub(crate) fn train_metrics() -> &'static TrainMetrics {
    use std::sync::OnceLock;
    static M: OnceLock<TrainMetrics> = OnceLock::new();
    M.get_or_init(|| TrainMetrics {
        data_pass_us: histogram("train.data_pass_us", Buckets::latency_us()),
        pde_pass_us: histogram("train.pde_pass_us", Buckets::latency_us()),
        sync_us: histogram("train.sync_us", Buckets::latency_us()),
        opt_us: histogram("train.opt_us", Buckets::latency_us()),
        step_us: histogram("train.step_us", Buckets::latency_us()),
        graph_nodes: gauge("autodiff.graph_nodes"),
        graph_bytes: gauge("autodiff.graph_bytes"),
        bytes_peak: gauge("graph.bytes_peak"),
        pool_hits: counter("pool.hits"),
        pool_misses: counter("pool.misses"),
        allocs_per_step: gauge("graph.allocs_per_step"),
        grad_norm: gauge("health.grad_norm"),
        nonfinite_grads: counter("health.nonfinite_grads"),
    })
}

/// Metrics from one training step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Data-loss value.
    pub data_loss: f64,
    /// PDE-loss value (after weighting).
    pub pde_loss: f64,
    /// Autograd nodes created this step.
    pub graph_nodes: usize,
    /// Autograd bytes held at peak (sum over both passes).
    pub graph_bytes: usize,
    /// High-water mark of live graph bytes within a single pass.
    pub peak_bytes: usize,
    /// Tensor-buffer acquisitions served from the graph's pool this step.
    pub pool_hits: u64,
    /// Tensor-buffer acquisitions that had to touch the heap allocator.
    pub pool_misses: u64,
    /// Heap allocations attributable to the graph this step (pool misses
    /// plus adopted external buffers). Near zero once the pool is warm.
    pub heap_allocs: u64,
}

/// Compute the local (unsynchronized) gradients of
/// `L = L_data + pde_weight · L_pde` for one batch, using two separate
/// forward/backward passes as in Algorithm 1.
///
/// Returns `(data_grads, pde_grads, stats)` so callers choose how to
/// combine/synchronize; `pde_grads` is already scaled by `pde_weight`.
pub fn local_gradients(
    net: &SdNet,
    batch: &Batch,
    pde_weight: f64,
) -> (Vec<Tensor>, Vec<Tensor>, StepStats) {
    STEP_GRAPH.with(|cell| {
        let g = &mut *cell.borrow_mut();
        g.set_checkpointing(checkpointed_segments());
        let pool_before = g.pool_stats();
        let allocs_before = g.heap_allocs();
        let mut stats = StepStats::default();

        // Pass 1: data points. `clear()` recycles the previous step's
        // buffers into the pool instead of freeing them, so a warm graph
        // rebuilds the tape without touching the heap allocator.
        let (data_grads, data_secs) = mf_telemetry::timed("train.data_pass", || {
            g.clear();
            let bound = net.params.bind(g);
            let ld = data_loss(g, net, &bound, batch);
            stats.data_loss = g.value(ld).item();
            let dgrads = {
                mf_profile::zone!("vjp_data");
                g.grad(ld, bound.all_vars())
            };
            let data_grads: Vec<Tensor> = dgrads.iter().map(|&v| g.value(v).clone()).collect();
            stats.graph_nodes += g.len();
            stats.graph_bytes += g.bytes_allocated();
            stats.peak_bytes = stats.peak_bytes.max(g.peak_bytes());
            data_grads
        });

        // Pass 2: collocation points (cleared tape, like a fresh autograd
        // graph in PyTorch once the first backward freed its buffers).
        let (pde_grads, pde_secs) = mf_telemetry::timed("train.pde_pass", || {
            g.clear();
            let bound = net.params.bind(g);
            let lp = pde_loss(g, net, &bound, batch);
            let lp = g.scale(lp, pde_weight);
            stats.pde_loss = g.value(lp).item();
            let pgrads = {
                mf_profile::zone!("vjp_pde");
                g.grad(lp, bound.all_vars())
            };
            let pde_grads: Vec<Tensor> = pgrads.iter().map(|&v| g.value(v).clone()).collect();
            stats.graph_nodes += g.len();
            stats.graph_bytes += g.bytes_allocated();
            stats.peak_bytes = stats.peak_bytes.max(g.peak_bytes());
            pde_grads
        });

        let pool_delta = g.pool_stats().since(&pool_before);
        stats.pool_hits = pool_delta.hits;
        stats.pool_misses = pool_delta.misses;
        stats.heap_allocs = g.heap_allocs() - allocs_before;

        // Numerical-health watchdog: one allocation-free pass over the
        // gradients the step already produced. The gauge/counter updates
        // are lock-free; the post-mortem dump fires at most once per
        // process (and only when MF_OBSERVE enables bundle writing), so
        // the warm-step allocation pin above stays intact.
        let mut health = GradHealth::default();
        for t in data_grads.iter().chain(&pde_grads) {
            health.scan(t.as_slice());
        }
        let health = health.finish();

        let m = train_metrics();
        m.grad_norm.set(health.norm);
        if health.is_bad() {
            m.nonfinite_grads.add(health.nan + health.inf);
            mf_observe::record(
                RecKind::Health,
                "train.nonfinite_grad",
                health.nan + health.inf,
                health.norm,
            );
            dump_on_first_nonfinite(&health, &stats);
        }
        m.data_pass_us.record(data_secs * 1e6);
        m.pde_pass_us.record(pde_secs * 1e6);
        m.graph_nodes.update(|v| v.max(stats.graph_nodes as f64));
        m.graph_bytes.update(|v| v.max(stats.graph_bytes as f64));
        m.bytes_peak.update(|v| v.max(stats.peak_bytes as f64));
        m.pool_hits.add(stats.pool_hits);
        m.pool_misses.add(stats.pool_misses);
        m.allocs_per_step.set(stats.heap_allocs as f64);

        (data_grads, pde_grads, stats)
    })
}

/// First non-finite gradient in the process triggers one post-mortem
/// bundle; later incidents only bump the `health.nonfinite_grads`
/// counter (a diverged run produces NaNs every step — one bundle is the
/// useful artifact, a thousand are noise).
static NONFINITE_DUMPED: AtomicBool = AtomicBool::new(false);

fn dump_on_first_nonfinite(health: &GradHealth, stats: &StepStats) {
    if NONFINITE_DUMPED.swap(true, Ordering::SeqCst) {
        return;
    }
    let rank = mf_telemetry::thread_rank().unwrap_or(0);
    mf_observe::flush_rank(rank);
    let ctx = mf_observe::step_context();
    mf_observe::postmortem::dump(
        &mf_observe::postmortem::DumpReason {
            kind: "nonfinite-gradient".to_string(),
            detail: format!(
                "{} NaN + {} Inf gradient elements at epoch {} step {} (finite-part norm {:.3e})",
                health.nan, health.inf, ctx.epoch, ctx.step, health.norm
            ),
            failing_rank: mf_telemetry::thread_rank(),
        },
        &format!(
            "data_loss = {:.6e}\npde_loss = {:.6e}\ngraph_nodes = {}",
            stats.data_loss, stats.pde_loss, stats.graph_nodes
        ),
    );
}

fn flatten(grads: &[Tensor]) -> Vec<f64> {
    let n: usize = grads.iter().map(|t| t.numel()).sum();
    let mut out = Vec::with_capacity(n);
    for t in grads {
        out.extend_from_slice(t.as_slice());
    }
    out
}

fn unflatten_like(flat: &[f64], like: &[Tensor]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(like.len());
    let mut off = 0;
    for t in like {
        let n = t.numel();
        out.push(Tensor::from_vec(
            t.rows(),
            t.cols(),
            flat[off..off + n].to_vec(),
        ));
        off += n;
    }
    assert_eq!(off, flat.len(), "unflatten_like: length mismatch");
    out
}

/// Single-device training step: local gradients, optimizer update.
pub fn train_step_single(
    net: &mut SdNet,
    batch: &Batch,
    opt: &mut impl Optimizer,
    lr: f64,
    pde_weight: f64,
) -> StepStats {
    span!("train.step");
    let m = train_metrics();
    let _step_timer = m.step_us.time();
    let (data_grads, pde_grads, stats) = local_gradients(net, batch, pde_weight);
    let grads: Vec<Tensor> = data_grads
        .iter()
        .zip(&pde_grads)
        .map(|(d, p)| d.add(p))
        .collect();
    {
        span!("train.opt");
        let _t = m.opt_us.time();
        opt.step(net.params.tensors_mut(), &grads, lr);
    }
    // Make this step's metrics visible to a live /metrics scrape
    // (a warm publish does not allocate).
    mf_telemetry::publish_thread();
    stats
}

/// Distributed training step (Algorithm 1). Every rank calls this with its
/// own shard's batch; parameters stay bit-identical across ranks because
/// each applies the same averaged gradient.
pub fn train_step_distributed(
    net: &mut SdNet,
    batch: &Batch,
    opt: &mut impl Optimizer,
    lr: f64,
    pde_weight: f64,
    comm: &mut Communicator,
    sync: GradSync,
) -> StepStats {
    span!("train.step");
    let m = train_metrics();
    let _step_timer = m.step_us.time();
    let (data_grads, pde_grads, stats) = local_gradients(net, batch, pde_weight);
    let grads = {
        span!("train.sync");
        let _t = m.sync_us.time();
        match sync {
            GradSync::Fused => {
                // Accumulate locally (line 9), then one allreduce (line 10).
                let local: Vec<Tensor> = data_grads
                    .iter()
                    .zip(&pde_grads)
                    .map(|(d, p)| d.add(p))
                    .collect();
                let mut flat = flatten(&local);
                comm.allreduce_mean(&mut flat);
                unflatten_like(&flat, &local)
            }
            GradSync::PerLoss => {
                // Naive variant: synchronize each term separately.
                let mut fd = flatten(&data_grads);
                comm.allreduce_mean(&mut fd);
                let mut fp = flatten(&pde_grads);
                comm.allreduce_mean(&mut fp);
                let avg_d = unflatten_like(&fd, &data_grads);
                let avg_p = unflatten_like(&fp, &pde_grads);
                avg_d.iter().zip(&avg_p).map(|(d, p)| d.add(p)).collect()
            }
            GradSync::OrderedFused => {
                let local: Vec<Tensor> = data_grads
                    .iter()
                    .zip(&pde_grads)
                    .map(|(d, p)| d.add(p))
                    .collect();
                let mut flat = flatten(&local);
                comm.allreduce_mean_ordered(&mut flat);
                unflatten_like(&flat, &local)
            }
        }
    };
    {
        span!("train.opt");
        let _t = m.opt_us.time();
        opt.step(net.params.tensors_mut(), &grads, lr);
    }
    mf_telemetry::publish_thread();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_data::{BatchSampler, Dataset, SubdomainSpec};
    use mf_dist::Cluster;
    use mf_nn::SdNetConfig;
    use mf_opt::Sgd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_net(seed: u64) -> SdNet {
        let mut cfg = SdNetConfig::small(32);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![10, 10];
        SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    fn tiny_batches(n: usize) -> Vec<Batch> {
        let ds = Dataset::generate(SubdomainSpec { m: 9, spatial: 0.5 }, n, 0);
        let mut bs = BatchSampler::new(1, 4, 4, 0);
        (0..n).map(|i| bs.make_batch(&ds, &[i])).collect()
    }

    #[test]
    fn single_step_changes_parameters_and_reduces_loss() {
        let mut net = tiny_net(0);
        let batch = &tiny_batches(1)[0];
        let before = net.params.flatten();
        let mut opt = Sgd::new(0.0);
        let s1 = train_step_single(&mut net, batch, &mut opt, 0.05, 0.01);
        let after = net.params.flatten();
        assert!(before.iter().zip(&after).any(|(a, b)| a != b));
        // A few more steps on the same batch must reduce the data loss.
        let mut last = s1.data_loss;
        for _ in 0..20 {
            last = train_step_single(&mut net, batch, &mut opt, 0.05, 0.01).data_loss;
        }
        assert!(
            last < s1.data_loss,
            "loss did not decrease: {} -> {last}",
            s1.data_loss
        );
    }

    #[test]
    fn ddp_two_ranks_matches_single_device_on_union_batch() {
        // Algorithm 1's claim: averaging per-rank gradients over
        // equal-size shards equals the gradient of the union batch.
        let batches = tiny_batches(2);

        // Single device on the union: average the two batch gradients by
        // hand (same qd/qc per batch makes means compatible).
        let net0 = tiny_net(1);
        let (d0, p0, _) = local_gradients(&net0, &batches[0], 0.01);
        let (d1, p1, _) = local_gradients(&net0, &batches[1], 0.01);
        let manual: Vec<Tensor> = d0
            .iter()
            .zip(&p0)
            .zip(d1.iter().zip(&p1))
            .map(|((a, b), (c, d))| a.add(b).add(&c.add(d)).scale(0.5))
            .collect();
        let mut net_ref = net0.clone();
        let mut opt_ref = Sgd::new(0.0);
        opt_ref.step(net_ref.params.tensors_mut(), &manual, 0.1);

        // Two-rank DDP with the same batches.
        let batches_ref = &batches;
        let net_template = net0.clone();
        let results = Cluster::run(2, move |comm| {
            let mut net = net_template.clone();
            let mut opt = Sgd::new(0.0);
            train_step_distributed(
                &mut net,
                &batches_ref[comm.rank()],
                &mut opt,
                0.1,
                0.01,
                comm,
                GradSync::Fused,
            );
            net.params.flatten()
        });
        let expect = net_ref.params.flatten();
        for (rank, result) in results.iter().enumerate() {
            for (a, b) in result.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-10, "rank {rank}: {a} vs {b}");
            }
        }
        // Ranks stay in lockstep with each other.
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn fused_and_per_loss_sync_agree_numerically_but_not_in_messages() {
        let batches = tiny_batches(2);
        let batches_ref = &batches;
        let template = tiny_net(2);
        let t = &template;
        let run = |sync: GradSync| {
            Cluster::run(2, move |comm| {
                let mut net = t.clone();
                let mut opt = Sgd::new(0.0);
                train_step_distributed(
                    &mut net,
                    &batches_ref[comm.rank()],
                    &mut opt,
                    0.1,
                    0.01,
                    comm,
                    sync,
                );
                (net.params.flatten(), comm.stats())
            })
        };
        let fused = run(GradSync::Fused);
        let perloss = run(GradSync::PerLoss);
        for (a, b) in fused[0].0.iter().zip(&perloss[0].0) {
            assert!((a - b).abs() < 1e-12);
        }
        // PerLoss pays twice the messages.
        assert_eq!(perloss[0].1.msgs_sent, 2 * fused[0].1.msgs_sent);
    }

    #[test]
    fn stats_report_graph_growth() {
        let net = tiny_net(3);
        let batch = &tiny_batches(1)[0];
        let (_, _, stats) = local_gradients(&net, batch, 1.0);
        assert!(stats.graph_nodes > 50);
        assert!(stats.graph_bytes > 1000);
        assert!(stats.peak_bytes >= stats.graph_bytes / 2);
    }

    #[test]
    fn warm_graph_steps_do_not_touch_the_heap() {
        // The tentpole claim: after the first step primes the pool, every
        // later step of the same shape is served entirely from recycled
        // buffers — zero pool misses, zero graph heap allocations.
        let net = tiny_net(7);
        let batch = &tiny_batches(1)[0];
        let (_, _, first) = local_gradients(&net, batch, 0.5);
        assert!(first.pool_misses > 0, "cold step must populate the pool");
        for step in 2..=4 {
            let (_, _, s) = local_gradients(&net, batch, 0.5);
            assert_eq!(s.pool_misses, 0, "step {step} missed the pool");
            assert_eq!(s.heap_allocs, 0, "step {step} touched the heap");
            assert!(s.pool_hits > 100, "step {step} barely used the pool");
        }
    }

    #[test]
    fn checkpointed_segments_keep_gradients_bitwise_and_lower_peak() {
        let net = tiny_net(9);
        let batch = &tiny_batches(1)[0];
        let (d0, p0, s0) = local_gradients(&net, batch, 0.3);
        set_checkpointed_segments(true);
        let (d1, p1, s1) = local_gradients(&net, batch, 0.3);
        set_checkpointed_segments(false);
        for (a, b) in d0.iter().zip(&d1).chain(p0.iter().zip(&p1)) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "ckpt changed a gradient");
            }
        }
        assert!(
            s1.peak_bytes < s0.peak_bytes,
            "ckpt peak {} not below plain peak {}",
            s1.peak_bytes,
            s0.peak_bytes
        );
    }
}
