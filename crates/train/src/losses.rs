//! The two physics-informed loss terms.

use mf_autodiff::{Graph, Var};
use mf_data::Batch;
use mf_nn::{Bound, SdNet};

/// MSE between SDNet predictions and known solution values at the batch's
/// data points. Returns a scalar graph variable.
pub fn data_loss(g: &mut Graph, net: &SdNet, bound: &Bound, batch: &Batch) -> Var {
    let gb = g.constant_from(&batch.boundaries);
    let x = g.constant_from(&batch.data_points);
    let pred = net.forward(g, bound, gb, x, batch.qd);
    let target = g.constant_from(&batch.data_values);
    g.mse(pred, target)
}

/// PDE residual loss for the Laplace equation at the batch's collocation
/// points: `mean((u_xx + u_yy)²)`.
///
/// This is the expensive path of the paper (§5.2): the model output is
/// differentiated twice with respect to its *inputs* (two backward passes
/// that each extend the autograd graph), and the resulting scalar is later
/// differentiated with respect to the weights — three chained backwards in
/// total.
pub fn pde_loss(g: &mut Graph, net: &SdNet, bound: &Bound, batch: &Batch) -> Var {
    let gb = g.constant_from(&batch.boundaries);
    // Collocation coordinates are a *leaf*: we differentiate w.r.t. them.
    let x = g.leaf_from(&batch.colloc_points);
    let u = net.forward(g, bound, gb, x, batch.qc);

    // First derivatives. Rows are independent (each output row depends
    // only on its own coordinate row), so grad(sum u) gives the per-row
    // Jacobian diagonal exactly.
    let su = g.sum(u);
    let du = g.grad(su, &[x])[0];
    // Each inner backward pass grows the graph; with checkpointing
    // enabled, drop the values of nodes that can be recomputed cheaply
    // (anything not feeding a nonlinear VJP). Rematerialization through
    // the shared evaluator is bitwise-identical, so these calls never
    // change the loss; without checkpointing they are no-ops.
    g.evict_dead_values(&[du]);
    let ux = g.slice_cols(du, 0, 1);
    let uy = g.slice_cols(du, 1, 1);

    // Second derivatives.
    let sux = g.sum(ux);
    let dux = g.grad(sux, &[x])[0];
    g.evict_dead_values(&[dux, uy]);
    let uxx = g.slice_cols(dux, 0, 1);
    let suy = g.sum(uy);
    let duy = g.grad(suy, &[x])[0];
    g.evict_dead_values(&[duy, uxx]);
    let uyy = g.slice_cols(duy, 1, 1);

    let lap = g.add(uxx, uyy);
    let sq = g.mul(lap, lap);
    g.mean(sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_data::{BatchSampler, Dataset, SubdomainSpec};
    use mf_nn::{SdNet, SdNetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_setup() -> (SdNet, Batch) {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 2, 0);
        let mut bs = BatchSampler::new(2, 4, 4, 0);
        let batch = bs.make_batch(&ds, &[0, 1]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut cfg = SdNetConfig::small(spec.boundary_len());
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![12, 12];
        let net = SdNet::new(cfg, &mut rng);
        (net, batch)
    }

    #[test]
    fn losses_are_finite_and_positive() {
        let (net, batch) = tiny_setup();
        let mut g = Graph::new();
        let bound = net.params.bind(&mut g);
        let ld = data_loss(&mut g, &net, &bound, &batch);
        let lp = pde_loss(&mut g, &net, &bound, &batch);
        assert!(g.value(ld).item().is_finite());
        assert!(g.value(ld).item() > 0.0);
        assert!(g.value(lp).item().is_finite());
        assert!(g.value(lp).item() >= 0.0);
    }

    #[test]
    fn pde_loss_gradients_reach_weights() {
        let (net, batch) = tiny_setup();
        let mut g = Graph::new();
        let bound = net.params.bind(&mut g);
        let lp = pde_loss(&mut g, &net, &bound, &batch);
        let grads = g.grad(lp, bound.all_vars());
        let mut nonzero = 0;
        for gr in &grads {
            let n = g.value(*gr).norm_l2();
            assert!(n.is_finite());
            if n > 0.0 {
                nonzero += 1;
            }
        }
        // Most parameters must receive gradient through the Laplacian.
        assert!(
            nonzero >= grads.len() - 1,
            "only {nonzero}/{} grads nonzero",
            grads.len()
        );
    }

    #[test]
    fn pde_loss_matches_finite_difference_laplacian() {
        // Evaluate the network Laplacian by finite differences and compare
        // with the value implied by the loss at a single point.
        let (net, mut batch) = tiny_setup();
        batch.colloc_points = mf_tensor::Tensor::from_vec(2, 2, vec![0.21, 0.17, 0.33, 0.4]);
        batch.qc = 1;
        // batch has 2 boundaries with 1 collocation point each.
        let mut g = Graph::new();
        let bound = net.params.bind(&mut g);
        let lp = pde_loss(&mut g, &net, &bound, &batch);
        let loss_val = g.value(lp).item();

        // Finite-difference Laplacian per boundary.
        let h = 1e-4;
        let eval = |bidx: usize, x: f64, y: f64| -> f64 {
            let pts = mf_tensor::Tensor::from_vec(1, 2, vec![x, y]);
            let gb = mf_tensor::Tensor::from_vec(
                1,
                batch.boundaries.cols(),
                batch.boundaries.row(bidx).to_vec(),
            );
            net.predict(&gb, &pts, 1).item()
        };
        let mut acc = 0.0;
        for b in 0..2 {
            let (x, y) = (batch.colloc_points.get(b, 0), batch.colloc_points.get(b, 1));
            let lap =
                (eval(b, x + h, y) + eval(b, x - h, y) + eval(b, x, y + h) + eval(b, x, y - h)
                    - 4.0 * eval(b, x, y))
                    / (h * h);
            acc += lap * lap;
        }
        let fd_loss = acc / 2.0;
        assert!(
            (loss_val - fd_loss).abs() < 1e-3 * (1.0 + fd_loss),
            "autodiff {loss_val} vs finite-difference {fd_loss}"
        );
    }
}
