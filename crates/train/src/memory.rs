//! Autograd-graph memory metering (Table 3 of the paper).
//!
//! The paper measures device memory during forward + loss + backward with
//! and without the PDE loss, showing that the higher-order autograd graph
//! dominates (0.05 GB → 0.5 GB at 5 domains; OOM at 640 domains with PDE
//! loss on a 16 GB V100). Here the same quantity is exact: the arena graph
//! knows precisely how many bytes its node values hold.

use crate::losses::{data_loss, pde_loss};
use mf_autodiff::Graph;
use mf_data::Batch;
use mf_nn::SdNet;

/// Measured autograd footprint for one step configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemoryReport {
    /// Number of boundary conditions ("# domains" in Table 3).
    pub domains: usize,
    /// Bytes held by the graph for forward + data loss + backward.
    pub bytes_no_pde: usize,
    /// Bytes held when the PDE loss (double backward) is included.
    pub bytes_with_pde: usize,
    /// High-water mark of live bytes during the with-PDE step.
    pub peak_with_pde: usize,
    /// Graph-attributed heap allocations during the with-PDE step.
    pub heap_allocs: u64,
}

impl MemoryReport {
    /// Ratio of with-PDE to no-PDE footprint.
    pub fn blowup(&self) -> f64 {
        self.bytes_with_pde as f64 / self.bytes_no_pde.max(1) as f64
    }
}

/// Meter the graph bytes of a full training step on `batch`, with and
/// without the PDE loss term. The peak node count and byte footprint are
/// also published to the `autodiff.graph_nodes` / `autodiff.graph_bytes`
/// telemetry gauges.
pub fn measure_step_memory(net: &SdNet, batch: &Batch) -> MemoryReport {
    measure_step_memory_with(net, batch, false)
}

/// [`measure_step_memory`] with explicit control over checkpointed
/// segments in the PDE loss: with `ckpt` on, cheap-to-recompute node
/// values are evicted between the inner backward passes, lowering the
/// with-PDE footprint at the cost of rematerialization FLOPs.
pub fn measure_step_memory_with(net: &SdNet, batch: &Batch, ckpt: bool) -> MemoryReport {
    // Without PDE loss: forward + data loss + backward to weights.
    let mut g = Graph::new();
    let bound = net.params.bind(&mut g);
    let ld = data_loss(&mut g, net, &bound, batch);
    let _ = g.grad(ld, bound.all_vars());
    let bytes_no_pde = g.bytes_allocated();
    drop(g);

    // With PDE loss: the same plus the collocation pass with its two inner
    // backward passes and the final backward to weights.
    let mut g = Graph::new();
    g.set_checkpointing(ckpt);
    let bound = net.params.bind(&mut g);
    let ld = data_loss(&mut g, net, &bound, batch);
    let lp = pde_loss(&mut g, net, &bound, batch);
    let total = g.add(ld, lp);
    let _ = g.grad(total, bound.all_vars());
    let bytes_with_pde = g.bytes_allocated();
    let peak_with_pde = g.peak_bytes();
    let heap_allocs = g.heap_allocs();

    let m = crate::step::train_metrics();
    m.graph_nodes.update(|v| v.max(g.len() as f64));
    m.graph_bytes.update(|v| v.max(bytes_with_pde as f64));
    m.bytes_peak.update(|v| v.max(peak_with_pde as f64));

    MemoryReport {
        domains: batch.batch_size(),
        bytes_no_pde,
        bytes_with_pde,
        peak_with_pde,
        heap_allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_data::{BatchSampler, Dataset, SubdomainSpec};
    use mf_nn::{SdNet, SdNetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(domains: usize) -> (SdNet, Batch) {
        let ds = Dataset::generate(SubdomainSpec { m: 9, spatial: 0.5 }, domains, 0);
        let mut bs = BatchSampler::new(domains, 6, 6, 0);
        let idx: Vec<usize> = (0..domains).collect();
        let batch = bs.make_batch(&ds, &idx);
        let mut cfg = SdNetConfig::small(32);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![12, 12];
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(0));
        (net, batch)
    }

    #[test]
    fn pde_loss_inflates_memory() {
        // Table 3's qualitative claim: the PDE loss multiplies the
        // autograd footprint several times over.
        let (net, batch) = setup(2);
        let r = measure_step_memory(&net, &batch);
        assert!(r.bytes_with_pde > r.bytes_no_pde);
        assert!(r.blowup() > 3.0, "blowup only {:.2}x", r.blowup());
    }

    #[test]
    fn checkpointing_lowers_with_pde_peak() {
        let (net, batch) = setup(2);
        let plain = measure_step_memory_with(&net, &batch, false);
        let ckpt = measure_step_memory_with(&net, &batch, true);
        assert!(
            ckpt.peak_with_pde < plain.peak_with_pde,
            "ckpt peak {} not below plain peak {}",
            ckpt.peak_with_pde,
            plain.peak_with_pde
        );
    }

    #[test]
    fn memory_grows_with_domain_count() {
        let (net, b1) = setup(1);
        let (_, b4) = setup(4);
        let r1 = measure_step_memory(&net, &b1);
        let r4 = measure_step_memory(&net, &b4);
        assert!(r4.bytes_with_pde > 2 * r1.bytes_with_pde);
        assert_eq!(r1.domains, 1);
        assert_eq!(r4.domains, 4);
    }
}
