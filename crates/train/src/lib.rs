#![warn(missing_docs)]

//! Physics-informed training of SDNet, single-device and distributed
//! data-parallel (Algorithm 1 of the paper).
//!
//! * [`losses`] builds the two loss terms on the autodiff graph: an MSE
//!   data loss at points with known solutions, and the PDE residual loss
//!   `mean((∂²u/∂x² + ∂²u/∂y²)²)` at collocation points via two chained
//!   backward passes (the third backward then reaches the weights).
//! * [`step`] implements Algorithm 1: per-rank forward/backward for data
//!   points, gradient *accumulation* over the collocation backward, and a
//!   **single fused allreduce-mean** per iteration. An unfused variant (one
//!   allreduce per loss term) exists for the communication ablation.
//! * [`trainer`] runs epochs, evaluates validation MSE on full grids, and
//!   wires the paper's LR scaling rules for multi-device runs.
//! * [`memory`] meters the autograd graph bytes with and without the PDE
//!   loss, reproducing Table 3.

pub mod checkpoint;
pub mod losses;
pub mod memory;
pub mod step;
pub mod trainer;

pub use checkpoint::{save_checkpoint, CheckpointConfig, TrainState};
pub use losses::{data_loss, pde_loss};
pub use memory::{measure_step_memory, measure_step_memory_with, MemoryReport};
pub use step::{
    checkpointed_segments, local_gradients, set_checkpointed_segments, train_step_distributed,
    train_step_single, GradSync, StepStats,
};
pub use trainer::{
    evaluate_mse, train_ddp, train_ddp_resumable, train_single, DdpResult, EpochLog, EvalPlan,
    TrainConfig,
};
