//! Epoch-level training loops, single-device and distributed.

use crate::checkpoint::{
    latest_step, load_checkpoint, save_checkpoint, CheckpointConfig, TrainState,
};
use crate::step::GradSync;
use mf_data::{BatchSampler, Dataset};
use mf_dist::{Cluster, ClusterError, CommStats, FaultPlan};
use mf_nn::SdNet;
use mf_observe::RecKind;
use mf_opt::{Adam, AdamW, Lamb, LrSchedule, Optimizer, OptimizerState, Sgd};
use mf_tensor::Tensor;
use std::time::Instant;

/// Optimizer selection for a training run.
#[derive(Clone, Copy, Debug)]
pub enum OptKind {
    /// Plain/momentum SGD.
    Sgd(f64),
    /// Adam.
    Adam,
    /// AdamW with decoupled weight decay.
    AdamW(f64),
    /// LAMB — the paper's choice for large-batch multi-device training.
    Lamb(f64),
}

/// Hyperparameters of a training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Epochs over the (sharded) training set.
    pub epochs: usize,
    /// Boundary conditions per batch *per rank*.
    pub batch_size: usize,
    /// Data points per boundary.
    pub qd: usize,
    /// Collocation points per boundary.
    pub qc: usize,
    /// Weight of the PDE loss term.
    pub pde_weight: f64,
    /// Base (single-device) LR schedule; DDP scales it per the paper.
    pub schedule: LrSchedule,
    /// Optimizer.
    pub opt: OptKind,
    /// RNG seed for batching.
    pub seed: u64,
    /// Optional global gradient-norm clip applied before the optimizer
    /// step (guards against early PDE-loss gradient spikes).
    pub clip_norm: Option<f64>,
}

impl TrainConfig {
    /// Small defaults for tests and examples.
    pub fn small(epochs: usize, total_steps: usize) -> Self {
        Self {
            epochs,
            batch_size: 4,
            qd: 16,
            qc: 16,
            pde_weight: 0.1,
            schedule: LrSchedule::paper_default(total_steps),
            opt: OptKind::Adam,
            seed: 0,
            clip_norm: None,
        }
    }
}

/// Per-epoch training record.
#[derive(Clone, Copy, Debug)]
pub struct EpochLog {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean data loss over the epoch's steps.
    pub data_loss: f64,
    /// Mean (weighted) PDE loss over the epoch's steps.
    pub pde_loss: f64,
    /// Validation MSE on full solution grids after this epoch.
    pub val_mse: f64,
    /// Cumulative wall-clock seconds of training (excluding validation).
    pub seconds: f64,
}

/// Result of a distributed training run.
#[derive(Clone, Debug)]
pub struct DdpResult {
    /// Final parameters (identical on every rank; taken from rank 0).
    pub params_flat: Vec<f64>,
    /// Rank-0 epoch logs.
    pub logs: Vec<EpochLog>,
    /// Per-rank communication counters.
    pub comm_stats: Vec<CommStats>,
}

fn make_opt(kind: OptKind) -> Box<dyn OptimizerObj> {
    match kind {
        OptKind::Sgd(m) => Box::new(Sgd::new(m)),
        OptKind::Adam => Box::new(Adam::new()),
        OptKind::AdamW(wd) => Box::new(AdamW::new(wd)),
        OptKind::Lamb(wd) => Box::new(Lamb::new(wd)),
    }
}

/// Object-safe optimizer adapter (the `Optimizer` trait is generic over
/// the parameter iterator, so box a closure-style wrapper instead).
trait OptimizerObj {
    fn step_net(&mut self, net: &mut SdNet, grads: &[Tensor], lr: f64);
    fn export_state(&self) -> OptimizerState;
    fn import_state(&mut self, state: &OptimizerState);
}

impl<O: Optimizer> OptimizerObj for O {
    fn step_net(&mut self, net: &mut SdNet, grads: &[Tensor], lr: f64) {
        self.step(net.params.tensors_mut(), grads, lr);
    }

    fn export_state(&self) -> OptimizerState {
        Optimizer::export_state(self)
    }

    fn import_state(&mut self, state: &OptimizerState) {
        Optimizer::import_state(self, state);
    }
}

/// Validation evaluator on the compiled inference path.
///
/// Holds one [`InferencePlan`](mf_infer::InferencePlan) for the dataset's
/// full-grid query points plus a pooled workspace, and revalidates the
/// plan against the network's parameter version before every evaluation:
/// the optimizer step between epochs bumps the version, so each epoch's
/// validation pass recompiles once and then runs every sample graph-free
/// with zero warm allocations. Networks the plan compiler cannot lower
/// (the `Concat` embedding) fall back to [`SdNet::predict`].
///
/// One `EvalPlan` follows one network lineage — the version counter is
/// only meaningful within a single parameter store, so don't share an
/// instance across unrelated networks.
#[derive(Default)]
pub struct EvalPlan {
    cached: Option<mf_infer::InferencePlan>,
    ws: mf_infer::Workspace,
}

impl EvalPlan {
    /// An evaluator with nothing compiled yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean squared error of the network against full solution grids.
    pub fn mse(&mut self, net: &SdNet, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let spec = ds.spec;
        let q = spec.m * spec.m;
        // Grid coordinates in row-major (j, i) order, matching the
        // solution tensor layout.
        let mut pts = Vec::with_capacity(q * 2);
        for j in 0..spec.m {
            for i in 0..spec.m {
                let (x, y) = spec.coords(j, i);
                pts.push(x);
                pts.push(y);
            }
        }
        let points = Tensor::from_vec(q, 2, pts);
        if !mf_infer::InferencePlan::supports(net) {
            return graph_mse(net, ds, &points, q);
        }
        let stale = match &self.cached {
            Some(plan) => plan.is_stale(net) || plan.q() != q,
            None => true,
        };
        if stale {
            self.cached = Some(mf_infer::InferencePlan::compile(net, &points));
        } else {
            mf_telemetry::counter("infer.plan_cache_hits").incr();
        }
        let plan = self.cached.as_ref().unwrap();
        let mut pred = Tensor::zeros(q, 1);
        let mut acc = 0.0;
        for s in &ds.samples {
            pred.as_mut_slice().fill(0.0);
            plan.execute_into(&mut self.ws, &s.boundary, &mut pred);
            let diff: f64 = pred
                .as_slice()
                .iter()
                .zip(s.solution.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            acc += diff / q as f64;
        }
        acc / ds.len() as f64
    }
}

/// Graph-path fallback used when the network cannot be lowered to a plan.
fn graph_mse(net: &SdNet, ds: &Dataset, points: &Tensor, q: usize) -> f64 {
    let mut acc = 0.0;
    for s in &ds.samples {
        let pred = net.predict(&s.boundary, points, q);
        let diff: f64 = pred
            .as_slice()
            .iter()
            .zip(s.solution.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        acc += diff / q as f64;
    }
    acc / ds.len() as f64
}

/// Mean squared error of the network against full solution grids.
///
/// One-shot wrapper around [`EvalPlan::mse`]; training loops keep a
/// persistent [`EvalPlan`] instead so the compiled plan and workspace
/// carry across epochs.
pub fn evaluate_mse(net: &SdNet, ds: &Dataset) -> f64 {
    EvalPlan::new().mse(net, ds)
}

/// Train on a single device.
pub fn train_single(
    net: &mut SdNet,
    train: &Dataset,
    val: &Dataset,
    cfg: &TrainConfig,
) -> Vec<EpochLog> {
    let mut sampler = BatchSampler::new(cfg.batch_size, cfg.qd, cfg.qc, cfg.seed);
    // Note: simplified single-device path; the full Algorithm-1 semantics
    // (including the fused allreduce) live in `train_ddp`.
    let mut opt = make_opt(cfg.opt);
    let mut eval = EvalPlan::new();
    let mut logs = Vec::with_capacity(cfg.epochs);
    let mut global_step = 0usize;
    let mut train_seconds = 0.0;
    let mut step_secs_hist: Vec<f64> = Vec::new();
    for epoch in 0..cfg.epochs {
        let t0 = Instant::now();
        let mut dl = 0.0;
        let mut pl = 0.0;
        let batches = sampler.epoch(train);
        let nb = batches.len().max(1);
        for batch in &batches {
            let lr = cfg.schedule.lr_at(global_step);
            mf_observe::set_step_context(epoch as u64, global_step as u64);
            mf_telemetry::span!("train.step", epoch = epoch as f64);
            let m = crate::step::train_metrics();
            let _step_timer = m.step_us.time();
            // Inline single-device step using the boxed optimizer.
            let (dg, pg, stats) = crate::step::local_gradients(net, batch, cfg.pde_weight);
            let mut grads: Vec<Tensor> = dg.iter().zip(&pg).map(|(a, b)| a.add(b)).collect();
            if let Some(max) = cfg.clip_norm {
                mf_opt::clip_grad_norm(&mut grads, max);
            }
            {
                mf_telemetry::span!("train.opt");
                let _t = m.opt_us.time();
                opt.step_net(net, &grads, lr);
            }
            mf_observe::record(
                RecKind::Step,
                "train.step",
                0,
                stats.data_loss + stats.pde_loss,
            );
            dl += stats.data_loss;
            pl += stats.pde_loss;
            global_step += 1;
            // Make this step's metrics visible to a live /metrics scrape
            // (a warm publish does not allocate).
            mf_telemetry::publish_thread();
        }
        let epoch_secs = t0.elapsed().as_secs_f64();
        train_seconds += epoch_secs;
        logs.push(EpochLog {
            epoch,
            data_loss: dl / nb as f64,
            pde_loss: pl / nb as f64,
            val_mse: eval.mse(net, val),
            seconds: train_seconds,
        });
        if mf_observe::watch_enabled() {
            let losses: Vec<f64> = logs.iter().map(|l| l.data_loss + l.pde_loss).collect();
            step_secs_hist.push(epoch_secs / nb as f64);
            eprint!(
                "{}",
                mf_observe::train_watch_report(epoch, &losses, &[step_secs_hist.clone()])
            );
            // Per-kernel VJP throughput from the profiler's time-series ring.
            for name in ["prof.vjp_data_us", "prof.vjp_pde_us"] {
                if let Some(s) = mf_telemetry::published_series(name) {
                    eprint!(
                        "{}",
                        mf_observe::series_rate_line(
                            name,
                            s.rate_per_sec(10),
                            &s.recent_counts(30)
                        )
                    );
                }
            }
        }
    }
    logs
}

/// Distributed data-parallel training (Algorithm 1) on `world` simulated
/// devices. The LR schedule is scaled per §5.2 (√batch-growth for the max
/// LR, linear for the warmup fraction); every rank trains on its strided
/// shard and applies the identical averaged gradient.
pub fn train_ddp(
    world: usize,
    template: &SdNet,
    train: &Dataset,
    val: &Dataset,
    cfg: &TrainConfig,
    sync: GradSync,
) -> DdpResult {
    train_ddp_resumable(
        world,
        template,
        train,
        val,
        cfg,
        sync,
        FaultPlan::none(),
        None,
    )
    .unwrap_or_else(|e| panic!("cluster failed: {e}"))
}

/// [`train_ddp`] with fault injection and periodic checkpoint/restart.
///
/// * `plan` wraps the cluster's communicator in the `mf-faultsim` layer;
///   [`FaultPlan::none`] reproduces `train_ddp` exactly (same messages,
///   same numerics).
/// * `ckpt`, when given, saves a per-rank [`TrainState`] every
///   `every_steps` optimizer steps (atomic write, keep-K pruning). On
///   entry every rank offers its newest on-disk step and the cluster
///   resumes from the *minimum* common step — or from scratch if any rank
///   has nothing. A resumed run replays the epoch's batch list from the
///   sampler snapshot and continues bitwise-identically to a run that was
///   never interrupted.
///
/// Rank panics (including injected crashes) surface as a typed
/// [`ClusterError`] naming the failed rank instead of hanging.
#[allow(clippy::too_many_arguments)]
pub fn train_ddp_resumable(
    world: usize,
    template: &SdNet,
    train: &Dataset,
    val: &Dataset,
    cfg: &TrainConfig,
    sync: GradSync,
    plan: FaultPlan,
    ckpt: Option<&CheckpointConfig>,
) -> Result<DdpResult, ClusterError> {
    let schedule = cfg.schedule.scaled_for_devices(world);
    let results = Cluster::try_run(world, plan, |comm| {
        let rank = comm.rank();
        // Align per-rank clocks at the run's first barrier so the merged
        // trace rows share a time base (barrier-only: no link messages).
        comm.align_clocks();
        let shard = train.shard(rank, world);
        let mut net = template.clone();
        let mut sampler = BatchSampler::new(
            cfg.batch_size,
            cfg.qd,
            cfg.qc,
            cfg.seed.wrapping_add(rank as u64),
        );
        let mut opt = make_opt(cfg.opt);
        let mut eval = EvalPlan::new();
        let mut logs = Vec::new();
        let mut global_step = 0usize;
        let mut train_seconds = 0.0;
        let mut start_epoch = 0usize;
        let mut resume_skip = 0usize;
        let mut dl = 0.0;
        let mut pl = 0.0;
        let mut step_secs_per_rank: Vec<Vec<f64>> = vec![Vec::new(); world];

        // Resume negotiation: every rank offers its newest checkpointed
        // step (−1 when it has none); the run restarts from the newest
        // step *all* ranks have, so a crash that interrupted some ranks
        // mid-save rolls everyone back to a consistent state.
        if let Some(ck) = ckpt {
            let mine = latest_step(ck, rank).map(|s| s as f64).unwrap_or(-1.0);
            let offers = comm.allgather(&[mine]);
            let common = offers.iter().map(|v| v[0]).fold(f64::INFINITY, f64::min);
            if common >= 0.0 {
                let state = load_checkpoint(ck, common as usize, rank).unwrap_or_else(|e| {
                    panic!("rank {rank}: failed to load checkpoint at step {common}: {e}")
                });
                net = state.net;
                opt.import_state(&state.opt);
                sampler = BatchSampler::restore(&state.sampler_at_epoch_start);
                global_step = state.step;
                start_epoch = state.epoch;
                resume_skip = state.batch_in_epoch;
                train_seconds = state.train_seconds;
                dl = state.data_loss_sum;
                pl = state.pde_loss_sum;
                logs = state.logs;
            }
        }

        for epoch in start_epoch..cfg.epochs {
            let t0 = Instant::now();
            // Snapshot the sampler *before* drawing the epoch, so a
            // checkpoint taken mid-epoch can regenerate the identical
            // batch list and skip into it.
            let sampler_at_epoch_start = sampler.state();
            let skip = if epoch == start_epoch { resume_skip } else { 0 };
            if skip == 0 {
                dl = 0.0;
                pl = 0.0;
            }
            let batches = sampler.epoch(&shard);
            // Keep ranks in lockstep: all shards have the same batch count
            // because shards differ in size by at most one sample and the
            // sampler drops partial batches; assert to catch mismatches.
            let nb = comm.allreduce_scalar(batches.len() as f64) / world as f64;
            assert_eq!(
                nb as usize,
                batches.len(),
                "rank {rank}: shard batch counts diverged"
            );
            for (bi, batch) in batches.iter().enumerate().skip(skip) {
                let lr = schedule.lr_at(global_step);
                mf_observe::set_step_context(epoch as u64, global_step as u64);
                mf_telemetry::span!("train.step", epoch = epoch as f64);
                let m = crate::step::train_metrics();
                let _step_timer = m.step_us.time();
                let (dg, pg, stats) = crate::step::local_gradients(&net, batch, cfg.pde_weight);
                let mut grads: Vec<Tensor> = {
                    mf_telemetry::span!("train.sync");
                    let _t = m.sync_us.time();
                    match sync {
                        GradSync::Fused => {
                            let local: Vec<Tensor> =
                                dg.iter().zip(&pg).map(|(a, b)| a.add(b)).collect();
                            let mut flat = flatten(&local);
                            comm.allreduce_mean(&mut flat);
                            unflatten_like(&flat, &local)
                        }
                        GradSync::PerLoss => {
                            let mut fd = flatten(&dg);
                            comm.allreduce_mean(&mut fd);
                            let mut fp = flatten(&pg);
                            comm.allreduce_mean(&mut fp);
                            let d = unflatten_like(&fd, &dg);
                            let p = unflatten_like(&fp, &pg);
                            d.iter().zip(&p).map(|(a, b)| a.add(b)).collect()
                        }
                        GradSync::OrderedFused => {
                            let local: Vec<Tensor> =
                                dg.iter().zip(&pg).map(|(a, b)| a.add(b)).collect();
                            let mut flat = flatten(&local);
                            comm.allreduce_mean_ordered(&mut flat);
                            unflatten_like(&flat, &local)
                        }
                    }
                };
                if let Some(max) = cfg.clip_norm {
                    mf_opt::clip_grad_norm(&mut grads, max);
                }
                {
                    mf_telemetry::span!("train.opt");
                    let _t = m.opt_us.time();
                    opt.step_net(&mut net, &grads, lr);
                }
                mf_observe::record(
                    RecKind::Step,
                    "train.step",
                    rank as u64,
                    stats.data_loss + stats.pde_loss,
                );
                dl += stats.data_loss;
                pl += stats.pde_loss;
                global_step += 1;
                // Make this step's metrics visible to a live /metrics
                // scrape (a warm publish does not allocate).
                mf_telemetry::publish_thread();
                if let Some(ck) = ckpt {
                    if global_step.is_multiple_of(ck.every_steps) {
                        let state = TrainState {
                            step: global_step,
                            epoch,
                            batch_in_epoch: bi + 1,
                            train_seconds: train_seconds + t0.elapsed().as_secs_f64(),
                            data_loss_sum: dl,
                            pde_loss_sum: pl,
                            net: net.clone(),
                            opt: opt.export_state(),
                            sampler_at_epoch_start: sampler_at_epoch_start.clone(),
                            logs: logs.clone(),
                        };
                        save_checkpoint(ck, rank, &state)
                            .unwrap_or_else(|e| panic!("rank {rank}: checkpoint save failed: {e}"));
                    }
                }
            }
            let epoch_secs = t0.elapsed().as_secs_f64();
            train_seconds += epoch_secs;
            if rank == 0 {
                let nb = batches.len().max(1) as f64;
                logs.push(EpochLog {
                    epoch,
                    data_loss: dl / nb,
                    pde_loss: pl / nb,
                    val_mse: eval.mse(&net, val),
                    seconds: train_seconds,
                });
            }
            if mf_observe::watch_enabled() {
                // Straggler view: gather every rank's mean step time for
                // this epoch and render one sparkline row per rank. Watch
                // mode is opt-in, so the extra allgather never runs under
                // the pinned-message-count regression fixtures.
                let mean_step = epoch_secs / batches.len().max(1) as f64;
                let gathered = comm.allgather(&[mean_step]);
                if rank == 0 {
                    for (r, v) in gathered.iter().enumerate() {
                        step_secs_per_rank[r].push(v[0]);
                    }
                    let losses: Vec<f64> = logs.iter().map(|l| l.data_loss + l.pde_loss).collect();
                    eprint!(
                        "{}",
                        mf_observe::train_watch_report(epoch, &losses, &step_secs_per_rank)
                    );
                    // Per-kernel VJP throughput from the published
                    // time-series rings (all ranks merged; reading the
                    // publication slots sends no messages).
                    for name in ["prof.vjp_data_us", "prof.vjp_pde_us"] {
                        if let Some(s) = mf_telemetry::published_series(name) {
                            eprint!(
                                "{}",
                                mf_observe::series_rate_line(
                                    name,
                                    s.rate_per_sec(10),
                                    &s.recent_counts(30)
                                )
                            );
                        }
                    }
                }
            }
        }
        if mf_telemetry::metrics_report_enabled() {
            mf_dist::print_merged_report(comm);
        }
        (net.params.flatten(), logs, comm.stats())
    })?;

    let comm_stats = results.iter().map(|(_, _, s)| *s).collect();
    let (params_flat, logs, _) = results.into_iter().next().unwrap();
    Ok(DdpResult {
        params_flat,
        logs,
        comm_stats,
    })
}

fn flatten(grads: &[Tensor]) -> Vec<f64> {
    let mut out = Vec::with_capacity(grads.iter().map(|t| t.numel()).sum());
    for t in grads {
        out.extend_from_slice(t.as_slice());
    }
    out
}

fn unflatten_like(flat: &[f64], like: &[Tensor]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(like.len());
    let mut off = 0;
    for t in like {
        let n = t.numel();
        out.push(Tensor::from_vec(
            t.rows(),
            t.cols(),
            flat[off..off + n].to_vec(),
        ));
        off += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_data::SubdomainSpec;
    use mf_nn::SdNetConfig;
    use mf_opt::Decay;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_net(seed: u64, boundary_len: usize) -> SdNet {
        let mut cfg = SdNetConfig::small(boundary_len);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![12, 12];
        SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    fn tiny_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 2,
            qd: 8,
            qc: 4,
            pde_weight: 0.05,
            schedule: LrSchedule {
                max_lr: 3e-3,
                warmup_frac: 0.05,
                total_steps: epochs * 4,
                decay: Decay::Polynomial { power: 1.0 },
            },
            opt: OptKind::Adam,
            seed: 0,
            clip_norm: None,
        }
    }

    #[test]
    fn single_device_training_reduces_validation_mse() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        // 16 samples (12 train / 4 val) keep the validation signal stable;
        // with only 2 validation samples the MSE is too noisy to assert on.
        let ds = Dataset::generate(spec, 16, 2);
        let (train, val) = ds.split(0.8);
        let mut net = tiny_net(0, spec.boundary_len());
        let before = evaluate_mse(&net, &val);
        let logs = train_single(&mut net, &train, &val, &tiny_cfg(30));
        let after = logs.last().unwrap().val_mse;
        assert!(
            after < before * 0.8,
            "val MSE did not improve: {before} -> {after}"
        );
        // Training loss must also have dropped substantially.
        assert!(
            logs.last().unwrap().data_loss < logs[0].data_loss * 0.5,
            "data loss: {} -> {}",
            logs[0].data_loss,
            logs.last().unwrap().data_loss
        );
        // Logs are complete and time is monotone.
        assert_eq!(logs.len(), 30);
        assert!(logs.windows(2).all(|w| w[1].seconds >= w[0].seconds));
    }

    #[test]
    fn ddp_ranks_agree_and_learn() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 8, 1);
        let (train, val) = ds.split(0.75);
        let template = tiny_net(1, spec.boundary_len());
        let before = evaluate_mse(&template, &val);
        let res = train_ddp(2, &template, &train, &val, &tiny_cfg(6), GradSync::Fused);
        assert_eq!(res.logs.len(), 6);
        let after = res.logs.last().unwrap().val_mse;
        assert!(after < before, "DDP did not learn: {before} -> {after}");
        // Communication happened on both ranks and is symmetric in volume.
        assert!(res.comm_stats[0].msgs_sent > 0);
        assert_eq!(res.comm_stats[0].bytes_sent, res.comm_stats[1].bytes_sent);
    }

    #[test]
    fn clipped_training_still_learns() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 10, 3);
        let (train, val) = ds.split(0.8);
        let mut net = tiny_net(5, spec.boundary_len());
        let before = evaluate_mse(&net, &val);
        let mut cfg = tiny_cfg(20);
        cfg.clip_norm = Some(1.0);
        let logs = train_single(&mut net, &train, &val, &cfg);
        assert!(
            logs.last().unwrap().val_mse < before,
            "clipped training did not improve: {} -> {}",
            before,
            logs.last().unwrap().val_mse
        );
    }

    #[test]
    fn eval_plan_matches_graph_path_and_recompiles_after_updates() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 6, 11);
        let (train, val) = ds.split(0.5);
        let mut net = tiny_net(9, spec.boundary_len());
        let q = spec.m * spec.m;
        let mut pts = Vec::new();
        for j in 0..spec.m {
            for i in 0..spec.m {
                let (x, y) = spec.coords(j, i);
                pts.push(x);
                pts.push(y);
            }
        }
        let points = Tensor::from_vec(q, 2, pts);

        // The compiled evaluation path is bitwise-identical to the graph
        // path, and a second evaluation reuses the cached plan.
        let mut eval = EvalPlan::new();
        let a = eval.mse(&net, &val);
        assert_eq!(a.to_bits(), graph_mse(&net, &val, &points, q).to_bits());
        let v0 = eval.cached.as_ref().unwrap().params_version();
        let b = eval.mse(&net, &val);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(eval.cached.as_ref().unwrap().params_version(), v0);

        // An optimizer step bumps the parameter version; the next
        // evaluation recompiles instead of serving stale weights.
        let _ = train_single(&mut net, &train, &val, &tiny_cfg(1));
        assert!(eval.cached.as_ref().unwrap().is_stale(&net));
        let c = eval.mse(&net, &val);
        assert!(eval.cached.as_ref().unwrap().params_version() > v0);
        assert_eq!(c.to_bits(), graph_mse(&net, &val, &points, q).to_bits());
    }

    #[test]
    fn evaluate_mse_is_zero_for_perfect_oracle() {
        // A network can't be perfect, but MSE must be exactly 0 when
        // predictions equal the stored solution — check the plumbing by
        // comparing a solution against itself through the same code path.
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 1, 2);
        // evaluate by hand: reuse the internal point layout.
        let s = &ds.samples[0];
        let q = spec.m * spec.m;
        let mut pts = Vec::new();
        for j in 0..spec.m {
            for i in 0..spec.m {
                let (x, y) = spec.coords(j, i);
                pts.push(x);
                pts.push(y);
            }
        }
        assert_eq!(pts.len(), q * 2);
        // The flattened row-major order of the solution must match the
        // point order used by evaluate_mse.
        let first_xy = (pts[0], pts[1]);
        assert_eq!(first_xy, (0.0, 0.0));
        assert_eq!(s.solution.get(0, 0), s.solution.as_slice()[0]);
    }
}
