//! Parameter storage that persists across training iterations.
//!
//! The autodiff [`Graph`](mf_autodiff::Graph) is rebuilt every step (it is
//! a tape); parameters must outlive it. [`Params`] owns the tensors,
//! [`Params::bind`] registers them as differentiable leaves on a fresh
//! graph, and the optimizer updates them in place through
//! [`Params::tensors_mut`] or the flat-vector view used by the distributed
//! allreduce.

use mf_autodiff::{Graph, Var};
use mf_tensor::Tensor;

/// Index of a parameter within a [`Params`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Named, ordered collection of parameter tensors.
#[derive(Clone, Debug, Default)]
pub struct Params {
    entries: Vec<(String, Tensor)>,
    /// Monotonic mutation counter. Bumped by every handle that can change
    /// a parameter value (`get_mut`, `tensors_mut`, `unflatten`), so
    /// derived artifacts — compiled inference plans, cached projections —
    /// can detect staleness with a single integer compare instead of
    /// hashing tensors.
    version: u64,
}

/// Graph leaves for one binding of a [`Params`] store.
#[derive(Clone, Debug)]
pub struct Bound {
    vars: Vec<Var>,
}

impl Params {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the returned id is stable for the lifetime of
    /// the store.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.version += 1;
        self.entries.push((name.into(), value));
        ParamId(self.entries.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.numel()).sum()
    }

    /// Access a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].1
    }

    /// Mutable access to a parameter tensor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.version += 1;
        &mut self.entries[id.0].1
    }

    /// Current mutation-counter value. Two reads returning the same number
    /// guarantee no mutable handle was taken in between; a changed number
    /// means cached derived state (e.g. an `InferencePlan`) must be
    /// recompiled. The counter is conservative: taking a mutable handle
    /// bumps it even if the value is written back unchanged.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Parameter name (for debugging / serialization).
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].0
    }

    /// Iterate over `(name, tensor)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Mutable iterator over tensors in registration order (optimizer use).
    pub fn tensors_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.version += 1;
        self.entries.iter_mut().map(|(_, t)| t)
    }

    /// Register all parameters as leaves on `g`, in order.
    pub fn bind(&self, g: &mut Graph) -> Bound {
        Bound {
            vars: self.entries.iter().map(|(_, t)| g.leaf_from(t)).collect(),
        }
    }

    /// Concatenate all parameters into one flat vector (allreduce wire
    /// format).
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.numel());
        for (_, t) in &self.entries {
            out.extend_from_slice(t.as_slice());
        }
        out
    }

    /// Overwrite all parameters from a flat vector produced by a store with
    /// the same structure.
    pub fn unflatten(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.numel(), "unflatten: length mismatch");
        self.version += 1;
        let mut off = 0;
        for (_, t) in &mut self.entries {
            let n = t.numel();
            t.as_mut_slice().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }
}

impl Bound {
    /// The graph leaf for a parameter.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// All leaves, in registration order — pass to
    /// [`Graph::grad`](mf_autodiff::Graph::grad) to get every gradient.
    pub fn all_vars(&self) -> &[Var] {
        &self.vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::ones(2, 3));
        assert_eq!(p.len(), 1);
        assert_eq!(p.numel(), 6);
        assert_eq!(p.name(id), "w");
        assert_eq!(p.get(id).shape(), (2, 3));
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut p = Params::new();
        p.add("a", Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        p.add("b", Tensor::from_vec(2, 1, vec![4.0, 5.0]));
        let flat = p.flatten();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut q = p.clone();
        q.unflatten(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(q.flatten(), vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        // Structure preserved.
        assert_eq!(q.get(ParamId(1)).shape(), (2, 1));
    }

    #[test]
    fn version_bumps_on_every_mutable_handle() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::ones(2, 2));
        let v0 = p.version();
        // Read-only accessors leave the counter alone.
        let _ = p.get(id);
        let _ = p.iter().count();
        let _ = p.flatten();
        assert_eq!(p.version(), v0);
        // Every mutable handle bumps it, even without a write.
        let _ = p.get_mut(id);
        assert!(p.version() > v0);
        let v1 = p.version();
        for _ in p.tensors_mut() {}
        assert!(p.version() > v1);
        let v2 = p.version();
        let flat = p.flatten();
        p.unflatten(&flat);
        assert!(p.version() > v2);
    }

    #[test]
    fn bind_creates_leaves_with_current_values() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::full(2, 2, 3.0));
        let mut g = Graph::new();
        let bound = p.bind(&mut g);
        assert!(g.requires_grad(bound.var(id)));
        assert_eq!(g.value(bound.var(id)).get(1, 1), 3.0);
        assert_eq!(bound.all_vars().len(), 1);
    }

    #[test]
    fn gradients_flow_to_bound_parameters() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::from_vec(1, 2, vec![2.0, 5.0]));
        let mut g = Graph::new();
        let b = p.bind(&mut g);
        let w = b.var(id);
        let sq = g.mul(w, w);
        let loss = g.sum(sq);
        let grads = g.grad(loss, b.all_vars());
        assert_eq!(g.value(grads[0]).as_slice(), &[4.0, 10.0]);
    }
}
