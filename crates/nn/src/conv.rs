//! Circular 1-D convolution for boundary embedding.
//!
//! The discretized boundary condition is a closed curve around the
//! subdomain, so the convolution pads circularly. It is implemented as
//! `unfold → GEMM → reshape` (im2col), which keeps the whole layer inside
//! the autodiff primitive set — derivatives of any order come for free
//! through the GEMM and fold/unfold rules.
//!
//! Layout convention: a batch of `B` signals of `L` positions × `C`
//! channels is a `[B, L·C]` tensor, position-major (`index = pos·C + ch`).

use crate::linear::{uniform_init, xavier_bound};
use crate::params::{Bound, ParamId, Params};
use mf_autodiff::{Graph, Var};
use mf_tensor::Layout;
use mf_tensor::Tensor;
use rand::Rng;

/// Circular 1-D convolution layer: `in_ch → out_ch` channels, odd kernel.
#[derive(Clone, Debug)]
pub struct CircularConv1d {
    w: ParamId,
    b: Option<ParamId>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
}

impl CircularConv1d {
    /// New layer with Xavier-uniform filters.
    pub fn new(
        ps: &mut Params,
        rng: &mut impl Rng,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        bias: bool,
    ) -> Self {
        assert!(
            kernel % 2 == 1,
            "CircularConv1d: kernel must be odd, got {kernel}"
        );
        let fan_in = in_ch * kernel;
        let bound = xavier_bound(fan_in, out_ch);
        // Filter matrix [out_ch × k·in_ch], matching the unfold layout.
        let w = ps.add(
            format!("{name}.w"),
            uniform_init(rng, out_ch, fan_in, bound),
        );
        let b = bias.then(|| ps.add(format!("{name}.b"), Tensor::zeros(1, out_ch)));
        Self {
            w,
            b,
            in_ch,
            out_ch,
            kernel,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Filter parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter id, if the layer has one.
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }

    /// Forward pass: `x` is `[B, L·in_ch]`, result `[B, L·out_ch]`.
    pub fn forward(&self, g: &mut Graph, bound: &Bound, x: Var) -> Var {
        let (batch, width) = g.value(x).shape();
        assert_eq!(
            width % self.in_ch,
            0,
            "CircularConv1d: width {width} not divisible by {} channels",
            self.in_ch
        );
        let len = width / self.in_ch;
        let u = g.unfold1d(x, self.in_ch, self.kernel); // [B·L, k·in_ch]
        let w = bound.var(self.w);
        let mut y = g.matmul_layout(u, Layout::Normal, w, Layout::Transposed); // [B·L, out_ch]
        if let Some(b) = self.b {
            y = g.add_bias(y, bound.var(b));
        }
        // [B·L, out_ch] → [B, L·out_ch]: contiguous row-major data already
        // has the position-major interleaving, so this is a pure reshape.
        g.reshape(y, batch, len * self.out_ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn identity_kernel(ps: &mut Params, conv: &CircularConv1d) {
        // Kernel [1×k] with 1 at the center: output == input.
        let k = conv.kernel();
        let mut w = Tensor::zeros(1, k);
        w.set(0, (k - 1) / 2, 1.0);
        *ps.get_mut(conv.weight()) = w;
    }

    #[test]
    fn center_tap_identity() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let conv = CircularConv1d::new(&mut ps, &mut rng, "c", 1, 1, 3, false);
        identity_kernel(&mut ps, &conv);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.leaf(Tensor::row_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        let y = conv.forward(&mut g, &b, x);
        assert!(g.value(y).allclose(g.value(x), 1e-12));
    }

    #[test]
    fn moving_average_wraps_circularly() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let conv = CircularConv1d::new(&mut ps, &mut rng, "c", 1, 1, 3, false);
        *ps.get_mut(conv.weight()) = Tensor::row_vector(&[1.0, 1.0, 1.0]);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.leaf(Tensor::row_vector(&[1.0, 0.0, 0.0, 10.0]));
        let y = conv.forward(&mut g, &b, x);
        // Position 0 sees (wrap) 10 + 1 + 0 = 11; position 3 sees 0 + 10 + 1.
        assert_eq!(g.value(y).as_slice(), &[11.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn shift_equivariance() {
        // Circular convolution commutes with circular shifts.
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let conv = CircularConv1d::new(&mut ps, &mut rng, "c", 1, 2, 5, true);
        let signal: Vec<f64> = (0..12).map(|i| ((i as f64) * 0.7).sin()).collect();
        let shift = 3usize;
        let shifted: Vec<f64> = (0..12).map(|i| signal[(i + 12 - shift) % 12]).collect();

        let run = |sig: &[f64]| {
            let mut g = Graph::new();
            let b = ps.bind(&mut g);
            let x = g.leaf(Tensor::row_vector(sig));
            let y = conv.forward(&mut g, &b, x);
            g.value(y).clone()
        };
        let y0 = run(&signal);
        let y1 = run(&shifted);
        // Output at position p (2 channels) of shifted input equals output
        // at position p - shift of the original.
        for p in 0..12 {
            let q = (p + 12 - shift) % 12;
            for ch in 0..2 {
                let a = y1.get(0, p * 2 + ch);
                let e = y0.get(0, q * 2 + ch);
                assert!((a - e).abs() < 1e-12, "pos {p} ch {ch}");
            }
        }
    }

    #[test]
    fn multi_channel_shapes() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let c1 = CircularConv1d::new(&mut ps, &mut rng, "c1", 1, 4, 3, true);
        let c2 = CircularConv1d::new(&mut ps, &mut rng, "c2", 4, 2, 3, true);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.leaf(Tensor::ones(3, 8)); // 3 signals × 8 positions
        let h = c1.forward(&mut g, &b, x);
        assert_eq!(g.value(h).shape(), (3, 32));
        let y = c2.forward(&mut g, &b, h);
        assert_eq!(g.value(y).shape(), (3, 16));
    }

    #[test]
    fn gradients_flow_through_conv() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let conv = CircularConv1d::new(&mut ps, &mut rng, "c", 1, 2, 3, true);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.leaf(Tensor::row_vector(&[1.0, -1.0, 2.0, 0.5]));
        let y = conv.forward(&mut g, &b, x);
        let loss = g.mean(y);
        let grads = g.grad(loss, b.all_vars());
        // Weight gradient must be non-zero and finite.
        let dw = g.value(grads[0]);
        assert!(dw.norm_l2() > 0.0);
        assert!(dw.as_slice().iter().all(|v| v.is_finite()));
        // Input gradient too.
        let dx = g.grad(loss, &[x])[0];
        assert!(g.value(dx).norm_l2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn rejects_even_kernel() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = CircularConv1d::new(&mut ps, &mut rng, "c", 1, 1, 4, false);
    }
}
