//! Activation functions applied through the autodiff graph.

use mf_autodiff::{Graph, Var};

/// Pointwise nonlinearity.
///
/// The paper uses GELU because PINN training converges better with smooth
/// activations (§3.1); Tanh is the classic PINN choice and Identity makes
/// layers linear for testing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op.
    Identity,
}

impl Activation {
    /// Apply the activation on the graph.
    pub fn apply(&self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Gelu => g.gelu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Identity => x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_tensor::Tensor;

    #[test]
    fn identity_returns_same_var() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(2, 2));
        assert_eq!(Activation::Identity.apply(&mut g, x), x);
    }

    #[test]
    fn tanh_and_gelu_are_bounded_reasonably() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[-10.0, 0.0, 10.0]));
        let t = Activation::Tanh.apply(&mut g, x);
        assert!(g.value(t).norm_linf() <= 1.0);
        let e = Activation::Gelu.apply(&mut g, x);
        // GELU(x) → x for large positive x, → 0 for large negative x.
        assert!((g.value(e).get(0, 2) - 10.0).abs() < 1e-6);
        assert!(g.value(e).get(0, 0).abs() < 1e-6);
    }
}
