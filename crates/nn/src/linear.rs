//! Fully-connected layer.

use crate::params::{Bound, ParamId, Params};
use mf_autodiff::{Graph, Var};
use mf_tensor::{Layout, Tensor};
use rand::Rng;

/// `y = x·Wᵀ + b` with `W: [out×in]`, `b: [1×out]` broadcast over rows.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

/// Xavier/Glorot uniform initialization bound for a `fan_in → fan_out`
/// weight matrix.
pub(crate) fn xavier_bound(fan_in: usize, fan_out: usize) -> f64 {
    (6.0 / (fan_in + fan_out) as f64).sqrt()
}

/// A `rows×cols` tensor with entries `U(-bound, bound)`.
pub(crate) fn uniform_init(rng: &mut impl Rng, rows: usize, cols: usize, bound: f64) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
}

impl Linear {
    /// New layer with Xavier-uniform weights and zero bias.
    pub fn new(
        ps: &mut Params,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let bound = xavier_bound(in_dim, out_dim);
        let w = ps.add(
            format!("{name}.w"),
            uniform_init(rng, out_dim, in_dim, bound),
        );
        let b = bias.then(|| ps.add(format!("{name}.b"), Tensor::zeros(1, out_dim)));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter id, if the layer has one.
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }

    /// Forward pass: `x` is `[n×in]`, result `[n×out]`.
    pub fn forward(&self, g: &mut Graph, bound: &Bound, x: Var) -> Var {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear::forward: expected {} input features, got {}",
            self.in_dim,
            g.value(x).cols()
        );
        let w = bound.var(self.w);
        let mut y = g.matmul_layout(x, Layout::Normal, w, Layout::Transposed);
        if let Some(b) = self.b {
            y = g.add_bias(y, bound.var(b));
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let lin = Linear::new(&mut ps, &mut rng, "l", 3, 4, true);
        // Make weights/bias deterministic.
        *ps.get_mut(lin.weight()) = Tensor::from_fn(4, 3, |r, c| (r + c) as f64);
        *ps.get_mut(lin.bias().unwrap()) = Tensor::row_vector(&[1.0, 1.0, 1.0, 1.0]);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.leaf(Tensor::ones(2, 3));
        let y = lin.forward(&mut g, &b, x);
        assert_eq!(g.value(y).shape(), (2, 4));
        // Row of W sums: [0+1+2, 1+2+3, 2+3+4, 3+4+5] + 1.
        assert_eq!(g.value(y).row(0), &[4.0, 7.0, 10.0, 13.0]);
    }

    #[test]
    fn xavier_init_scale_is_sane() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lin = Linear::new(&mut ps, &mut rng, "l", 128, 128, false);
        let w = ps.get(lin.weight());
        let bound = xavier_bound(128, 128);
        assert!(w.norm_linf() <= bound);
        // Mean near zero, at least some spread.
        assert!(w.mean().abs() < bound / 10.0);
        assert!(w.norm_l2() > 0.0);
    }

    #[test]
    fn gradient_of_weights_matches_outer_product() {
        // loss = sum(x·Wᵀ) ⇒ dW = 1ᵀ... dW[o,i] = sum_n x[n,i].
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lin = Linear::new(&mut ps, &mut rng, "l", 2, 2, false);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.constant(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = lin.forward(&mut g, &b, x);
        let loss = g.sum(y);
        let grads = g.grad(loss, b.all_vars());
        let dw = g.value(grads[0]);
        assert_eq!(dw.as_slice(), &[9.0, 12.0, 9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn rejects_wrong_input_width() {
        let mut ps = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let lin = Linear::new(&mut ps, &mut rng, "l", 3, 2, false);
        let mut g = Graph::new();
        let b = ps.bind(&mut g);
        let x = g.leaf(Tensor::ones(1, 5));
        let _ = lin.forward(&mut g, &b, x);
    }
}
