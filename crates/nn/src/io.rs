//! Model serialization: save and load trained SDNets.
//!
//! The paper's reusability story depends on a **library of pre-trained
//! SDNets** ("the SDNets can be trained in minutes, allowing for the
//! creation of a library of models for different PDEs"). This module
//! provides the on-disk format for that library: a small self-describing
//! binary layout (magic + version + architecture + named parameter
//! tensors, little-endian f64) with no external dependencies.

use crate::{Activation, EmbeddingKind, SdNet, SdNetConfig};
use mf_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MFSDNET1";

pub mod wire {
    //! Little-endian wire primitives of the model format, exposed so
    //! other crates (the trainer's checkpoint format, notably) can share
    //! one encoding instead of inventing a second one.

    use mf_tensor::Tensor;
    use std::io::{self, Read, Write};

    /// Write a `u64` little-endian.
    pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    /// Write an `f64` little-endian.
    pub fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
        write_u64(w, s.len() as u64)?;
        w.write_all(s.as_bytes())
    }

    /// Write a tensor as `rows, cols, values…`.
    pub fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
        write_u64(w, t.rows() as u64)?;
        write_u64(w, t.cols() as u64)?;
        for &v in t.as_slice() {
            write_f64(w, v)?;
        }
        Ok(())
    }

    /// Read a `u64` little-endian.
    pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f64` little-endian.
    pub fn read_f64(r: &mut impl Read) -> io::Result<f64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    /// Read a length-prefixed UTF-8 string (length capped at 1 MiB).
    pub fn read_str(r: &mut impl Read) -> io::Result<String> {
        let n = read_u64(r)? as usize;
        if n > 1 << 20 {
            return Err(bad("string length out of range"));
        }
        let mut buf = vec![0u8; n];
        r.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| bad("invalid UTF-8 in model file"))
    }

    /// Read a tensor written by [`write_tensor`] (elements capped at
    /// 2²⁶ ≈ 64M to bound allocation on corrupt input).
    pub fn read_tensor(r: &mut impl Read) -> io::Result<Tensor> {
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        if rows.saturating_mul(cols) > 1 << 26 {
            return Err(bad("tensor size out of range"));
        }
        let mut data = vec![0.0; rows * cols];
        for v in &mut data {
            *v = read_f64(r)?;
        }
        Ok(Tensor::from_vec(rows, cols, data))
    }

    /// An `InvalidData` error with the given message.
    pub fn bad(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg)
    }
}

use wire::{bad, read_f64, read_str, read_u64, write_f64, write_str, write_u64};

impl SdNet {
    /// Serialize the architecture and all parameters to a writer.
    pub fn save_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        let cfg = self.config();
        write_u64(w, cfg.boundary_len as u64)?;
        write_u64(w, cfg.conv_channels.len() as u64)?;
        for &c in &cfg.conv_channels {
            write_u64(w, c as u64)?;
        }
        write_u64(w, cfg.conv_kernel as u64)?;
        write_u64(w, cfg.hidden.len() as u64)?;
        for &h in &cfg.hidden {
            write_u64(w, h as u64)?;
        }
        write_u64(w, matches!(cfg.embedding, EmbeddingKind::Concat) as u64)?;
        write_u64(
            w,
            match cfg.activation {
                Activation::Gelu => 0,
                Activation::Tanh => 1,
                Activation::Identity => 2,
            },
        )?;
        write_f64(w, cfg.coord_extent)?;
        write_u64(w, cfg.coord_fourier as u64)?;

        write_u64(w, self.params.len() as u64)?;
        for (name, t) in self.params.iter() {
            write_str(w, name)?;
            write_u64(w, t.rows() as u64)?;
            write_u64(w, t.cols() as u64)?;
            for &v in t.as_slice() {
                write_f64(w, v)?;
            }
        }
        Ok(())
    }

    /// Deserialize a network saved with [`SdNet::save_to`].
    ///
    /// The architecture is rebuilt from the stored config (with a dummy
    /// RNG — every parameter is then overwritten by the stored values),
    /// and the parameter list is validated name-by-name and
    /// shape-by-shape.
    pub fn load_from(r: &mut impl Read) -> io::Result<SdNet> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a Mosaic Flow SDNet file (bad magic)"));
        }
        let boundary_len = read_u64(r)? as usize;
        let n_conv = read_u64(r)? as usize;
        if n_conv > 64 {
            return Err(bad("conv layer count out of range"));
        }
        let mut conv_channels = Vec::with_capacity(n_conv);
        for _ in 0..n_conv {
            conv_channels.push(read_u64(r)? as usize);
        }
        let conv_kernel = read_u64(r)? as usize;
        let n_hidden = read_u64(r)? as usize;
        if n_hidden == 0 || n_hidden > 64 {
            return Err(bad("hidden layer count out of range"));
        }
        let mut hidden = Vec::with_capacity(n_hidden);
        for _ in 0..n_hidden {
            hidden.push(read_u64(r)? as usize);
        }
        let embedding = if read_u64(r)? == 1 {
            EmbeddingKind::Concat
        } else {
            EmbeddingKind::Split
        };
        let activation = match read_u64(r)? {
            0 => Activation::Gelu,
            1 => Activation::Tanh,
            2 => Activation::Identity,
            _ => return Err(bad("unknown activation id")),
        };
        let coord_extent = read_f64(r)?;
        let coord_fourier = read_u64(r)? as usize;
        if coord_fourier > 32 {
            return Err(bad("fourier frequency count out of range"));
        }
        let config = SdNetConfig {
            boundary_len,
            conv_channels,
            conv_kernel,
            hidden,
            embedding,
            activation,
            coord_extent,
            coord_fourier,
        };
        use rand::SeedableRng;
        let mut net = SdNet::new(config, &mut rand_chacha::ChaCha8Rng::seed_from_u64(0));

        let n_params = read_u64(r)? as usize;
        if n_params != net.params.len() {
            return Err(bad(
                "parameter count does not match the stored architecture",
            ));
        }
        // Overwrite each parameter after validating identity.
        let expected: Vec<(String, (usize, usize))> = net
            .params
            .iter()
            .map(|(n, t)| (n.to_string(), t.shape()))
            .collect();
        for (i, (exp_name, exp_shape)) in expected.iter().enumerate() {
            let name = read_str(r)?;
            let rows = read_u64(r)? as usize;
            let cols = read_u64(r)? as usize;
            if &name != exp_name || (rows, cols) != *exp_shape {
                return Err(bad("parameter name/shape mismatch"));
            }
            let mut data = vec![0.0; rows * cols];
            for v in &mut data {
                *v = read_f64(r)?;
            }
            *net.params.get_mut(crate::params::ParamId(i)) = Tensor::from_vec(rows, cols, data);
        }
        Ok(net)
    }

    /// Save to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.save_to(&mut f)
    }

    /// Load from a file path.
    pub fn load(path: impl AsRef<Path>) -> io::Result<SdNet> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::load_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn make_net() -> SdNet {
        let cfg = SdNetConfig {
            boundary_len: 16,
            conv_channels: vec![2, 3],
            conv_kernel: 3,
            hidden: vec![10, 8],
            embedding: EmbeddingKind::Split,
            activation: Activation::Gelu,
            coord_extent: 0.5,
            coord_fourier: 2,
        };
        SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(42))
    }

    #[test]
    fn roundtrip_preserves_predictions_exactly() {
        let net = make_net();
        let mut buf = Vec::new();
        net.save_to(&mut buf).unwrap();
        let loaded = SdNet::load_from(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.config().hidden, net.config().hidden);
        assert_eq!(loaded.config().conv_channels, net.config().conv_channels);
        assert_eq!(loaded.count_params(), net.count_params());

        let gb = Tensor::from_fn(2, 16, |r, c| ((r * 16 + c) as f64 * 0.3).sin());
        let x = Tensor::from_fn(6, 2, |r, c| 0.05 * (r * 2 + c) as f64);
        let a = net.predict(&gb, &x, 3);
        let b = loaded.predict(&gb, &x, 3);
        assert!(a.allclose(&b, 0.0), "predictions differ after roundtrip");
    }

    #[test]
    fn file_roundtrip() {
        let net = make_net();
        let path = std::env::temp_dir().join("mf_sdnet_io_test.mfn");
        net.save(&path).unwrap();
        let loaded = SdNet::load(&path).unwrap();
        assert_eq!(loaded.params.flatten(), net.params.flatten());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        make_net().save_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = SdNet::load_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_file() {
        let mut buf = Vec::new();
        make_net().save_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(SdNet::load_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn concat_and_tanh_variants_roundtrip() {
        let cfg = SdNetConfig {
            boundary_len: 8,
            conv_channels: vec![],
            conv_kernel: 3,
            hidden: vec![6],
            embedding: EmbeddingKind::Concat,
            activation: Activation::Tanh,
            coord_extent: 1.0,
            coord_fourier: 0,
        };
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(1));
        let mut buf = Vec::new();
        net.save_to(&mut buf).unwrap();
        let loaded = SdNet::load_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config().embedding, EmbeddingKind::Concat);
        assert_eq!(loaded.config().activation, Activation::Tanh);
        assert_eq!(loaded.config().coord_extent, 1.0);
    }
}
