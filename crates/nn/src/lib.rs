#![warn(missing_docs)]

//! Neural-network layers and the SDNet architecture (§3 of the paper).
//!
//! SDNet maps a discretized boundary condition `ĝ` and query coordinates
//! `x` to the BVP solution `u(x)`. Its architecture (Fig. 3):
//!
//! 1. a stack of **circular 1-D convolutions** embeds the boundary curve
//!    (closed around the subdomain, hence circular padding),
//! 2. the **input-split first layer** (§3.2) computes
//!    `φ(ĝW₁ᵀ ⊕ XW₂ᵀ)`, sharing the boundary embedding across all query
//!    points of that boundary instead of replicating it,
//! 3. a GELU MLP trunk and a scalar head.
//!
//! The *input-concat baseline* (replicating `ĝ` for every query point, as
//! in eq. 5/6) is also implemented; Fig. 5 compares the two.
//!
//! Parameters live in a [`Params`] store that persists across training
//! steps; each step binds them as graph leaves ([`Params::bind`]).

mod activation;
mod conv;
mod io;
mod linear;
mod params;
mod sdnet;

pub use activation::Activation;
pub use conv::CircularConv1d;
pub use io::wire;
pub use linear::Linear;
pub use params::{Bound, ParamId, Params};
pub use sdnet::{EmbeddingKind, SdNet, SdNetConfig};
