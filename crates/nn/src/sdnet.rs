//! SDNet: the physics-informed subdomain neural PDE solver (Fig. 3).

use crate::activation::Activation;
use crate::conv::CircularConv1d;
use crate::linear::{uniform_init, xavier_bound, Linear};
use crate::params::{Bound, ParamId, Params};
use mf_autodiff::{Graph, Var};
use mf_tensor::{Layout, Tensor};
use rand::Rng;

/// How the boundary embedding and the query coordinates enter the first
/// dense layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmbeddingKind {
    /// The paper's optimized *input-split* (§3.2, eq. 8): the boundary
    /// embedding is projected once per boundary and broadcast over its
    /// query points. First-layer cost O(Nd + qd), input memory 4N + 2q.
    Split,
    /// The *input-concat* baseline (eq. 5/6): the boundary embedding is
    /// replicated for every query point and concatenated with the
    /// coordinates. Cost O(qNd), memory q(4N + 2). Kept for the Fig.-5
    /// comparison; mathematically identical output.
    Concat,
}

/// Architecture hyperparameters for [`SdNet`].
#[derive(Clone, Debug)]
pub struct SdNetConfig {
    /// Length of the discretized boundary walk (4(m−1) for an m×m grid).
    pub boundary_len: usize,
    /// Output channels of each circular-conv embedding layer (empty for no
    /// convolutional embedding — the ablation baseline).
    pub conv_channels: Vec<usize>,
    /// Odd kernel width of the conv layers.
    pub conv_kernel: usize,
    /// Widths of the dense trunk (first entry is the split-layer output).
    pub hidden: Vec<usize>,
    /// Input embedding strategy.
    pub embedding: EmbeddingKind,
    /// Trunk nonlinearity.
    pub activation: Activation,
    /// Physical edge length of the training subdomain; query coordinates in
    /// `[0, coord_extent]` are affinely mapped to `[-1, 1]` before the
    /// first layer so the coordinate signal is not drowned out by the
    /// high-dimensional boundary embedding.
    pub coord_extent: f64,
    /// Number of Fourier feature frequencies for the coordinates: each
    /// normalized coordinate `x'` is augmented with
    /// `sin(2^j π x'), cos(2^j π x')` for `j = 0..k`. Zero disables the
    /// encoding. Fourier features are the standard remedy for the
    /// spectral bias of coordinate MLPs in PINNs; all derivatives flow
    /// through the graph's sin/cos rules, so the PDE loss still works.
    pub coord_fourier: usize,
}

impl SdNetConfig {
    /// A laptop-scale default for an `m×m` subdomain grid (boundary walk of
    /// `4(m-1)` points): two 4-channel convs and a 3×64 GELU trunk.
    pub fn small(boundary_len: usize) -> Self {
        Self {
            boundary_len,
            conv_channels: vec![4, 4],
            conv_kernel: 5,
            hidden: vec![64, 64, 64],
            embedding: EmbeddingKind::Split,
            activation: Activation::Gelu,
            coord_extent: 0.5,
            coord_fourier: 0,
        }
    }

    /// Width of the coordinate feature block fed to the split layer:
    /// the 2 normalized coordinates plus `4·coord_fourier` Fourier
    /// features.
    pub fn coord_features(&self) -> usize {
        2 + 4 * self.coord_fourier
    }

    /// Embedding dimension after the conv stack.
    pub fn embedded_len(&self) -> usize {
        self.boundary_len * self.conv_channels.last().copied().unwrap_or(1)
    }
}

/// The subdomain solver network: boundary embedding → input-split layer →
/// GELU MLP → scalar solution value.
#[derive(Clone, Debug)]
pub struct SdNet {
    config: SdNetConfig,
    /// Parameter store; bind it to a graph before calling
    /// [`SdNet::forward`].
    pub params: Params,
    convs: Vec<CircularConv1d>,
    w_g: ParamId,
    w_x: ParamId,
    b0: ParamId,
    trunk: Vec<Linear>,
    head: Linear,
}

impl SdNet {
    /// Build a network with freshly initialized parameters.
    pub fn new(config: SdNetConfig, rng: &mut impl Rng) -> Self {
        assert!(
            !config.hidden.is_empty(),
            "SdNet needs at least one hidden layer"
        );
        let mut params = Params::new();

        let mut convs = Vec::new();
        let mut in_ch = 1;
        for (i, &out_ch) in config.conv_channels.iter().enumerate() {
            convs.push(CircularConv1d::new(
                &mut params,
                rng,
                &format!("conv{i}"),
                in_ch,
                out_ch,
                config.conv_kernel,
                true,
            ));
            in_ch = out_ch;
        }

        let emb = config.embedded_len();
        let d0 = config.hidden[0];
        // Per-block fan-in (DeepONet-style): the 2-wide coordinate block
        // must not be initialized as if it shared the boundary block's
        // huge fan-in, or the network starts out ignoring the coordinates.
        let w_g = params.add(
            "split.wg",
            uniform_init(rng, d0, emb, xavier_bound(emb, d0)),
        );
        let cf = config.coord_features();
        let w_x = params.add("split.wx", uniform_init(rng, d0, cf, xavier_bound(cf, d0)));
        let b0 = params.add("split.b", Tensor::zeros(1, d0));

        let mut trunk = Vec::new();
        for i in 1..config.hidden.len() {
            trunk.push(Linear::new(
                &mut params,
                rng,
                &format!("trunk{i}"),
                config.hidden[i - 1],
                config.hidden[i],
                true,
            ));
        }
        let head = Linear::new(
            &mut params,
            rng,
            "head",
            *config.hidden.last().unwrap(),
            1,
            true,
        );

        Self {
            config,
            params,
            convs,
            w_g,
            w_x,
            b0,
            trunk,
            head,
        }
    }

    /// Architecture description.
    pub fn config(&self) -> &SdNetConfig {
        &self.config
    }

    /// Mutable architecture access — used to flip a cloned network between
    /// the split and concat embeddings for apples-to-apples benchmarks
    /// (the two are mathematically identical, see the module tests).
    pub fn config_mut(&mut self) -> &mut SdNetConfig {
        &mut self.config
    }

    /// Total scalar parameter count.
    pub fn count_params(&self) -> usize {
        self.params.numel()
    }

    /// The convolutional boundary-embedding layers, in application order.
    pub fn convs(&self) -> &[CircularConv1d] {
        &self.convs
    }

    /// The dense trunk layers after the split layer, in application order.
    pub fn trunk(&self) -> &[Linear] {
        &self.trunk
    }

    /// The scalar output head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// Parameter ids of the input-split layer: `(W_g, W_x, b)` — the
    /// boundary-embedding projection, the coordinate projection, and the
    /// shared bias (eq. 8 of the paper).
    pub fn split_params(&self) -> (ParamId, ParamId, ParamId) {
        (self.w_g, self.w_x, self.b0)
    }

    /// Run the convolutional boundary embedding: `[B, L] → [B, L·C]`.
    pub fn embed_boundary(&self, g: &mut Graph, bound: &Bound, gb: Var) -> Var {
        assert_eq!(
            g.value(gb).cols(),
            self.config.boundary_len,
            "SdNet: boundary length mismatch (expected {}, got {})",
            self.config.boundary_len,
            g.value(gb).cols()
        );
        let mut h = gb;
        for (i, conv) in self.convs.iter().enumerate() {
            h = conv.forward(g, bound, h);
            // Nonlinearity between conv layers, but keep the final
            // embedding linear so split == concat algebra holds exactly.
            if i + 1 < self.convs.len() {
                h = self.config.activation.apply(g, h);
            }
        }
        h
    }

    /// Full forward pass.
    ///
    /// * `gb` — `[B, L]` batch of discretized boundary conditions,
    /// * `x` — `[B·q, 2]` query coordinates, grouped so rows
    ///   `[b·q, (b+1)·q)` belong to boundary `b`,
    /// * `q` — points per boundary.
    ///
    /// Returns `[B·q, 1]` predicted solution values.
    pub fn forward(&self, g: &mut Graph, bound: &Bound, gb: Var, x: Var, q: usize) -> Var {
        let batch = g.value(gb).rows();
        assert_eq!(
            g.value(x).shape(),
            (batch * q, 2),
            "SdNet: expected {}x2 coordinates, got {:?}",
            batch * q,
            g.value(x).shape()
        );
        let emb = self.embed_boundary(g, bound, gb);
        let wg = bound.var(self.w_g);
        let wx = bound.var(self.w_x);

        // Map physical coordinates [0, extent] → [-1, 1]. Differentiation
        // with respect to the *physical* coordinates still works: the
        // affine map participates in the graph, so the chain rule applies.
        let x = {
            let centered = g.add_scalar(x, -0.5 * self.config.coord_extent);
            g.scale(centered, 2.0 / self.config.coord_extent)
        };
        // Optional Fourier encoding of the normalized coordinates.
        let x = if self.config.coord_fourier == 0 {
            x
        } else {
            let mut feats = x;
            for j in 0..self.config.coord_fourier {
                let freq = std::f64::consts::PI * (1 << j) as f64;
                let scaled = g.scale(x, freq);
                let s = g.sin(scaled);
                let c = g.cos(scaled);
                feats = g.concat_cols(feats, s);
                feats = g.concat_cols(feats, c);
            }
            feats
        };

        let mut h = match self.config.embedding {
            EmbeddingKind::Split => {
                // ĝW₁ᵀ computed once per boundary, broadcast over points.
                let hg = g.matmul_layout(emb, Layout::Normal, wg, Layout::Transposed); // [B, d0]
                let hx = g.matmul_layout(x, Layout::Normal, wx, Layout::Transposed); // [B·q, d0]
                let hg_rep = g.repeat_rows(hg, q);
                g.add(hg_rep, hx)
            }
            EmbeddingKind::Concat => {
                // Replicate the embedding per point (the expensive way).
                let emb_rep = g.repeat_rows(emb, q); // [B·q, emb]
                let inp = g.concat_cols(emb_rep, x); // [B·q, emb+2]
                let w = g.concat_cols(wg, wx); // [d0, emb+2]
                g.matmul_layout(inp, Layout::Normal, w, Layout::Transposed)
            }
        };
        h = g.add_bias(h, bound.var(self.b0));
        h = self.config.activation.apply(g, h);

        for lin in &self.trunk {
            h = lin.forward(g, bound, h);
            h = self.config.activation.apply(g, h);
        }
        self.head.forward(g, bound, h)
    }

    /// Inference convenience: run a forward pass on a reusable per-thread
    /// graph and return the predictions as a tensor. `points` is `[B·q, 2]`.
    ///
    /// The graph is cleared (not dropped) between calls, so repeated
    /// predictions recycle tape storage through the graph's buffer pool
    /// instead of re-allocating it — the same idiom `mf-train::step` uses
    /// for the training hot path. For the graph-free fast path see
    /// `mf-infer`'s `InferencePlan`; this is the fallback that any network
    /// configuration can take.
    pub fn predict(&self, boundaries: &Tensor, points: &Tensor, q: usize) -> Tensor {
        thread_local! {
            static PREDICT_GRAPH: std::cell::RefCell<Graph> =
                std::cell::RefCell::new(Graph::new());
        }
        PREDICT_GRAPH.with(|cell| {
            let mut g = cell.borrow_mut();
            g.clear();
            let bound = self.params.bind(&mut g);
            let gb = g.constant_from(boundaries);
            let x = g.constant_from(points);
            let out = self.forward(&mut g, &bound, gb, x, q);
            g.value(out).clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_config(embedding: EmbeddingKind) -> SdNetConfig {
        SdNetConfig {
            boundary_len: 12,
            conv_channels: vec![2],
            conv_kernel: 3,
            hidden: vec![8, 8],
            embedding,
            activation: Activation::Gelu,
            coord_extent: 0.5,
            coord_fourier: 0,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        let mut g = Graph::new();
        let b = net.params.bind(&mut g);
        let gb = g.constant(Tensor::ones(3, 12));
        let x = g.constant(Tensor::ones(3 * 5, 2));
        let y = net.forward(&mut g, &b, gb, x, 5);
        assert_eq!(g.value(y).shape(), (15, 1));
    }

    #[test]
    fn split_and_concat_are_mathematically_identical() {
        // Eq. 7/8 of the paper: same weights ⇒ same output, different cost.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let split = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        let mut concat = split.clone();
        concat.config.embedding = EmbeddingKind::Concat;

        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        let gb = Tensor::from_fn(2, 12, |_, _| rng2.gen_range(-1.0..1.0));
        let x = Tensor::from_fn(2 * 7, 2, |_, _| rng2.gen_range(0.0..0.5));

        let ys = split.predict(&gb, &x, 7);
        let yc = concat.predict(&gb, &x, 7);
        assert!(
            ys.allclose(&yc, 1e-10),
            "split vs concat max diff {}",
            ys.max_abs_diff(&yc)
        );
    }

    #[test]
    fn split_graph_is_smaller_than_concat_graph() {
        // The optimization's point: concat materializes the replicated
        // boundary matrix, split does not.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let split = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        let mut concat = split.clone();
        concat.config.embedding = EmbeddingKind::Concat;

        let gb = Tensor::ones(1, 12);
        let q = 200;
        let x = Tensor::ones(q, 2);

        let bytes = |net: &SdNet| {
            let mut g = Graph::new();
            let b = net.params.bind(&mut g);
            let gbv = g.constant(gb.clone());
            let xv = g.constant(x.clone());
            let _ = net.forward(&mut g, &b, gbv, xv, q);
            g.bytes_allocated()
        };
        let bs = bytes(&split);
        let bc = bytes(&concat);
        assert!(
            bs < bc,
            "split bytes {bs} should be below concat bytes {bc}"
        );
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        let mut g = Graph::new();
        let b = net.params.bind(&mut g);
        let gb = g.constant(Tensor::from_fn(2, 12, |r, c| {
            ((r * 12 + c) as f64 * 0.3).sin()
        }));
        let x = g.constant(Tensor::from_fn(6, 2, |r, c| (r + c) as f64 * 0.05));
        let y = net.forward(&mut g, &b, gb, x, 3);
        let sq = g.mul(y, y);
        let loss = g.mean(sq);
        let grads = g.grad(loss, b.all_vars());
        for (i, gr) in grads.iter().enumerate() {
            let n = g.value(*gr).norm_l2();
            assert!(n.is_finite(), "param {i} gradient not finite");
            assert!(
                n > 0.0,
                "param {i} ({}) has zero gradient",
                net.params.name(crate::params::ParamId(i))
            );
        }
    }

    #[test]
    fn input_gradients_support_laplacian() {
        // The PDE-loss pattern: second derivatives w.r.t. coordinates exist
        // and are finite.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        let mut g = Graph::new();
        let b = net.params.bind(&mut g);
        let gb = g.constant(Tensor::ones(1, 12));
        let x = g.leaf(Tensor::from_fn(4, 2, |r, c| {
            0.1 * (r as f64) + 0.05 * c as f64
        }));
        let u = net.forward(&mut g, &b, gb, x, 4);
        let su = g.sum(u);
        let du = g.grad(su, &[x])[0];
        let ux = g.slice_cols(du, 0, 1);
        let sux = g.sum(ux);
        let duxx = g.grad(sux, &[x])[0];
        let uxx = g.slice_cols(duxx, 0, 1);
        assert!(g.value(uxx).as_slice().iter().all(|v| v.is_finite()));
        assert!(
            g.value(uxx).norm_l2() > 0.0,
            "second derivative identically zero"
        );
    }

    #[test]
    fn predict_matches_manual_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let net = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        let gb = Tensor::from_fn(1, 12, |_, c| (c as f64 * 0.5).cos());
        let x = Tensor::from_fn(3, 2, |r, c| 0.1 * (r * 2 + c) as f64);
        let direct = net.predict(&gb, &x, 3);
        let mut g = Graph::new();
        let b = net.params.bind(&mut g);
        let gbv = g.constant(gb);
        let xv = g.constant(x);
        let y = net.forward(&mut g, &b, gbv, xv, 3);
        assert!(direct.allclose(g.value(y), 1e-14));
    }

    #[test]
    fn no_conv_config_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cfg = SdNetConfig {
            boundary_len: 8,
            conv_channels: vec![],
            conv_kernel: 3,
            hidden: vec![6],
            embedding: EmbeddingKind::Split,
            activation: Activation::Tanh,
            coord_extent: 1.0,
            coord_fourier: 0,
        };
        let net = SdNet::new(cfg, &mut rng);
        let y = net.predict(&Tensor::ones(1, 8), &Tensor::ones(2, 2), 2);
        assert_eq!(y.shape(), (2, 1));
    }

    #[test]
    fn fourier_features_forward_and_laplacian() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut cfg = tiny_config(EmbeddingKind::Split);
        cfg.coord_fourier = 3;
        assert_eq!(cfg.coord_features(), 14);
        let net = SdNet::new(cfg, &mut rng);
        let mut g = Graph::new();
        let b = net.params.bind(&mut g);
        let gb = g.constant(Tensor::ones(1, 12));
        let x = g.leaf(Tensor::from_fn(4, 2, |r, c| {
            0.07 * (r as f64) + 0.03 * c as f64
        }));
        let u = net.forward(&mut g, &b, gb, x, 4);
        assert_eq!(g.value(u).shape(), (4, 1));
        // Second derivatives through sin/cos features are finite.
        let su = g.sum(u);
        let du = g.grad(su, &[x])[0];
        let ux = g.slice_cols(du, 0, 1);
        let sux = g.sum(ux);
        let duxx = g.grad(sux, &[x])[0];
        assert!(g.value(duxx).as_slice().iter().all(|v| v.is_finite()));
        assert!(g.value(duxx).norm_l2() > 0.0);
    }

    #[test]
    fn fourier_split_still_equals_concat() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut cfg = tiny_config(EmbeddingKind::Split);
        cfg.coord_fourier = 2;
        let split = SdNet::new(cfg, &mut rng);
        let mut concat = split.clone();
        concat.config_mut().embedding = EmbeddingKind::Concat;
        let gb = Tensor::from_fn(2, 12, |r, c| ((r + c) as f64 * 0.2).sin());
        let x = Tensor::from_fn(2 * 3, 2, |r, c| 0.05 * (r * 2 + c) as f64);
        let a = split.predict(&gb, &x, 3);
        let b = concat.predict(&gb, &x, 3);
        assert!(a.allclose(&b, 1e-10));
    }

    #[test]
    fn count_params_matches_store() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = SdNet::new(tiny_config(EmbeddingKind::Split), &mut rng);
        assert_eq!(net.count_params(), net.params.numel());
        assert!(net.count_params() > 100);
    }
}
