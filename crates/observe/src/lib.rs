//! Observability for distributed runs: cross-rank causal tracing,
//! an always-on flight recorder with post-mortem bundles, and
//! numerical-health diagnostics.
//!
//! Built on `mf-telemetry` (spans, metrics, flow events); consumed by
//! `mf-dist` (which stamps every send/recv with a flow id and flushes
//! each rank's recorder on exit), `mf-train` (gradient-health watchdog),
//! and `mf-mfp` (residual stall detection). Three subsystems:
//!
//! 1. **Flow ids** ([`flow_id`], [`set_step_context`]) — a 64-bit
//!    correlation id packing `src → dst` and the per-link sequence
//!    number, recorded at both ends of every simulated message so a
//!    merged Perfetto timeline draws arrows across rank rows. The
//!    thread-local step context `(epoch, step)` stamps each end.
//! 2. **Flight recorder** ([`record`], [`flush_rank`]) — a fixed-size
//!    per-thread ring of compact events (no heap traffic after the first
//!    record), always on by default. On a cluster failure, a NaN/Inf
//!    gradient, or an injected crash the recent history of every rank is
//!    written as a post-mortem bundle ([`postmortem`]).
//! 3. **Health** ([`GradHealth`], [`StallDetector`]) and rendering
//!    ([`render`]) — watchdog arithmetic for the training step and the
//!    MFP residual loop, plus the `--watch` report primitives
//!    (sparklines, ASCII heatmaps).
//!
//! Enabling: the recorder rings always run (their overhead is gated in
//! CI at ≤ 3% of a warm training step); *writing bundles to disk* is
//! opt-in via the `MF_OBSERVE` environment variable (see
//! [`init_from_env`]) or [`postmortem::set_dump_dir`], so ordinary test
//! failures don't litter the workspace.

mod context;
mod health;
pub mod postmortem;
mod recorder;
pub mod render;

pub use context::{
    flow_dst, flow_id, flow_seq, flow_src, set_step_context, step_context, StepContext,
};
pub use health::{GradHealth, StallDetector};
pub use recorder::{
    clear as clear_recorder, drain_all, flush_rank, record, recording_enabled, set_recording,
    RankRecord, RecEvent, RecKind, RING_CAPACITY,
};
pub use render::{
    ascii_heatmap, mfp_watch_report, series_rate_line, sparkline, train_watch_report,
};

use std::sync::atomic::{AtomicBool, Ordering};

static WATCH: AtomicBool = AtomicBool::new(false);

/// Turn the periodic `--watch` reports (loss curve, step-time
/// sparklines, residual heatmap) on or off. Off by default.
pub fn set_watch(on: bool) {
    WATCH.store(on, Ordering::SeqCst);
}

/// Whether watch-mode reports were requested. One relaxed load.
#[inline]
pub fn watch_enabled() -> bool {
    WATCH.load(Ordering::Relaxed)
}

/// Configure observability from the `MF_OBSERVE` environment variable:
/// a comma-separated token list.
///
/// * `dump` — enable post-mortem bundles, written under the current
///   directory.
/// * `dump:<dir>` — enable bundles under `<dir>`.
/// * `trace` — enable span/flow collection (so a bundle's `trace.json`
///   carries cross-rank flow arrows even without a `--trace` file).
/// * `watch` — enable the periodic rendered reports.
/// * `off` — disable the flight recorder entirely (overhead A/B runs).
/// * `1` (or any other non-empty value) — same as `dump`.
///
/// Returns `true` when the variable was set. Repro binaries and the CLI
/// call this once at startup; `--watch` / `--metrics` / `--trace` flags
/// layer on top.
pub fn init_from_env() -> bool {
    let Ok(raw) = std::env::var("MF_OBSERVE") else {
        return false;
    };
    if raw.is_empty() {
        return false;
    }
    for tok in raw.split(',') {
        let tok = tok.trim();
        match tok {
            "" => {}
            "watch" => set_watch(true),
            "trace" => mf_telemetry::set_tracing(true),
            "off" => set_recording(false),
            "dump" => postmortem::set_dump_dir(Some(".".into())),
            _ => {
                if let Some(dir) = tok.strip_prefix("dump:") {
                    postmortem::set_dump_dir(Some(dir.into()));
                } else {
                    // Unknown token (incl. plain "1"): treat as "dump".
                    postmortem::set_dump_dir(Some(".".into()));
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_flag_toggles() {
        assert!(!watch_enabled());
        set_watch(true);
        assert!(watch_enabled());
        set_watch(false);
        assert!(!watch_enabled());
    }
}
