//! Terminal rendering for watch mode: sparklines, ASCII heatmaps, and
//! the periodic training / MFP reports.
//!
//! Pure string builders — no I/O, no global state — so every report the
//! `--watch` flag prints is unit-testable byte for byte.

use std::fmt::Write;

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
const HEAT_LEVELS: [char; 10] = ['.', ':', '-', '=', '+', '*', '#', '%', '@', '█'];

/// Render `values` as a unicode sparkline, scaled to the slice's own
/// min/max. Non-finite values render as `!`. Empty input gives an empty
/// string.
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '!'
            } else {
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                SPARK_LEVELS[((t * (SPARK_LEVELS.len() - 1) as f64).round()) as usize]
            }
        })
        .collect()
}

/// Render a row-major `rows × cols` grid of values as an ASCII heatmap,
/// one text line per row, darker glyph = larger value (scaled to the
/// grid's own range). Non-finite cells render as `!`.
pub fn ascii_heatmap(values: &[f64], rows: usize, cols: usize) -> String {
    assert_eq!(values.len(), rows * cols, "ascii_heatmap: shape mismatch");
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let v = values[r * cols + c];
            if !v.is_finite() {
                out.push('!');
            } else {
                let t = ((v - lo) / span).clamp(0.0, 1.0);
                out.push(HEAT_LEVELS[(t * (HEAT_LEVELS.len() - 1) as f64).round() as usize]);
            }
        }
        out.push('\n');
    }
    out
}

/// One status line for a live metric series ring: the recent event rate
/// plus a sparkline of per-window event counts (most recent window on
/// the right). Empty `window_counts` yields an empty string so callers
/// can print the result unconditionally.
pub fn series_rate_line(name: &str, rate_per_s: f64, window_counts: &[f64]) -> String {
    if window_counts.is_empty() {
        return String::new();
    }
    format!(
        "{name:<16} {rate_per_s:>8.1}/s {}\n",
        sparkline(window_counts)
    )
}

/// The periodic training watch report: loss curve plus one step-time
/// sparkline per rank.
///
/// `loss_history` is the per-epoch loss so far; `step_times_per_rank`
/// holds each rank's recent step times in seconds (empty slices are
/// skipped).
pub fn train_watch_report(
    epoch: usize,
    loss_history: &[f64],
    step_times_per_rank: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    let last = loss_history.last().copied().unwrap_or(f64::NAN);
    let _ = writeln!(
        out,
        "-- watch: epoch {epoch}  loss {last:.3e} --\nloss     {}",
        sparkline(loss_history)
    );
    for (rank, times) in step_times_per_rank.iter().enumerate() {
        if times.is_empty() {
            continue;
        }
        let mean_ms = times.iter().sum::<f64>() / times.len() as f64 * 1e3;
        let _ = writeln!(
            out,
            "rank {rank} step ms {} (mean {mean_ms:.2})",
            sparkline(times)
        );
    }
    out
}

/// The periodic MFP watch report: residual trajectory, the per-subdomain
/// residual heatmap over the `rows × cols` subdomain lattice, and the
/// stall/stale-halo status line.
pub fn mfp_watch_report(
    iteration: usize,
    deltas: &[f64],
    subdomain_residuals: &[f64],
    rows: usize,
    cols: usize,
    stalled: bool,
    stale_halos: u64,
) -> String {
    let mut out = String::new();
    let last = deltas.last().copied().unwrap_or(f64::NAN);
    let _ = writeln!(
        out,
        "-- watch: mfp iteration {iteration}  residual {last:.3e} --\nresidual {}",
        sparkline(deltas)
    );
    if !subdomain_residuals.is_empty() {
        let _ = writeln!(out, "per-subdomain residual ({rows}x{cols} lattice):");
        out.push_str(&ascii_heatmap(subdomain_residuals, rows, cols));
    }
    if stalled {
        let attribution = if stale_halos > 0 {
            format!(
                " — {stale_halos} stale halo(s) this window; a late neighbor is the likely cause"
            )
        } else {
            String::new()
        };
        let _ = writeln!(out, "STALL: no >1% residual improvement{attribution}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_the_value_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], SPARK_LEVELS[0]);
        assert_eq!(chars[2], SPARK_LEVELS[7]);
        assert_eq!(sparkline(&[]), "");
        // Constant input doesn't divide by zero.
        assert_eq!(sparkline(&[2.0, 2.0]).chars().count(), 2);
        assert!(sparkline(&[1.0, f64::NAN]).contains('!'));
    }

    #[test]
    fn heatmap_has_one_line_per_row_and_marks_hot_cells() {
        let grid = vec![0.0, 0.0, 0.0, 9.0];
        let m = ascii_heatmap(&grid, 2, 2);
        let lines: Vec<&str> = m.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "..");
        assert_eq!(lines[1].chars().nth(1), Some('█'));
    }

    #[test]
    fn watch_reports_mention_their_headline_numbers() {
        let r = train_watch_report(4, &[1.0, 0.5, 0.25], &[vec![0.01, 0.02], vec![]]);
        assert!(r.contains("epoch 4"));
        assert!(r.contains("2.500e-1"));
        assert!(r.contains("rank 0"));
        assert!(!r.contains("rank 1"), "empty rank slice is skipped");

        let m = mfp_watch_report(30, &[1e-1, 1e-2], &[0.1, 0.2, 0.3, 0.4], 2, 2, true, 3);
        assert!(m.contains("iteration 30"));
        assert!(m.contains("2x2 lattice"));
        assert!(m.contains("STALL"));
        assert!(m.contains("3 stale halo(s)"));
        let quiet = mfp_watch_report(5, &[1.0], &[], 0, 0, false, 0);
        assert!(!quiet.contains("STALL"));
        assert!(!quiet.contains("lattice"));
    }

    #[test]
    fn series_rate_line_formats_rate_and_sparkline() {
        let l = series_rate_line("dist.iterations", 42.5, &[0.0, 1.0, 3.0]);
        assert!(l.contains("dist.iterations"));
        assert!(l.contains("42.5/s"));
        assert!(l.ends_with('\n'));
        assert_eq!(l.chars().filter(|c| SPARK_LEVELS.contains(c)).count(), 3);
        assert_eq!(series_rate_line("x", 1.0, &[]), "");
    }
}
