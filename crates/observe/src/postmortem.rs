//! Post-mortem bundles: when a run dies — a `CommError`, a rank panic,
//! an injected `FaultPlan` crash, or a NaN/Inf gradient — the flight
//! recorder's recent history is written to a directory
//! `observe-dump-<ts>-<n>/` for offline inspection:
//!
//! ```text
//! observe-dump-1723111842-0/
//! ├── summary.txt   reason, failing rank, per-rank last (epoch, step)
//! ├── trace.json    merged Chrome trace: spans + cross-rank flow events
//! │                 + flight-recorder events as zero-length slices
//! │                 (loadable in Perfetto; flows draw send→recv arrows)
//! ├── metrics.txt   per-rank MetricsSnapshot wire format, one section
//! │                 per rank
//! ├── events.txt    human-readable flight-recorder log, oldest first
//! └── config.txt    run configuration as reported by the caller
//! ```
//!
//! Writing is opt-in: nothing touches disk unless `MF_OBSERVE` enables
//! dumps ([`crate::init_from_env`]) or a test/tool calls
//! [`set_dump_dir`]. [`read_bundle`] parses a bundle back for
//! programmatic assertions.

use crate::recorder::{self, RankRecord, RecEvent};
use mf_telemetry::{FlowEvent, MetricsSnapshot, SpanEvent};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a bundle was dumped.
#[derive(Clone, Debug, Default)]
pub struct DumpReason {
    /// Short machine-readable class: `"cluster-failure"`, `"nan-grad"`,
    /// `"comm-error"`, …
    pub kind: String,
    /// Free-form detail (panic message, offending value, …).
    pub detail: String,
    /// The rank identified as the origin of the failure, if known.
    pub failing_rank: Option<usize>,
}

/// Explicit dump configuration. `Unset` defers to the `MF_OBSERVE`
/// environment variable at dump time, so `cargo test` runs pick up
/// CI's `MF_OBSERVE=dump:<dir>` without calling
/// [`crate::init_from_env`]; an explicit [`set_dump_dir`] (either way)
/// always wins over the environment.
#[derive(Clone)]
enum DumpConfig {
    Unset,
    Disabled,
    Dir(PathBuf),
}

static DUMP_DIR: Mutex<DumpConfig> = Mutex::new(DumpConfig::Unset);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Enable (`Some(parent_dir)`) or disable (`None`) post-mortem bundle
/// writing. Bundles are created as fresh subdirectories of the parent.
pub fn set_dump_dir(dir: Option<PathBuf>) {
    let mut g = match DUMP_DIR.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    *g = match dir {
        Some(d) => DumpConfig::Dir(d),
        None => DumpConfig::Disabled,
    };
}

/// Whether bundle writing is enabled.
pub fn dump_enabled() -> bool {
    dump_parent().is_some()
}

fn dump_parent() -> Option<PathBuf> {
    let cfg = match DUMP_DIR.lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    };
    match cfg {
        DumpConfig::Dir(d) => Some(d),
        DumpConfig::Disabled => None,
        DumpConfig::Unset => env_dump_dir(),
    }
}

/// Parse the dump directory out of `MF_OBSERVE` without touching any
/// other observability switches (those belong to
/// [`crate::init_from_env`]).
fn env_dump_dir() -> Option<PathBuf> {
    let raw = std::env::var("MF_OBSERVE").ok()?;
    for tok in raw.split(',') {
        match tok.trim() {
            "" | "watch" | "trace" | "off" => {}
            "dump" => return Some(".".into()),
            other => {
                return Some(match other.strip_prefix("dump:") {
                    Some(dir) => dir.into(),
                    None => ".".into(),
                })
            }
        }
    }
    None
}

/// Dump a post-mortem bundle if dumping is enabled: drains the flight
/// recorder registry (every rank flushed so far) and the telemetry
/// span/flow collectors, and writes the bundle directory. Returns the
/// bundle path, or `None` when dumping is disabled or the write failed
/// (a post-mortem must never turn a failure report into a second
/// failure).
pub fn dump(reason: &DumpReason, config: &str) -> Option<PathBuf> {
    let parent = dump_parent()?;
    let records = recorder::drain_all();
    let spans = mf_telemetry::drain_spans();
    let flows = mf_telemetry::drain_flows();
    match write_bundle(&parent, reason, config, &records, &spans, &flows) {
        Ok(path) => {
            eprintln!(
                "mf-observe: post-mortem bundle written to {}",
                path.display()
            );
            Some(path)
        }
        Err(e) => {
            eprintln!("mf-observe: failed to write post-mortem bundle: {e}");
            None
        }
    }
}

fn unix_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Write one bundle under `parent` from explicit data (no globals).
/// [`dump`] is the convenience wrapper over the process-wide recorder.
pub fn write_bundle(
    parent: &Path,
    reason: &DumpReason,
    config: &str,
    records: &[(usize, RankRecord)],
    spans: &[SpanEvent],
    flows: &[FlowEvent],
) -> io::Result<PathBuf> {
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = parent.join(format!("observe-dump-{}-{seq}", unix_seconds()));
    std::fs::create_dir_all(&dir)?;

    // summary.txt — the first file a human (or test) reads.
    let mut summary = String::from("mf-observe post-mortem bundle\n");
    summary.push_str(&format!("reason: {}\n", reason.kind));
    summary.push_str(&format!("detail: {}\n", reason.detail.replace('\n', " | ")));
    match reason.failing_rank {
        Some(r) => summary.push_str(&format!("failing_rank: {r}\n")),
        None => summary.push_str("failing_rank: none\n"),
    }
    summary.push_str(&format!("ranks: {}\n", records.len()));
    for (rank, rec) in records {
        let (epoch, step) = rec.last_step().unwrap_or((0, 0));
        summary.push_str(&format!(
            "rank {rank}: events {} total {} last_epoch {epoch} last_step {step}\n",
            rec.events.len(),
            rec.total
        ));
    }
    std::fs::write(dir.join("summary.txt"), summary)?;

    // trace.json — merged spans + flows + flight-recorder events as
    // zero-length slices so the ring history shows up on the timeline.
    let mut all_spans: Vec<SpanEvent> = spans.to_vec();
    for (rank, rec) in records {
        for e in &rec.events {
            all_spans.push(rec_event_as_span(*rank, e));
        }
    }
    all_spans.sort_by(|a, b| {
        (a.rank, a.start_us, a.depth, &a.name).cmp(&(b.rank, b.start_us, b.depth, &b.name))
    });
    let mut buf = Vec::new();
    mf_telemetry::write_chrome_trace_with_flows(&all_spans, flows, &mut buf)?;
    std::fs::write(dir.join("trace.json"), buf)?;

    // metrics.txt — per-rank snapshot wire format.
    let mut metrics = String::new();
    for (rank, rec) in records {
        metrics.push_str(&format!("--- rank {rank} ---\n"));
        metrics.push_str(&rec.metrics);
    }
    std::fs::write(dir.join("metrics.txt"), metrics)?;

    // events.txt — the ring, human-readable.
    let mut events = String::new();
    for (rank, rec) in records {
        for e in &rec.events {
            events.push_str(&format!(
                "rank {rank} t={}us {:?} {} epoch={} step={} a={} b={}\n",
                e.t_us, e.kind, e.name, e.epoch, e.step, e.a, e.b
            ));
        }
    }
    std::fs::write(dir.join("events.txt"), events)?;

    std::fs::write(dir.join("config.txt"), config)?;
    Ok(dir)
}

fn rec_event_as_span(rank: usize, e: &RecEvent) -> SpanEvent {
    SpanEvent {
        name: format!("rec.{}", e.name),
        rank,
        start_us: e.t_us,
        dur_us: 0,
        depth: 0,
        args: vec![
            ("epoch".to_string(), e.epoch as f64),
            ("step".to_string(), e.step as f64),
            ("a".to_string(), e.a as f64),
            ("b".to_string(), e.b),
        ],
    }
}

/// One rank's entry in a parsed bundle summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BundleRank {
    /// Rank id.
    pub rank: usize,
    /// Ring events captured for this rank.
    pub events: usize,
    /// Last `(epoch, step)` the rank reached.
    pub last_epoch: u64,
    /// Last step/iteration the rank reached.
    pub last_step: u64,
}

/// A parsed post-mortem bundle.
#[derive(Clone, Debug, Default)]
pub struct Bundle {
    /// Reason class from `summary.txt`.
    pub reason: String,
    /// Reason detail.
    pub detail: String,
    /// Failing rank, when the failure had an attributable origin.
    pub failing_rank: Option<usize>,
    /// Per-rank summary lines.
    pub ranks: Vec<BundleRank>,
    /// Slice events from `trace.json`.
    pub spans: Vec<SpanEvent>,
    /// Cross-rank flow events from `trace.json`.
    pub flows: Vec<FlowEvent>,
    /// Per-rank metric snapshots from `metrics.txt`.
    pub metrics: Vec<(usize, MetricsSnapshot)>,
    /// Run configuration from `config.txt`.
    pub config: String,
}

impl Bundle {
    /// The last `(epoch, step)` recorded for `rank`, if present.
    pub fn last_step(&self, rank: usize) -> Option<(u64, u64)> {
        self.ranks
            .iter()
            .find(|r| r.rank == rank)
            .map(|r| (r.last_epoch, r.last_step))
    }
}

/// Parse a bundle directory written by [`write_bundle`] back into
/// memory. Used by tests to assert bundle contents programmatically.
pub fn read_bundle(dir: &Path) -> Result<Bundle, String> {
    let read =
        |name: &str| std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: {e}"));
    let summary = read("summary.txt")?;
    let mut b = Bundle::default();
    for line in summary.lines() {
        if let Some(v) = line.strip_prefix("reason: ") {
            b.reason = v.to_string();
        } else if let Some(v) = line.strip_prefix("detail: ") {
            b.detail = v.to_string();
        } else if let Some(v) = line.strip_prefix("failing_rank: ") {
            b.failing_rank = v.trim().parse::<usize>().ok();
        } else if let Some(v) = line.strip_prefix("rank ") {
            // "rank N: events E total T last_epoch X last_step Y"
            let toks: Vec<&str> = v.split([':', ' ']).filter(|t| !t.is_empty()).collect();
            let num = |key: &str| -> Option<u64> {
                toks.iter()
                    .position(|t| *t == key)
                    .and_then(|i| toks.get(i + 1))
                    .and_then(|t| t.parse().ok())
            };
            let (Some(rank), Some(events), Some(last_epoch), Some(last_step)) = (
                toks.first().and_then(|t| t.parse::<usize>().ok()),
                num("events"),
                num("last_epoch"),
                num("last_step"),
            ) else {
                return Err(format!("summary.txt: bad rank line {line:?}"));
            };
            b.ranks.push(BundleRank {
                rank,
                events: events as usize,
                last_epoch,
                last_step,
            });
        }
    }
    let (spans, flows) = mf_telemetry::parse_chrome_trace_full(&read("trace.json")?)
        .map_err(|e| format!("trace.json: {e}"))?;
    b.spans = spans;
    b.flows = flows;
    let metrics_text = read("metrics.txt")?;
    for section in metrics_text.split("--- rank ").skip(1) {
        let (head, body) = section
            .split_once(" ---\n")
            .ok_or("metrics.txt: bad section header")?;
        let rank: usize = head
            .trim()
            .parse()
            .map_err(|e| format!("metrics.txt: bad rank: {e}"))?;
        let snap =
            MetricsSnapshot::parse(body).ok_or_else(|| format!("metrics.txt: rank {rank}"))?;
        b.metrics.push((rank, snap));
    }
    b.config = read("config.txt")?;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{RecEvent, RecKind};
    use mf_telemetry::FlowPhase;

    fn temp_parent(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mf_observe_pm_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bundle_round_trips_through_read_bundle() {
        let parent = temp_parent("roundtrip");
        let rec = RankRecord {
            events: vec![
                RecEvent {
                    t_us: 5,
                    kind: RecKind::Send,
                    name: "comm.send",
                    epoch: 0,
                    step: 11,
                    a: crate::flow_id(3, 1, 42),
                    b: 64.0,
                },
                RecEvent {
                    t_us: 9,
                    kind: RecKind::Iteration,
                    name: "mfp.iteration",
                    epoch: 0,
                    step: 12,
                    a: 0,
                    b: 1e-3,
                },
            ],
            metrics: {
                let snap = mf_telemetry::snapshot();
                snap.serialize()
            },
            total: 2,
        };
        let spans = vec![SpanEvent {
            name: "mfp.iteration".into(),
            rank: 3,
            start_us: 4,
            dur_us: 10,
            depth: 0,
            args: vec![],
        }];
        let flows = vec![
            FlowEvent {
                name: "comm.send".into(),
                rank: 3,
                ts_us: 5,
                id: crate::flow_id(3, 1, 42),
                phase: FlowPhase::Start,
                args: vec![],
            },
            FlowEvent {
                name: "comm.recv".into(),
                rank: 1,
                ts_us: 8,
                id: crate::flow_id(3, 1, 42),
                phase: FlowPhase::Finish,
                args: vec![],
            },
        ];
        let reason = DumpReason {
            kind: "cluster-failure".into(),
            detail: "rank 3: injected crash\nsecond line".into(),
            failing_rank: Some(3),
        };
        let dir = write_bundle(
            &parent,
            &reason,
            "plan: lossy seed=42",
            &[(3, rec)],
            &spans,
            &flows,
        )
        .unwrap();
        assert!(dir
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("observe-dump-"));

        let b = read_bundle(&dir).unwrap();
        assert_eq!(b.reason, "cluster-failure");
        assert_eq!(b.failing_rank, Some(3));
        assert!(b.detail.contains("injected crash"));
        assert!(!b.detail.contains('\n'), "detail is one line");
        assert_eq!(b.last_step(3), Some((0, 12)));
        assert_eq!(b.flows.len(), 2);
        assert!(b.flows.iter().any(|f| crate::flow_src(f.id) == 3));
        // The recorder ring shows up as zero-length slices.
        assert!(b.spans.iter().any(|s| s.name == "rec.comm.send"));
        assert!(b.spans.iter().any(|s| s.name == "mfp.iteration"));
        assert_eq!(b.metrics.len(), 1);
        assert_eq!(b.metrics[0].0, 3);
        assert!(b.config.contains("lossy"));
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn dump_is_a_no_op_when_disabled() {
        // Dumping defaults to disabled; this must not touch the disk.
        assert!(!dump_enabled() || dump_parent().is_some());
        set_dump_dir(None);
        let out = dump(&DumpReason::default(), "");
        assert!(out.is_none());
    }
}
