//! The always-on flight recorder: a fixed-size per-thread ring buffer of
//! compact events.
//!
//! Each simulated rank (thread) owns one ring of [`RING_CAPACITY`]
//! [`RecEvent`]s — plain `Copy` records, so recording after the first
//! event is an index bump and a slot write with zero heap traffic (the
//! warm-training-step allocation pin and the CI `observe.overhead` gate
//! both depend on this). The ring keeps only the *recent* history; old
//! events are overwritten, which is exactly the "last N seconds" a
//! post-mortem needs.
//!
//! The cluster flushes every rank's ring into a process-wide registry on
//! thread exit ([`flush_rank`]) — including ranks that exited by panic —
//! so [`crate::postmortem`] can assemble a bundle covering all ranks.

use crate::context::step_context;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Events retained per rank before the ring wraps.
pub const RING_CAPACITY: usize = 4096;

/// What a flight-recorder event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecKind {
    /// A point-to-point send (`a` = flow id, `b` = payload bytes).
    Send,
    /// A delivered message (`a` = flow id, `b` = payload bytes).
    Recv,
    /// A collective entry (`a` = participant count, `b` = element count).
    Collective,
    /// A training step (`b` = loss).
    Step,
    /// A solver iteration (`b` = residual when known).
    Iteration,
    /// A communication error (timeout, failed peer; `a` = peer rank).
    CommError,
    /// A numerical-health incident (`b` = offending value or count).
    Health,
    /// Anything else worth keeping (clock offsets, phase markers).
    Mark,
}

/// One compact flight-recorder entry. `Copy`, fixed-size: the ring never
/// allocates after construction.
#[derive(Clone, Copy, Debug)]
pub struct RecEvent {
    /// Microseconds since the telemetry epoch.
    pub t_us: u64,
    /// Event class.
    pub kind: RecKind,
    /// Static site name (e.g. `"comm.send"`).
    pub name: &'static str,
    /// Epoch from the thread's step context at record time.
    pub epoch: u64,
    /// Step/iteration from the thread's step context at record time.
    pub step: u64,
    /// Kind-specific integer payload (flow id, peer rank, …).
    pub a: u64,
    /// Kind-specific float payload (bytes, loss, residual, …).
    pub b: f64,
}

struct Ring {
    buf: Vec<RecEvent>,
    /// Next write position.
    cursor: usize,
    /// Total events ever recorded (used to detect wrap).
    total: u64,
}

impl Ring {
    const fn new() -> Self {
        Self {
            buf: Vec::new(),
            cursor: 0,
            total: 0,
        }
    }

    fn push(&mut self, e: RecEvent) {
        if self.buf.capacity() == 0 {
            // One-time allocation per thread; warm-path records after
            // this are slot writes only.
            self.buf.reserve_exact(RING_CAPACITY);
        }
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(e);
            self.cursor = self.buf.len() % RING_CAPACITY;
        } else {
            self.buf[self.cursor] = e;
            self.cursor = (self.cursor + 1) % RING_CAPACITY;
        }
        self.total += 1;
    }

    /// Events in chronological order (oldest first).
    fn chronological(&self) -> Vec<RecEvent> {
        if self.buf.len() < RING_CAPACITY {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(RING_CAPACITY);
            out.extend_from_slice(&self.buf[self.cursor..]);
            out.extend_from_slice(&self.buf[..self.cursor]);
            out
        }
    }
}

thread_local! {
    static RING: RefCell<Ring> = const { RefCell::new(Ring::new()) };
}

/// Recorder master switch. On by default (it is a *flight* recorder);
/// `MF_OBSERVE=off` or [`set_recording`] disable it for overhead A/B
/// measurements.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Enable or disable the flight recorder globally.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::SeqCst);
}

/// Whether the recorder is on. One relaxed atomic load — the entire
/// disabled cost of a [`record`] site.
#[inline]
pub fn recording_enabled() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Record one event into the current thread's ring. No-op when the
/// recorder is disabled; never allocates after the thread's first event.
#[inline]
pub fn record(kind: RecKind, name: &'static str, a: u64, b: f64) {
    if !recording_enabled() {
        return;
    }
    let ctx = step_context();
    let e = RecEvent {
        t_us: mf_telemetry::now_us(),
        kind,
        name,
        epoch: ctx.epoch,
        step: ctx.step,
        a,
        b,
    };
    RING.with(|r| r.borrow_mut().push(e));
}

/// One rank's flushed flight-recorder state.
#[derive(Clone, Debug, Default)]
pub struct RankRecord {
    /// Ring contents, oldest first.
    pub events: Vec<RecEvent>,
    /// The rank's serialized [`mf_telemetry::MetricsSnapshot`] at flush
    /// time.
    pub metrics: String,
    /// Total events ever recorded (>= `events.len()` once wrapped).
    pub total: u64,
}

impl RankRecord {
    /// The last step context the rank reached, if it recorded anything.
    pub fn last_step(&self) -> Option<(u64, u64)> {
        self.events.last().map(|e| (e.epoch, e.step))
    }
}

static REGISTRY: Mutex<BTreeMap<usize, RankRecord>> = Mutex::new(BTreeMap::new());

/// Move the current thread's ring (plus its metrics snapshot) into the
/// process-wide registry under `rank`. Called by the cluster on every
/// rank thread as it exits — after `catch_unwind`, so panicked ranks are
/// captured too. A later flush for the same rank replaces the earlier
/// one (rank ids are reused across cluster runs in one process).
pub fn flush_rank(rank: usize) {
    let (events, total) = RING.with(|r| {
        let mut r = r.borrow_mut();
        let events = r.chronological();
        let total = r.total;
        r.buf.clear();
        r.cursor = 0;
        r.total = 0;
        (events, total)
    });
    let metrics = mf_telemetry::snapshot().serialize();
    let mut reg = match REGISTRY.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    reg.insert(
        rank,
        RankRecord {
            events,
            metrics,
            total,
        },
    );
}

/// Take every flushed rank record, oldest rank first. The registry is
/// left empty.
pub fn drain_all() -> Vec<(usize, RankRecord)> {
    let mut reg = match REGISTRY.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    std::mem::take(&mut *reg).into_iter().collect()
}

/// Discard the current thread's ring and every flushed record.
pub fn clear() {
    RING.with(|r| {
        let mut r = r.borrow_mut();
        r.buf.clear();
        r.cursor = 0;
        r.total = 0;
    });
    match REGISTRY.lock() {
        Ok(mut g) => g.clear(),
        Err(p) => p.into_inner().clear(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let mut ring = Ring::new();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(RecEvent {
                t_us: i,
                kind: RecKind::Mark,
                name: "t",
                epoch: 0,
                step: i,
                a: 0,
                b: 0.0,
            });
        }
        let chron = ring.chronological();
        assert_eq!(chron.len(), RING_CAPACITY);
        assert_eq!(chron.first().unwrap().t_us, 10);
        assert_eq!(chron.last().unwrap().t_us, RING_CAPACITY as u64 + 9);
        assert!(chron.windows(2).all(|w| w[0].t_us < w[1].t_us));
        assert_eq!(ring.total, RING_CAPACITY as u64 + 10);
    }

    // One test covers the shared registry end to end: drain_all is
    // destructive, so concurrent #[test]s would steal each other's
    // flushes.
    #[test]
    fn flush_drain_and_disable_behave_on_the_shared_registry() {
        clear();
        // A panicking "rank" thread still gets its ring flushed.
        std::thread::spawn(|| {
            crate::set_step_context(1, 7);
            record(RecKind::Step, "test.step", 0, 0.5);
            let caught = std::panic::catch_unwind(|| panic!("injected"));
            assert!(caught.is_err());
            flush_rank(3);
            crate::set_step_context(0, 0);
        })
        .join()
        .unwrap();
        // A disabled recorder drops events on another thread.
        std::thread::spawn(|| {
            set_recording(false);
            record(RecKind::Mark, "test.disabled", 0, 0.0);
            set_recording(true);
            flush_rank(9);
        })
        .join()
        .unwrap();

        let all = drain_all();
        let rec = &all.iter().find(|(r, _)| *r == 3).expect("rank 3 flushed").1;
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.last_step(), Some((1, 7)));
        assert!(rec.metrics.starts_with("mfm1"));
        let rec9 = &all.iter().find(|(r, _)| *r == 9).expect("rank 9 flushed").1;
        assert!(rec9.events.iter().all(|e| e.name != "test.disabled"));
        assert!(drain_all().is_empty());
    }
}
