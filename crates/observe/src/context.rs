//! Per-thread step context and the packed flow-id discipline.
//!
//! Every simulated message is stamped at both ends with one 64-bit flow
//! id so the sending and receiving slices can be connected in a merged
//! trace:
//!
//! ```text
//! bits 63..56   src rank   (8 bits, ranks < 256)
//! bits 55..48   dst rank   (8 bits)
//! bits 47..0    per-link sequence number (48 bits)
//! ```
//!
//! The per-link sequence number is already unique per `(src, dst)` pair
//! in the communicator (it drives dedup/reorder), so the triple is
//! globally unique for any realistic run length. The *step context* —
//! `(epoch, step)` for training, `(0, iteration)` for the MFP — is a
//! thread-local set by the trainer/solver loops and attached to flow
//! events and flight-recorder entries, tying every message to the
//! algorithmic step that sent it.

use std::cell::Cell;

/// The algorithmic position of the current thread: `(epoch, step)` for
/// training loops, `(0, iteration)` for solver loops.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepContext {
    /// Training epoch (0 outside epoch loops).
    pub epoch: u64,
    /// Step or iteration within the run.
    pub step: u64,
}

thread_local! {
    static STEP: Cell<StepContext> = const { Cell::new(StepContext { epoch: 0, step: 0 }) };
}

/// Set the current thread's step context. Called by the trainer at each
/// step and the MFP loop at each iteration; cheap (a Cell store).
#[inline]
pub fn set_step_context(epoch: u64, step: u64) {
    STEP.with(|s| s.set(StepContext { epoch, step }));
}

/// The current thread's step context.
#[inline]
pub fn step_context() -> StepContext {
    STEP.with(Cell::get)
}

const SEQ_MASK: u64 = (1 << 48) - 1;

/// Pack `(src, dst, seq)` into one flow id. Ranks must be < 256 (the
/// simulated clusters are far smaller); sequence numbers are taken
/// modulo 2^48.
#[inline]
pub fn flow_id(src: usize, dst: usize, seq: u64) -> u64 {
    debug_assert!(src < 256 && dst < 256, "flow_id: rank out of range");
    ((src as u64) << 56) | ((dst as u64) << 48) | (seq & SEQ_MASK)
}

/// Source rank packed in a flow id.
#[inline]
pub fn flow_src(id: u64) -> usize {
    (id >> 56) as usize
}

/// Destination rank packed in a flow id.
#[inline]
pub fn flow_dst(id: u64) -> usize {
    ((id >> 48) & 0xFF) as usize
}

/// Per-link sequence number packed in a flow id.
#[inline]
pub fn flow_seq(id: u64) -> u64 {
    id & SEQ_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_round_trips_its_fields() {
        for (src, dst, seq) in [(0, 0, 0), (3, 1, 12345), (255, 254, SEQ_MASK), (7, 7, 1)] {
            let id = flow_id(src, dst, seq);
            assert_eq!(flow_src(id), src);
            assert_eq!(flow_dst(id), dst);
            assert_eq!(flow_seq(id), seq);
        }
    }

    #[test]
    fn flow_ids_are_distinct_across_links_and_seqs() {
        let a = flow_id(0, 1, 5);
        let b = flow_id(1, 0, 5);
        let c = flow_id(0, 1, 6);
        assert!(a != b && a != c && b != c);
    }

    #[test]
    fn step_context_is_per_thread() {
        set_step_context(2, 17);
        assert_eq!(step_context(), StepContext { epoch: 2, step: 17 });
        let other = std::thread::spawn(step_context).join().unwrap();
        assert_eq!(other, StepContext::default());
        set_step_context(0, 0);
    }
}
