//! Numerical-health watchdogs: gradient norm / NaN / Inf accounting for
//! the training step and residual stall detection for the MFP loop.
//!
//! Both are plain arithmetic over data the hot loops already touch — no
//! allocation, no locks — so they can run unconditionally. The *callers*
//! (mf-train, mf-mfp) decide what to do with a bad verdict: bump the
//! `health.*` metrics, write a flight-recorder event, and (for
//! non-finite gradients) trigger a post-mortem dump.

/// Result of scanning one step's gradients.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GradHealth {
    /// Global L2 norm over every finite gradient element.
    pub norm: f64,
    /// Number of NaN elements.
    pub nan: u64,
    /// Number of ±Inf elements.
    pub inf: u64,
}

impl GradHealth {
    /// Fold one gradient slice into the running tally. O(n), no
    /// allocation; call once per gradient tensor, then [`finish`].
    ///
    /// [`finish`]: GradHealth::finish
    #[inline]
    pub fn scan(&mut self, grad: &[f64]) {
        let mut sumsq = 0.0;
        for &v in grad {
            if v.is_finite() {
                sumsq += v * v;
            } else if v.is_nan() {
                self.nan += 1;
            } else {
                self.inf += 1;
            }
        }
        // `norm` holds the running sum of squares until finish().
        self.norm += sumsq;
    }

    /// Convert the accumulated sum of squares into the L2 norm.
    #[inline]
    pub fn finish(mut self) -> Self {
        self.norm = self.norm.sqrt();
        self
    }

    /// Whether any non-finite element was seen.
    #[inline]
    pub fn is_bad(&self) -> bool {
        self.nan > 0 || self.inf > 0
    }
}

/// Detects a stalled residual trajectory: no relative improvement of at
/// least `rel_improve` over the best-seen value for `window` consecutive
/// observations.
///
/// The MFP loop feeds it one residual per convergence check; when it
/// trips, degraded-mode runs attribute the stall by checking whether the
/// stale-halo count grew over the same window (a late neighbor poisons
/// the interface values, so the residual plateaus — exactly the failure
/// mode relaxed-sync domain decomposition has to watch for).
#[derive(Clone, Debug)]
pub struct StallDetector {
    best: f64,
    checks_since_improve: usize,
    window: usize,
    rel_improve: f64,
}

impl StallDetector {
    /// A detector that trips after `window` checks without a ≥ 1%
    /// improvement on the best residual seen.
    pub fn new(window: usize) -> Self {
        Self {
            best: f64::INFINITY,
            checks_since_improve: 0,
            window: window.max(1),
            rel_improve: 0.01,
        }
    }

    /// Feed one residual observation; returns `true` when the trajectory
    /// has stalled (and resets, so a persistent plateau re-trips every
    /// `window` checks rather than every check).
    pub fn observe(&mut self, residual: f64) -> bool {
        if residual.is_finite() && residual < self.best * (1.0 - self.rel_improve) {
            self.best = residual;
            self.checks_since_improve = 0;
            return false;
        }
        self.checks_since_improve += 1;
        if self.checks_since_improve >= self.window {
            self.checks_since_improve = 0;
            true
        } else {
            false
        }
    }

    /// Best residual seen so far (infinite before the first finite
    /// observation).
    pub fn best(&self) -> f64 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_health_counts_nonfinite_and_norms_the_rest() {
        let mut h = GradHealth::default();
        h.scan(&[3.0, 4.0]);
        h.scan(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0]);
        let h = h.finish();
        assert_eq!(h.nan, 1);
        assert_eq!(h.inf, 2);
        assert!((h.norm - 5.0).abs() < 1e-12);
        assert!(h.is_bad());
        let clean = {
            let mut c = GradHealth::default();
            c.scan(&[1.0, -2.0]);
            c.finish()
        };
        assert!(!clean.is_bad());
    }

    #[test]
    fn stall_detector_trips_on_plateaus_and_resets_on_improvement() {
        let mut d = StallDetector::new(3);
        // Steadily improving: never trips.
        for r in [1.0, 0.5, 0.25, 0.12] {
            assert!(!d.observe(r));
        }
        // Plateau at the best value: trips on the 3rd stale check.
        assert!(!d.observe(0.12));
        assert!(!d.observe(0.12));
        assert!(d.observe(0.12));
        // ... and re-trips only after another full window.
        assert!(!d.observe(0.12));
        assert!(!d.observe(0.12));
        assert!(d.observe(0.12));
        // A real improvement resets the count.
        assert!(!d.observe(0.05));
        assert_eq!(d.best(), 0.05);
    }

    #[test]
    fn stall_detector_treats_nan_residuals_as_stale() {
        let mut d = StallDetector::new(2);
        assert!(!d.observe(f64::NAN));
        assert!(d.observe(f64::NAN));
    }
}
