#![warn(missing_docs)]

//! Graph-free compiled inference for SDNet — the MFP hot path.
//!
//! Every Schwarz iteration of the Mosaic Flow Predictor evaluates the same
//! network on the same query points with only the boundary values changing.
//! The autodiff `Graph` pays taping overhead for a forward pass that needs
//! no gradients, and recomputes the query-point half of the input-split
//! layer (eq. 8 of the paper) on every call even though the points are
//! fixed for the lifetime of a solve.
//!
//! [`InferencePlan::compile`] lowers the conv-embed → input-split → MLP
//! pipeline into a flat list of `gemm_into`/fused-activation steps over
//! pooled, reusable workspaces:
//!
//! * **No graph nodes.** The plan is a straight-line register program; the
//!   interpreter is a `for` loop over lowered steps with no tape, no
//!   `Var`s, and no backward metadata.
//! * **No heap allocations on warm calls.** Every intermediate lives in a
//!   buffer checked out of the workspace's
//!   [`BufferPool`] and returned as soon as its
//!   single consumer has read it; after the first (cold) execution every
//!   acquire is a pool hit. Weights are pre-transposed at compile time so
//!   the GEMM kernel never packs an operand internally.
//! * **Cached invariants.** The normalized/Fourier-encoded query
//!   coordinates and the coordinate half `W_x · X` of the input-split
//!   layer are computed once at compile time and reused by every
//!   execution — each call only pays the boundary-dependent half.
//!
//! Results are **bitwise identical** to the graph path: the plan replays
//! the exact kernel sequence `Graph::eval` would run (the only reordering
//! is the commutative operand swap in the split-layer add, which IEEE-754
//! addition preserves bit-for-bit).
//!
//! Plans are snapshots of the network weights. [`Params`](mf_nn::Params)
//! carries a mutation counter; [`InferencePlan::is_stale`] compares it so
//! callers (e.g. `mf-mfp`'s `PlanSolver`, or the training loop's periodic
//! evaluation) recompile after an optimizer step instead of serving stale
//! weights.

use mf_nn::{Activation, EmbeddingKind, SdNet};
use mf_tensor::{gemm, gemm_into, unfold1d_circular_into, BufferPool, Layout, PoolStats, Tensor};
use std::sync::OnceLock;
use std::time::Instant;

/// GELU tanh-approximation constant √(2/π), bit-for-bit the value the
/// autodiff graph uses.
const GELU_SQRT_2_OVER_PI: f64 = 0.797_884_560_802_865_4;
/// Cubic coefficient of the GELU tanh approximation.
const GELU_C: f64 = 0.044715;

#[inline]
fn gelu_scalar(x: f64) -> f64 {
    0.5 * x * (1.0 + (GELU_SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

/// One lowered instruction of a compiled plan. Registers are indices into
/// the per-execution slot table; constants index the plan's tensor pool
/// (pre-transposed weights, biases, cached invariants).
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Copy the caller's `[B, L]` boundary batch into a register.
    Load { dst: usize },
    /// Circular im2col: `[B, L·ic] → [B·L, k·ic]`.
    Unfold {
        src: usize,
        dst: usize,
        channels: usize,
        kernel: usize,
    },
    /// `dst = src · consts[weight]` (weight pre-transposed at compile).
    Gemm {
        src: usize,
        weight: usize,
        dst: usize,
    },
    /// `dst = src + broadcast(consts[bias])`.
    AddBias { src: usize, bias: usize, dst: usize },
    /// Pure data copy into a register of a different shape.
    Reshape { src: usize, dst: usize },
    /// Pointwise nonlinearity (the network's configured activation).
    Activation { src: usize, dst: usize },
    /// Fused input-split combine: `dst[b·q + r] = consts[cached][r] + src[b]`
    /// — the cached `W_x · X` rows plus the per-boundary projection,
    /// replacing the graph's `repeat_rows` + `add` pair.
    SplitAdd {
        src: usize,
        cached: usize,
        dst: usize,
    },
    /// Copy the final register into the caller's output buffer.
    Store { src: usize },
}

/// Shape of a register: `rows_per_b * B` rows × `cols` columns, so one
/// plan serves any batch size.
#[derive(Clone, Copy, Debug)]
struct RegShape {
    rows_per_b: usize,
    cols: usize,
}

/// Reusable execution scratch: a buffer pool plus warm-allocation
/// accounting. One workspace serves one thread; executions on the same
/// workspace after the first reuse all of its buffers.
#[derive(Debug)]
pub struct Workspace {
    pool: BufferPool,
    warmed: bool,
    warm_allocs: u64,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self {
            pool: BufferPool::new(),
            warmed: false,
            warm_allocs: 0,
        }
    }

    /// Pool misses observed on *warm* executions (anything after the first
    /// call). Zero means the plan is running allocation-free.
    pub fn warm_allocs(&self) -> u64 {
        self.warm_allocs
    }

    /// Underlying buffer-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

/// A forward-only compiled execution plan for one [`SdNet`] and one fixed
/// set of query points. See the crate docs for the contract.
#[derive(Clone, Debug)]
pub struct InferencePlan {
    steps: Vec<Step>,
    regs: Vec<RegShape>,
    consts: Vec<Tensor>,
    activation: Activation,
    boundary_len: usize,
    q: usize,
    params_version: u64,
}

impl InferencePlan {
    /// Whether a network can be lowered: the plan implements the paper's
    /// input-split embedding (the `Concat` baseline stays on the graph
    /// path).
    pub fn supports(net: &SdNet) -> bool {
        net.config().embedding == EmbeddingKind::Split
    }

    /// Lower `net` for the fixed query points `points` (`[q, 2]` local
    /// physical coordinates, shared by every boundary in a batch).
    ///
    /// Compilation pre-transposes every weight matrix, normalizes and
    /// Fourier-encodes the coordinates, and computes the `W_x · X` half of
    /// the input-split layer — all the work that does not depend on
    /// boundary values. Compile-time allocation is unrestricted; the
    /// resulting plan executes without heap allocation on a warm
    /// [`Workspace`].
    ///
    /// # Panics
    /// If the network uses the `Concat` embedding (check
    /// [`InferencePlan::supports`] first) or `points` is not `[q, 2]`.
    pub fn compile(net: &SdNet, points: &Tensor) -> Self {
        let cfg = net.config();
        assert!(
            Self::supports(net),
            "InferencePlan: only the input-split embedding is supported"
        );
        assert_eq!(points.cols(), 2, "InferencePlan: points must be [q, 2]");
        let q = points.rows();
        let l = cfg.boundary_len;

        let mut consts: Vec<Tensor> = Vec::new();
        let mut regs: Vec<RegShape> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let push_const = |consts: &mut Vec<Tensor>, t: Tensor| {
            consts.push(t);
            consts.len() - 1
        };
        let push_reg = |regs: &mut Vec<RegShape>, rows_per_b: usize, cols: usize| {
            regs.push(RegShape { rows_per_b, cols });
            regs.len() - 1
        };

        // Cached invariant #1: normalized + Fourier-encoded coordinates.
        let base = points
            .add_scalar(-0.5 * cfg.coord_extent)
            .scale(2.0 / cfg.coord_extent);
        let mut feats = base.clone();
        for j in 0..cfg.coord_fourier {
            let freq = std::f64::consts::PI * (1 << j) as f64;
            let scaled = base.scale(freq);
            let s = scaled.map(f64::sin);
            let c = scaled.map(f64::cos);
            feats = feats.concat_cols(&s);
            feats = feats.concat_cols(&c);
        }
        // Cached invariant #2: the coordinate half of the split layer.
        let (wg_id, wx_id, b0_id) = net.split_params();
        let hx = gemm(
            &feats,
            Layout::Normal,
            net.params.get(wx_id),
            Layout::Transposed,
        );
        let hx_c = push_const(&mut consts, hx);

        // Boundary load + conv embedding.
        let mut cur = push_reg(&mut regs, 1, l);
        steps.push(Step::Load { dst: cur });
        let n_convs = net.convs().len();
        for (i, conv) in net.convs().iter().enumerate() {
            let (ic, oc, k) = (conv.in_channels(), conv.out_channels(), conv.kernel());
            let len = regs[cur].cols / ic;
            let u = push_reg(&mut regs, len, k * ic);
            steps.push(Step::Unfold {
                src: cur,
                dst: u,
                channels: ic,
                kernel: k,
            });
            let wt = push_const(&mut consts, net.params.get(conv.weight()).transpose());
            let y = push_reg(&mut regs, len, oc);
            steps.push(Step::Gemm {
                src: u,
                weight: wt,
                dst: y,
            });
            cur = y;
            if let Some(b) = conv.bias() {
                let bc = push_const(&mut consts, net.params.get(b).clone());
                let yb = push_reg(&mut regs, len, oc);
                steps.push(Step::AddBias {
                    src: cur,
                    bias: bc,
                    dst: yb,
                });
                cur = yb;
            }
            let r = push_reg(&mut regs, 1, len * oc);
            steps.push(Step::Reshape { src: cur, dst: r });
            cur = r;
            // Nonlinearity between conv layers only (the final embedding
            // stays linear so the split == concat algebra holds).
            if i + 1 < n_convs && cfg.activation != Activation::Identity {
                let a = push_reg(&mut regs, 1, len * oc);
                steps.push(Step::Activation { src: cur, dst: a });
                cur = a;
            }
        }

        // Input-split layer: per-boundary projection + cached W_x·X.
        let d0 = cfg.hidden[0];
        let wg_t = push_const(&mut consts, net.params.get(wg_id).transpose());
        let hg = push_reg(&mut regs, 1, d0);
        steps.push(Step::Gemm {
            src: cur,
            weight: wg_t,
            dst: hg,
        });
        let h = push_reg(&mut regs, q, d0);
        steps.push(Step::SplitAdd {
            src: hg,
            cached: hx_c,
            dst: h,
        });
        let b0_c = push_const(&mut consts, net.params.get(b0_id).clone());
        let hb = push_reg(&mut regs, q, d0);
        steps.push(Step::AddBias {
            src: h,
            bias: b0_c,
            dst: hb,
        });
        cur = hb;
        if cfg.activation != Activation::Identity {
            let a = push_reg(&mut regs, q, d0);
            steps.push(Step::Activation { src: cur, dst: a });
            cur = a;
        }

        // Dense trunk + scalar head.
        for lin in net.trunk().iter().chain(std::iter::once(net.head())) {
            let dn = lin.out_dim();
            let wt = push_const(&mut consts, net.params.get(lin.weight()).transpose());
            let y = push_reg(&mut regs, q, dn);
            steps.push(Step::Gemm {
                src: cur,
                weight: wt,
                dst: y,
            });
            cur = y;
            if let Some(b) = lin.bias() {
                let bc = push_const(&mut consts, net.params.get(b).clone());
                let yb = push_reg(&mut regs, q, dn);
                steps.push(Step::AddBias {
                    src: cur,
                    bias: bc,
                    dst: yb,
                });
                cur = yb;
            }
            // Trunk layers are activated, the head is not.
            if dn != 1 && cfg.activation != Activation::Identity {
                let a = push_reg(&mut regs, q, dn);
                steps.push(Step::Activation { src: cur, dst: a });
                cur = a;
            }
        }
        steps.push(Step::Store { src: cur });

        Self {
            steps,
            regs,
            consts,
            activation: cfg.activation,
            boundary_len: l,
            q,
            params_version: net.params.version(),
        }
    }

    /// Points per boundary this plan was compiled for.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Boundary walk length this plan expects.
    pub fn boundary_len(&self) -> usize {
        self.boundary_len
    }

    /// Number of lowered instructions (for introspection and tests).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The [`Params`](mf_nn::Params) mutation-counter value the plan was
    /// compiled against.
    pub fn params_version(&self) -> u64 {
        self.params_version
    }

    /// True when the network's parameters have (possibly) changed since
    /// compilation and the plan must be rebuilt before its results can be
    /// trusted.
    pub fn is_stale(&self, net: &SdNet) -> bool {
        net.params.version() != self.params_version
    }

    /// The cached normalized/Fourier query-coordinate projection
    /// `W_x · X` (`[q, d0]`).
    pub fn cached_split(&self) -> &Tensor {
        &self.consts[0]
    }

    /// Execute the plan on a `[B, L]` boundary batch, writing the
    /// `[B·q, 1]` predictions into `out`. Allocation-free once `ws` is
    /// warm.
    ///
    /// # Panics
    /// On boundary/output shape mismatch.
    pub fn execute_into(&self, ws: &mut Workspace, boundaries: &Tensor, out: &mut Tensor) {
        let b = boundaries.rows();
        assert_eq!(
            boundaries.cols(),
            self.boundary_len,
            "InferencePlan: boundary length mismatch (expected {}, got {})",
            self.boundary_len,
            boundaries.cols()
        );
        assert_eq!(
            out.shape(),
            (b * self.q, 1),
            "InferencePlan: output must be [B·q, 1]"
        );
        // Whole-launch attribution; per-kernel zones below nest inside.
        mf_profile::zone!("plan_launch");
        let t0 = Instant::now();
        let miss0 = ws.pool.stats().misses;
        let act: fn(f64) -> f64 = match self.activation {
            Activation::Gelu => gelu_scalar,
            Activation::Tanh => f64::tanh,
            Activation::Identity => std::convert::identity,
        };

        let mut slots: Vec<Option<Tensor>> = vec![None; self.regs.len()];
        for step in &self.steps {
            match *step {
                Step::Load { dst } => {
                    let mut t = self.acquire_dirty(ws, dst, b);
                    t.as_mut_slice().copy_from_slice(boundaries.as_slice());
                    slots[dst] = Some(t);
                }
                Step::Unfold {
                    src,
                    dst,
                    channels,
                    kernel,
                } => {
                    mf_profile::zone!("unfold");
                    let s = slots[src].take().expect("register consumed twice");
                    let mut d = self.acquire_dirty(ws, dst, b);
                    unfold1d_circular_into(&s, channels, kernel, &mut d);
                    ws.pool.release(s);
                    slots[dst] = Some(d);
                }
                Step::Gemm { src, weight, dst } => {
                    mf_profile::zone!("gemm");
                    let s = slots[src].take().expect("register consumed twice");
                    // The GEMM kernel accumulates, so its destination is
                    // the one register that must come back zero-filled.
                    let mut d = self.acquire(ws, dst, b);
                    gemm_into(
                        &s,
                        Layout::Normal,
                        &self.consts[weight],
                        Layout::Normal,
                        &mut d,
                    );
                    ws.pool.release(s);
                    slots[dst] = Some(d);
                }
                Step::AddBias { src, bias, dst } => {
                    let s = slots[src].take().expect("register consumed twice");
                    let mut d = self.acquire_dirty(ws, dst, b);
                    s.broadcast_row_add_into(&self.consts[bias], &mut d);
                    ws.pool.release(s);
                    slots[dst] = Some(d);
                }
                Step::Reshape { src, dst } => {
                    let s = slots[src].take().expect("register consumed twice");
                    let mut d = self.acquire_dirty(ws, dst, b);
                    s.copy_into(&mut d);
                    ws.pool.release(s);
                    slots[dst] = Some(d);
                }
                Step::Activation { src, dst } => {
                    mf_profile::zone!("activation");
                    let s = slots[src].take().expect("register consumed twice");
                    let mut d = self.acquire_dirty(ws, dst, b);
                    s.map_into(&mut d, act);
                    ws.pool.release(s);
                    slots[dst] = Some(d);
                }
                Step::SplitAdd { src, cached, dst } => {
                    mf_profile::zone!("split_add");
                    let s = slots[src].take().expect("register consumed twice");
                    let mut d = self.acquire_dirty(ws, dst, b);
                    let hx = &self.consts[cached];
                    let (q, d0) = hx.shape();
                    let ds = d.as_mut_slice();
                    let xs = hx.as_slice();
                    for bi in 0..b {
                        let g = s.row(bi);
                        for r in 0..q {
                            let o = &mut ds[(bi * q + r) * d0..(bi * q + r + 1) * d0];
                            for (c, (x, gg)) in xs[r * d0..(r + 1) * d0].iter().zip(g).enumerate() {
                                o[c] = x + gg;
                            }
                        }
                    }
                    ws.pool.release(s);
                    slots[dst] = Some(d);
                }
                Step::Store { src } => {
                    let s = slots[src].take().expect("register consumed twice");
                    out.as_mut_slice().copy_from_slice(s.as_slice());
                    ws.pool.release(s);
                }
            }
        }
        debug_assert!(slots.iter().all(Option::is_none), "leaked plan register");

        // Registry lookups lock a process-wide mutex; resolve the handles
        // once instead of on every launch.
        static WARM_ALLOCS: OnceLock<mf_telemetry::Counter> = OnceLock::new();
        static PTS_PER_S: OnceLock<mf_telemetry::Gauge> = OnceLock::new();
        let misses = ws.pool.stats().misses - miss0;
        if ws.warmed {
            ws.warm_allocs += misses;
            if misses > 0 {
                WARM_ALLOCS
                    .get_or_init(|| mf_telemetry::counter("infer.warm_allocs"))
                    .add(misses);
            }
        } else {
            ws.warmed = true;
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt > 0.0 {
            PTS_PER_S
                .get_or_init(|| mf_telemetry::gauge("infer.pts_per_s"))
                .set((b * self.q) as f64 / dt);
        }
    }

    /// Convenience wrapper around [`InferencePlan::execute_into`] that
    /// allocates the `[B·q, 1]` output.
    pub fn execute(&self, ws: &mut Workspace, boundaries: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(boundaries.rows() * self.q, 1);
        self.execute_into(ws, boundaries, &mut out);
        out
    }

    /// Zero-filled register buffer (GEMM destinations: the kernel
    /// accumulates).
    fn acquire(&self, ws: &mut Workspace, reg: usize, b: usize) -> Tensor {
        let RegShape { rows_per_b, cols } = self.regs[reg];
        ws.pool.acquire(rows_per_b * b, cols)
    }

    /// Register buffer with unspecified contents, for steps that
    /// overwrite every element — skips the zero-fill memset.
    fn acquire_dirty(&self, ws: &mut Workspace, reg: usize, b: usize) -> Tensor {
        let RegShape { rows_per_b, cols } = self.regs[reg];
        ws.pool.acquire_dirty(rows_per_b * b, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_nn::SdNetConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn tiled(points: &Tensor, b: usize) -> Tensor {
        let mut v = Vec::with_capacity(b * points.numel());
        for _ in 0..b {
            v.extend_from_slice(points.as_slice());
        }
        Tensor::from_vec(b * points.rows(), 2, v)
    }

    fn random_case(cfg: SdNetConfig, seed: u64, b: usize, q: usize) -> (SdNet, Tensor, Tensor) {
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(seed));
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let l = net.config().boundary_len;
        let bounds = Tensor::from_fn(b, l, |_, _| rng.gen_range(-1.0..1.0));
        let extent = net.config().coord_extent;
        let pts = Tensor::from_fn(q, 2, |_, _| rng.gen_range(0.0..extent));
        (net, bounds, pts)
    }

    fn assert_bitwise(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "row {i}: plan {y} vs graph {x} differ in bits"
            );
        }
    }

    #[test]
    fn matches_graph_path_bitwise_across_architectures() {
        let mut base = SdNetConfig::small(16);
        base.conv_channels = vec![2];
        base.hidden = vec![12, 12];
        let mut fourier = base.clone();
        fourier.coord_fourier = 4;
        let mut no_conv = base.clone();
        no_conv.conv_channels = vec![];
        let mut tanh = base.clone();
        tanh.activation = Activation::Tanh;
        let mut identity = base.clone();
        identity.activation = Activation::Identity;
        let mut deep = base.clone();
        deep.conv_channels = vec![3, 2];
        deep.hidden = vec![10, 8, 6];
        let mut single = base.clone();
        single.hidden = vec![9];

        for (i, cfg) in [base, fourier, no_conv, tanh, identity, deep, single]
            .into_iter()
            .enumerate()
        {
            let (net, bounds, pts) = random_case(cfg, 100 + i as u64, 3, 7);
            let plan = InferencePlan::compile(&net, &pts);
            let mut ws = Workspace::new();
            let got = plan.execute(&mut ws, &bounds);
            let want = net.predict(&bounds, &tiled(&pts, 3), 7);
            assert_bitwise(&want, &got);
        }
    }

    #[test]
    fn warm_calls_hit_the_pool_only() {
        let mut cfg = SdNetConfig::small(16);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![12, 12];
        cfg.coord_fourier = 4;
        let (net, bounds, pts) = random_case(cfg, 7, 4, 9);
        let plan = InferencePlan::compile(&net, &pts);
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(4 * 9, 1);
        plan.execute_into(&mut ws, &bounds, &mut out); // cold
        for _ in 0..10 {
            plan.execute_into(&mut ws, &bounds, &mut out);
        }
        assert_eq!(ws.warm_allocs(), 0, "warm executions must not allocate");
        assert!(ws.pool_stats().hits > 0);
    }

    #[test]
    fn one_plan_serves_multiple_batch_sizes() {
        let mut cfg = SdNetConfig::small(12);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![8, 8];
        let (net, _, pts) = random_case(cfg, 11, 1, 5);
        let plan = InferencePlan::compile(&net, &pts);
        let mut ws = Workspace::new();
        for b in [1usize, 3, 8] {
            let mut rng = ChaCha8Rng::seed_from_u64(b as u64);
            let bounds = Tensor::from_fn(b, 12, |_, _| rng.gen_range(-1.0..1.0));
            let got = plan.execute(&mut ws, &bounds);
            let want = net.predict(&bounds, &tiled(&pts, b), 5);
            assert_bitwise(&want, &got);
        }
    }

    #[test]
    fn staleness_tracks_parameter_mutations() {
        let mut cfg = SdNetConfig::small(12);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![8];
        let (mut net, bounds, pts) = random_case(cfg, 3, 2, 4);
        let plan = InferencePlan::compile(&net, &pts);
        assert!(!plan.is_stale(&net));
        // Mutate a weight the way an optimizer step would.
        for t in net.params.tensors_mut() {
            t.as_mut_slice().iter_mut().for_each(|v| *v *= 0.5);
        }
        assert!(plan.is_stale(&net));
        // A recompiled plan agrees with the new weights.
        let plan2 = InferencePlan::compile(&net, &pts);
        assert!(!plan2.is_stale(&net));
        let mut ws = Workspace::new();
        let got = plan2.execute(&mut ws, &bounds);
        let want = net.predict(&bounds, &tiled(&pts, 2), 4);
        assert_bitwise(&want, &got);
    }

    #[test]
    fn rejects_concat_embedding() {
        let mut cfg = SdNetConfig::small(12);
        cfg.embedding = EmbeddingKind::Concat;
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(0));
        assert!(!InferencePlan::supports(&net));
    }

    #[test]
    #[should_panic(expected = "boundary length mismatch")]
    fn rejects_wrong_boundary_width() {
        let mut cfg = SdNetConfig::small(12);
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![8];
        let (net, _, pts) = random_case(cfg, 5, 2, 4);
        let plan = InferencePlan::compile(&net, &pts);
        let mut ws = Workspace::new();
        let _ = plan.execute(&mut ws, &Tensor::zeros(2, 10));
    }
}
