//! Size-class buffer pool for tensor storage.
//!
//! The autodiff arena (`mf-autodiff`) allocates thousands of short-lived
//! tensors per training step: every forward node, every adjoint of the
//! triple-chained PDE backward. A [`BufferPool`] recycles those buffers
//! across steps so the steady-state hot path performs (near-)zero heap
//! allocation — the "allocation-lean" requirement of the ROADMAP's
//! "fast as the hardware allows" north star.
//!
//! Buffers are binned by power-of-two capacity class. A miss allocates a
//! buffer whose capacity is rounded *up* to the class size, so every
//! pool-origin buffer can later serve any request of its class — repeated
//! steps with identical shapes therefore converge to zero misses after the
//! first (warm-up) step. Externally-built buffers (e.g. `Tensor::from_vec`
//! with an odd length) are still accepted on release and binned by the
//! class they can safely serve.

use crate::Tensor;

/// Number of size classes: class `k` holds buffers with
/// `capacity ∈ [2^k, 2^(k+1))` elements. 48 classes cover any realistic
/// tensor (2^47 f64 ≈ 1 PiB).
const CLASSES: usize = 48;

/// Cumulative pool counters (monotonic; diff two snapshots for per-step
/// numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a recycled buffer.
    pub hits: u64,
    /// Acquisitions that had to touch the heap allocator.
    pub misses: u64,
    /// Bytes newly allocated by misses (capacity bytes).
    pub miss_bytes: u64,
    /// Buffers handed back by [`BufferPool::release`].
    pub released: u64,
}

impl PoolStats {
    /// `self - earlier`, for per-step deltas.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            miss_bytes: self.miss_bytes - earlier.miss_bytes,
            released: self.released - earlier.released,
        }
    }
}

/// Freelists of `Vec<f64>` storage binned by power-of-two capacity.
#[derive(Debug, Default)]
pub struct BufferPool {
    classes: Vec<Vec<Vec<f64>>>,
    held_bytes: usize,
    stats: PoolStats,
}

/// Smallest `k` with `2^k >= n` (`n >= 1`).
#[inline]
fn class_for_request(n: usize) -> usize {
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Largest `k` with `2^k <= cap`; buffers in class `k` serve any request
/// of up to `2^k` elements.
#[inline]
fn class_for_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

impl BufferPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self {
            classes: (0..CLASSES).map(|_| Vec::new()).collect(),
            held_bytes: 0,
            stats: PoolStats::default(),
        }
    }

    /// A zero-filled `rows×cols` tensor, recycled when possible.
    pub fn acquire(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut t = self.acquire_dirty(rows, cols);
        t.as_mut_slice().fill(0.0);
        t
    }

    /// A `rows×cols` tensor with **unspecified contents** (stale data from
    /// a previous user when recycled), recycled when possible. For
    /// destinations that overwrite every element; accumulating kernels
    /// (`gemm_into`) need the zero-filled [`BufferPool::acquire`].
    pub fn acquire_dirty(&mut self, rows: usize, cols: usize) -> Tensor {
        let n = (rows * cols).max(1);
        let k = class_for_request(n);
        let mut buf = match self.classes.get_mut(k).and_then(Vec::pop) {
            Some(buf) => {
                debug_assert!(buf.capacity() >= n);
                self.held_bytes -= buf.capacity() * std::mem::size_of::<f64>();
                self.stats.hits += 1;
                buf
            }
            None => {
                let cap = 1usize << k;
                self.stats.misses += 1;
                self.stats.miss_bytes += (cap * std::mem::size_of::<f64>()) as u64;
                Vec::with_capacity(cap)
            }
        };
        // Adjust the length without wiping what's already there: elements
        // below the old length keep their stale values, any grown region
        // is zero-extended — never uninitialized memory.
        buf.resize(rows * cols, 0.0);
        Tensor::from_vec(rows, cols, buf)
    }

    /// Hand a tensor's storage back for reuse.
    pub fn release(&mut self, t: Tensor) {
        let buf = t.into_vec();
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        self.stats.released += 1;
        let k = class_for_capacity(cap).min(CLASSES - 1);
        self.held_bytes += cap * std::mem::size_of::<f64>();
        self.classes[k].push(buf);
    }

    /// Bytes currently parked in freelists (capacity, i.e. what the heap
    /// allocator sees).
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drop every parked buffer (freelists are emptied, counters kept).
    pub fn trim(&mut self) {
        for c in &mut self.classes {
            c.clear();
        }
        self.held_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_and_shaped() {
        let mut p = BufferPool::new();
        let t = p.acquire(3, 5);
        assert_eq!(t.shape(), (3, 5));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn release_then_acquire_same_shape_hits() {
        let mut p = BufferPool::new();
        let t = p.acquire(4, 4);
        p.release(t);
        assert!(p.held_bytes() >= 16 * 8);
        let t2 = p.acquire(4, 4);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(t2.shape(), (4, 4));
        assert_eq!(p.held_bytes(), 0);
    }

    #[test]
    fn pow2_rounding_lets_nearby_shapes_share_buffers() {
        // 3×5 = 15 and 2×7 = 14 both round to class 4 (16 elements).
        let mut p = BufferPool::new();
        let t = p.acquire(3, 5);
        p.release(t);
        let t2 = p.acquire(2, 7);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(t2.shape(), (2, 7));
    }

    #[test]
    fn stale_data_is_cleared_on_reuse() {
        let mut p = BufferPool::new();
        let mut t = p.acquire(2, 2);
        t.as_mut_slice().fill(7.0);
        p.release(t);
        let t2 = p.acquire(2, 2);
        assert!(t2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn external_odd_capacity_buffers_serve_smaller_requests() {
        // A released capacity-5 buffer lands in class 2 and serves n<=4.
        let mut p = BufferPool::new();
        p.release(Tensor::from_vec(1, 5, vec![1.0; 5]));
        let t = p.acquire(2, 2);
        assert_eq!(p.stats().hits, 1);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stats_deltas() {
        let mut p = BufferPool::new();
        let snap = p.stats();
        let t = p.acquire(8, 8);
        p.release(t);
        let _ = p.acquire(8, 8);
        let d = p.stats().since(&snap);
        assert_eq!(d.misses, 1);
        assert_eq!(d.hits, 1);
        assert_eq!(d.released, 1);
        assert_eq!(d.miss_bytes, 64 * 8);
    }

    #[test]
    fn trim_drops_freelists() {
        let mut p = BufferPool::new();
        let t = p.acquire(4, 1);
        p.release(t);
        p.trim();
        assert_eq!(p.held_bytes(), 0);
        let _ = p.acquire(4, 1);
        assert_eq!(p.stats().misses, 2);
    }
}
