//! Property-based tests of the tensor algebra: the identities the autodiff
//! rules and the GEMM kernel silently rely on.

use crate::{fold1d_circular, gemm, unfold1d_circular, Layout, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and bounded entries.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn addition_commutes(a in tensor(3, 4), b in tensor(3, 4)) {
        prop_assert!(a.add(&b).allclose(&b.add(&a), 1e-12));
    }

    #[test]
    fn multiplication_distributes_over_addition(
        a in tensor(2, 3), b in tensor(2, 3), c in tensor(2, 3)
    ) {
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-9));
    }

    #[test]
    fn matmul_is_associative(a in tensor(2, 3), b in tensor(3, 4), c in tensor(4, 2)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-8), "max diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn matmul_transpose_identity(a in tensor(3, 4), b in tensor(4, 2)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = gemm(&b, Layout::Transposed, &a, Layout::Transposed);
        prop_assert!(lhs.allclose(&rhs, 1e-10));
    }

    #[test]
    fn transposed_layouts_match_explicit_transpose(a in tensor(4, 3), b in tensor(4, 5)) {
        let fast = gemm(&a, Layout::Transposed, &b, Layout::Normal);
        let slow = a.transpose().matmul(&b);
        prop_assert!(fast.allclose(&slow, 1e-10));
    }

    #[test]
    fn dot_product_is_bilinear(a in tensor(1, 6), b in tensor(1, 6), k in -5.0f64..5.0) {
        let lhs = a.scale(k).dot(&b);
        let rhs = k * a.dot(&b);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn repeat_sum_groups_adjoint(x in tensor(3, 2), y in tensor(12, 2)) {
        // <repeat(x), y> == <x, sum_groups(y)>
        let lhs = x.repeat_rows(4).dot(&y);
        let rhs = x.dot(&y.sum_groups(4));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn unfold_fold_adjoint(x in tensor(2, 10), y in tensor(10, 6)) {
        // <unfold(x), y> == <x, fold(y)> with 2 channels, kernel 3.
        let lhs = unfold1d_circular(&x, 2, 3).dot(&y);
        let rhs = x.dot(&fold1d_circular(&y, 2, 2, 3));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn slice_pad_adjoint(x in tensor(3, 4), y in tensor(3, 9)) {
        // <pad(x), y> == <x, slice(y)> for the same window.
        let lhs = x.pad_cols(2, 9).dot(&y);
        let rhs = x.dot(&y.slice_cols(2, 4));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn norms_satisfy_triangle_inequality(a in tensor(4, 4), b in tensor(4, 4)) {
        prop_assert!(a.add(&b).norm_l2() <= a.norm_l2() + b.norm_l2() + 1e-9);
        prop_assert!(a.add(&b).norm_linf() <= a.norm_linf() + b.norm_linf() + 1e-12);
    }

    #[test]
    fn reshape_preserves_sum_and_norm(a in tensor(4, 6)) {
        let r = a.reshape(3, 8);
        prop_assert!((a.sum() - r.sum()).abs() < 1e-9);
        prop_assert!((a.norm_l2() - r.norm_l2()).abs() < 1e-9);
    }

    #[test]
    fn vstack_then_slice_rows_roundtrips(a in tensor(2, 3), b in tensor(4, 3)) {
        let v = Tensor::vstack(&[a.clone(), b.clone()]);
        prop_assert!(v.slice_rows(0, 2).allclose(&a, 0.0));
        prop_assert!(v.slice_rows(2, 4).allclose(&b, 0.0));
    }

    #[test]
    fn sum_axis_decompositions_agree(a in tensor(5, 7)) {
        let total = a.sum();
        prop_assert!((a.sum_axis0().sum() - total).abs() < 1e-9);
        prop_assert!((a.sum_axis1().sum() - total).abs() < 1e-9);
    }

    #[test]
    fn gemm_into_accumulation_is_additive(a in tensor(3, 3), b in tensor(3, 3)) {
        use crate::gemm_into;
        let mut acc = Tensor::zeros(3, 3);
        gemm_into(&a, Layout::Normal, &b, Layout::Normal, &mut acc);
        gemm_into(&a, Layout::Normal, &b, Layout::Normal, &mut acc);
        let twice = a.matmul(&b).scale(2.0);
        prop_assert!(acc.allclose(&twice, 1e-9));
    }

    #[test]
    fn broadcast_row_add_matches_manual(a in tensor(4, 3), row in tensor(1, 3)) {
        let out = a.broadcast_row_add(&row);
        for r in 0..4 {
            for c in 0..3 {
                prop_assert!((out.get(r, c) - a.get(r, c) - row.get(0, c)).abs() < 1e-12);
            }
        }
    }
}
