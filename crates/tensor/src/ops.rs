//! Axis, broadcast and block operations.
//!
//! These are the structural operations behind SDNet's *input-split* layer
//! (§3.2 of the paper) and the Mosaic Flow predictor's boundary bookkeeping:
//! grouped row repetition/summation implement the broadcasted sum
//! `ĝW₁ᵀ ⊕ XW₂ᵀ`, and the column slice/concat pair supports the
//! *input-concat* baseline and extracting ∂u/∂x, ∂u/∂y columns from
//! gradient tensors.

use crate::Tensor;

impl Tensor {
    /// Sum over rows, producing a `1×cols` row vector.
    pub fn sum_axis0(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols());
        let o = out.as_mut_slice();
        for r in 0..self.rows() {
            for (acc, &v) in o.iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
        out
    }

    /// Sum over columns, producing a `rows×1` column vector.
    pub fn sum_axis1(&self) -> Tensor {
        Tensor::from_fn(self.rows(), 1, |r, _| self.row(r).iter().sum())
    }

    /// Add a `1×cols` row vector to every row.
    pub fn broadcast_row_add(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows(), 1, "broadcast_row_add: rhs must be a row vector");
        assert_eq!(
            row.cols(),
            self.cols(),
            "broadcast_row_add: column mismatch"
        );
        let mut out = self.clone();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.row(0)) {
                *o += b;
            }
        }
        out
    }

    /// Repeat every row `q` times consecutively: `[B, d] -> [B*q, d]`.
    ///
    /// This is the broadcast half of the input-split optimization: each
    /// boundary embedding row is shared by the `q` query points of that
    /// boundary without materializing the replicated boundary matrix `G`.
    pub fn repeat_rows(&self, q: usize) -> Tensor {
        assert!(q > 0, "repeat_rows: q must be positive");
        let (b, d) = self.shape();
        let mut out = Tensor::zeros(b * q, d);
        for r in 0..b {
            let src = self.row(r).to_vec();
            for i in 0..q {
                out.row_mut(r * q + i).copy_from_slice(&src);
            }
        }
        out
    }

    /// Sum consecutive groups of `q` rows: `[B*q, d] -> [B, d]`.
    ///
    /// The adjoint of [`Tensor::repeat_rows`].
    pub fn sum_groups(&self, q: usize) -> Tensor {
        assert!(q > 0, "sum_groups: q must be positive");
        let (bq, d) = self.shape();
        assert_eq!(
            bq % q,
            0,
            "sum_groups: {bq} rows not divisible by group size {q}"
        );
        let b = bq / q;
        let mut out = Tensor::zeros(b, d);
        for r in 0..bq {
            let dst = r / q;
            for c in 0..d {
                let v = self.get(r, c);
                *out.row_mut(dst).get_mut(c).unwrap() += v;
            }
        }
        out
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(
            start + len <= self.cols(),
            "slice_cols: [{start}, {}) out of bounds for {} cols",
            start + len,
            self.cols()
        );
        Tensor::from_fn(self.rows(), len, |r, c| self.get(r, start + c))
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(
            start + len <= self.rows(),
            "slice_rows: [{start}, {}) out of bounds for {} rows",
            start + len,
            self.rows()
        );
        let mut out = Tensor::zeros(len, self.cols());
        for r in 0..len {
            out.row_mut(r).copy_from_slice(self.row(start + r));
        }
        out
    }

    /// Horizontal concatenation: `[r×c1] ++ [r×c2] -> [r×(c1+c2)]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows(), other.rows(), "concat_cols: row mismatch");
        let (r, c1) = self.shape();
        let c2 = other.cols();
        let mut out = Tensor::zeros(r, c1 + c2);
        for i in 0..r {
            out.row_mut(i)[..c1].copy_from_slice(self.row(i));
            out.row_mut(i)[c1..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertical concatenation: `[r1×c]` on top of `[r2×c]`.
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols(), other.cols(), "concat_rows: column mismatch");
        let mut data = Vec::with_capacity(self.numel() + other.numel());
        data.extend_from_slice(self.as_slice());
        data.extend_from_slice(other.as_slice());
        Tensor::from_vec(self.rows() + other.rows(), self.cols(), data)
    }

    /// Stack a list of same-width tensors vertically.
    pub fn vstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack: empty input");
        let cols = parts[0].cols();
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols(), cols, "vstack: column mismatch");
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Embed this tensor as columns `[start, start+cols)` of a wider
    /// zero matrix with `total` columns (adjoint of [`Tensor::slice_cols`]).
    pub fn pad_cols(&self, start: usize, total: usize) -> Tensor {
        assert!(
            start + self.cols() <= total,
            "pad_cols: slice exceeds target width"
        );
        let mut out = Tensor::zeros(self.rows(), total);
        for r in 0..self.rows() {
            out.row_mut(r)[start..start + self.cols()].copy_from_slice(self.row(r));
        }
        out
    }

    /// Embed this tensor as rows `[start, start+rows)` of a taller zero
    /// matrix with `total` rows (adjoint of [`Tensor::slice_rows`]).
    pub fn pad_rows(&self, start: usize, total: usize) -> Tensor {
        assert!(
            start + self.rows() <= total,
            "pad_rows: slice exceeds target height"
        );
        let mut out = Tensor::zeros(total, self.cols());
        for r in 0..self.rows() {
            out.row_mut(start + r).copy_from_slice(self.row(r));
        }
        out
    }
}

/// Circular 1-D unfold (im2col) for multi-channel signals stored
/// position-major: row `b` of `input` holds `[pos0·ch0..pos0·chC, pos1·ch0..]`,
/// i.e. `len` positions × `channels` interleaved channels.
///
/// Produces a `[B·len, k·channels]` matrix whose row `(b, p)` is the window
/// of `k` positions centred at `p` (offsets `-(k-1)/2 ..= k/2`), wrapping
/// around the closed boundary curve. A GEMM of the result with a
/// `[k·channels → out_channels]` filter matrix implements circular
/// convolution; this factorization lets the autodiff engine differentiate
/// convolutions to arbitrary order through its GEMM rules.
pub fn unfold1d_circular(input: &Tensor, channels: usize, k: usize) -> Tensor {
    let (b, width) = input.shape();
    assert!(k >= 1, "unfold1d_circular: kernel size must be >= 1");
    assert_eq!(
        width % channels,
        0,
        "unfold1d_circular: width not divisible by channels"
    );
    let len = width / channels;
    assert!(len >= 1, "unfold1d_circular: empty signal");
    let half = (k - 1) / 2;
    let mut out = Tensor::zeros(b * len, k * channels);
    for bi in 0..b {
        let src = input.row(bi);
        for p in 0..len {
            let dst = out.row_mut(bi * len + p);
            for w in 0..k {
                // Window position with circular wrap.
                let pos = (p + len + w - half) % len;
                let s = &src[pos * channels..(pos + 1) * channels];
                dst[w * channels..(w + 1) * channels].copy_from_slice(s);
            }
        }
    }
    out
}

/// Adjoint of [`unfold1d_circular`]: scatter-add windows back onto the signal.
///
/// `grad` is `[B·len, k·channels]`; the result is `[B, len·channels]`.
pub fn fold1d_circular(grad: &Tensor, b: usize, channels: usize, k: usize) -> Tensor {
    let (rows, wk) = grad.shape();
    assert_eq!(wk, k * channels, "fold1d_circular: width mismatch");
    assert_eq!(rows % b, 0, "fold1d_circular: rows not divisible by batch");
    let len = rows / b;
    let half = (k - 1) / 2;
    let mut out = Tensor::zeros(b, len * channels);
    for bi in 0..b {
        for p in 0..len {
            let src = grad.row(bi * len + p);
            let dst = out.row_mut(bi);
            for w in 0..k {
                let pos = (p + len + w - half) % len;
                for c in 0..channels {
                    dst[pos * channels + c] += src[w * channels + c];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axis0_and_axis1() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.sum_axis0().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis1().as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn broadcast_row_add_works() {
        let t = Tensor::zeros(3, 2);
        let row = Tensor::row_vector(&[1.0, 2.0]);
        let out = t.broadcast_row_add(&row);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, 2.0]);
        }
    }

    #[test]
    fn repeat_then_sum_groups_scales_by_q() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let rep = t.repeat_rows(3);
        assert_eq!(rep.shape(), (6, 2));
        assert_eq!(rep.row(0), rep.row(2));
        assert_eq!(rep.row(3), &[3.0, 4.0]);
        let back = rep.sum_groups(3);
        assert!(back.allclose(&t.scale(3.0), 1e-12));
    }

    #[test]
    fn repeat_and_sum_are_adjoint() {
        // <repeat(x), y> == <x, sum_groups(y)> for all x, y.
        let x = Tensor::from_fn(2, 3, |r, c| (r + c) as f64);
        let y = Tensor::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.5);
        let lhs = x.repeat_rows(2).dot(&y);
        let rhs = x.dot(&y.sum_groups(2));
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn slice_and_pad_cols_round_trip() {
        let t = Tensor::from_fn(2, 5, |r, c| (r * 5 + c) as f64);
        let s = t.slice_cols(1, 3);
        assert_eq!(s.row(0), &[1.0, 2.0, 3.0]);
        let p = s.pad_cols(1, 5);
        assert_eq!(p.row(0), &[0.0, 1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn slice_and_pad_rows_round_trip() {
        let t = Tensor::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let s = t.slice_rows(1, 2);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        let p = s.pad_rows(1, 4);
        assert_eq!(p.row(0), &[0.0, 0.0]);
        assert_eq!(p.row(2), &[4.0, 5.0]);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Tensor::ones(2, 2);
        let b = Tensor::zeros(2, 1);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 1.0, 0.0]);
        let d = a.concat_rows(&Tensor::full(1, 2, 5.0));
        assert_eq!(d.shape(), (3, 2));
        assert_eq!(d.row(2), &[5.0, 5.0]);
    }

    #[test]
    fn vstack_matches_repeated_concat() {
        let a = Tensor::full(1, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        let c = Tensor::full(1, 2, 3.0);
        let v = Tensor::vstack(&[a.clone(), b.clone(), c.clone()]);
        assert_eq!(v, a.concat_rows(&b).concat_rows(&c));
    }

    #[test]
    fn unfold_single_channel_windows_wrap() {
        // Signal of 4 positions, 1 channel, kernel 3 -> window offsets -1,0,1.
        let sig = Tensor::row_vector(&[0.0, 1.0, 2.0, 3.0]);
        let u = unfold1d_circular(&sig, 1, 3);
        assert_eq!(u.shape(), (4, 3));
        assert_eq!(u.row(0), &[3.0, 0.0, 1.0]); // wraps to the left
        assert_eq!(u.row(1), &[0.0, 1.0, 2.0]);
        assert_eq!(u.row(3), &[2.0, 3.0, 0.0]); // wraps to the right
    }

    #[test]
    fn unfold_multi_channel_interleaves() {
        // 3 positions × 2 channels, kernel 1: unfold is identity per position.
        let sig = Tensor::row_vector(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let u = unfold1d_circular(&sig, 2, 1);
        assert_eq!(u.shape(), (3, 2));
        assert_eq!(u.row(1), &[2.0, 20.0]);
    }

    #[test]
    fn unfold_and_fold_are_adjoint() {
        // <unfold(x), y> == <x, fold(y)>.
        let x = Tensor::from_fn(2, 8, |r, c| ((r * 8 + c) as f64).sin());
        let y = Tensor::from_fn(8, 6, |r, c| ((r * 6 + c) as f64).cos());
        let lhs = unfold1d_circular(&x, 2, 3).dot(&y);
        let rhs = x.dot(&fold1d_circular(&y, 2, 2, 3));
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn fold_of_unfold_counts_each_position_k_times() {
        let sig = Tensor::row_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let u = unfold1d_circular(&sig, 1, 3);
        let f = fold1d_circular(&u, 1, 1, 3);
        assert!(f.allclose(&sig.scale(3.0), 1e-12));
    }
}
