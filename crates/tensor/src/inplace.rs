//! Write-into variants of the tensor kernels, for pooled output buffers.
//!
//! Every method takes a pre-shaped output tensor (typically fresh from a
//! [`crate::BufferPool`], i.e. zero-filled) and fills it **with exactly the
//! same element ordering and arithmetic as the allocating variant**, so an
//! allocation-lean caller produces bitwise-identical values. Kernels that
//! accumulate (`sum_axis0_into`, `sum_groups_into`, `fold1d_circular_into`)
//! or leave gaps (`pad_*_into`) require the output to be zeroed; the pool
//! guarantees that.

use crate::Tensor;

impl Tensor {
    #[inline]
    fn assert_out_shape(&self, out: &Tensor, rows: usize, cols: usize, op: &str) {
        assert_eq!(
            out.shape(),
            (rows, cols),
            "{op}: output shape {:?} does not match expected {}x{}",
            out.shape(),
            rows,
            cols
        );
        let _ = self;
    }

    /// `out = self ⊕ other` elementwise via `f`.
    pub fn zip_map_into(&self, other: &Tensor, out: &mut Tensor, f: impl Fn(f64, f64) -> f64) {
        assert_eq!(self.shape(), other.shape(), "zip_map_into: shape mismatch");
        self.assert_out_shape(out, self.rows(), self.cols(), "zip_map_into");
        for ((o, &a), &b) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.as_slice())
            .zip(other.as_slice())
        {
            *o = f(a, b);
        }
    }

    /// `out = f(self)` elementwise.
    pub fn map_into(&self, out: &mut Tensor, f: impl Fn(f64) -> f64) {
        self.assert_out_shape(out, self.rows(), self.cols(), "map_into");
        for (o, &a) in out.as_mut_slice().iter_mut().zip(self.as_slice()) {
            *o = f(a);
        }
    }

    /// `out = self + other`.
    pub fn add_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_map_into(other, out, |a, b| a + b);
    }

    /// `out = self - other`.
    pub fn sub_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_map_into(other, out, |a, b| a - b);
    }

    /// `out = self ⊙ other`.
    pub fn mul_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_map_into(other, out, |a, b| a * b);
    }

    /// `out = self * s`.
    pub fn scale_into(&self, s: f64, out: &mut Tensor) {
        self.map_into(out, |x| x * s);
    }

    /// `out = self + s`.
    pub fn add_scalar_into(&self, s: f64, out: &mut Tensor) {
        self.map_into(out, |x| x + s);
    }

    /// `out = selfᵀ` (same blocked traversal as [`Tensor::transpose`]).
    pub fn transpose_into(&self, out: &mut Tensor) {
        self.assert_out_shape(out, self.cols(), self.rows(), "transpose_into");
        const B: usize = 32;
        let (rows, cols) = self.shape();
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for rb in (0..rows).step_by(B) {
            for cb in (0..cols).step_by(B) {
                for r in rb..(rb + B).min(rows) {
                    for c in cb..(cb + B).min(cols) {
                        dst[c * rows + r] = src[r * cols + c];
                    }
                }
            }
        }
    }

    /// Row sum into a zeroed `1×cols` output.
    pub fn sum_axis0_into(&self, out: &mut Tensor) {
        self.assert_out_shape(out, 1, self.cols(), "sum_axis0_into");
        let o = out.as_mut_slice();
        for r in 0..self.rows() {
            for (acc, &v) in o.iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
    }

    /// Repeat every row `q` times into a `[rows·q × cols]` output.
    pub fn repeat_rows_into(&self, q: usize, out: &mut Tensor) {
        assert!(q > 0, "repeat_rows_into: q must be positive");
        let (b, d) = self.shape();
        self.assert_out_shape(out, b * q, d, "repeat_rows_into");
        for r in 0..b {
            for i in 0..q {
                let dst = out.row_mut(r * q + i);
                dst.copy_from_slice(&self.as_slice()[r * d..(r + 1) * d]);
            }
        }
    }

    /// Sum consecutive groups of `q` rows into a zeroed `[rows/q × cols]`
    /// output.
    pub fn sum_groups_into(&self, q: usize, out: &mut Tensor) {
        assert!(q > 0, "sum_groups_into: q must be positive");
        let (bq, d) = self.shape();
        assert_eq!(bq % q, 0, "sum_groups_into: rows not divisible by q");
        self.assert_out_shape(out, bq / q, d, "sum_groups_into");
        for r in 0..bq {
            let dst = out.row_mut(r / q);
            for (o, &v) in dst.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Copy columns `[start, start+len)` into a `[rows × len]` output.
    pub fn slice_cols_into(&self, start: usize, len: usize, out: &mut Tensor) {
        assert!(start + len <= self.cols(), "slice_cols_into: out of bounds");
        self.assert_out_shape(out, self.rows(), len, "slice_cols_into");
        for r in 0..self.rows() {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + len]);
        }
    }

    /// Copy rows `[start, start+len)` into a `[len × cols]` output.
    pub fn slice_rows_into(&self, start: usize, len: usize, out: &mut Tensor) {
        assert!(start + len <= self.rows(), "slice_rows_into: out of bounds");
        self.assert_out_shape(out, len, self.cols(), "slice_rows_into");
        for r in 0..len {
            out.row_mut(r).copy_from_slice(self.row(start + r));
        }
    }

    /// Embed as columns `[start, …)` of a zeroed width-`total` output.
    pub fn pad_cols_into(&self, start: usize, total: usize, out: &mut Tensor) {
        assert!(
            start + self.cols() <= total,
            "pad_cols_into: slice exceeds target width"
        );
        self.assert_out_shape(out, self.rows(), total, "pad_cols_into");
        for r in 0..self.rows() {
            out.row_mut(r)[start..start + self.cols()].copy_from_slice(self.row(r));
        }
    }

    /// Embed as rows `[start, …)` of a zeroed height-`total` output.
    pub fn pad_rows_into(&self, start: usize, total: usize, out: &mut Tensor) {
        assert!(
            start + self.rows() <= total,
            "pad_rows_into: slice exceeds target height"
        );
        self.assert_out_shape(out, total, self.cols(), "pad_rows_into");
        for r in 0..self.rows() {
            out.row_mut(start + r).copy_from_slice(self.row(r));
        }
    }

    /// `out = self + broadcast(row)` where `row` is `1×cols` — the fused
    /// bias add. Element order matches adding a row-repeated matrix.
    pub fn broadcast_row_add_into(&self, row: &Tensor, out: &mut Tensor) {
        assert_eq!(
            row.rows(),
            1,
            "broadcast_row_add_into: rhs must be a row vector"
        );
        assert_eq!(
            row.cols(),
            self.cols(),
            "broadcast_row_add_into: column mismatch"
        );
        self.assert_out_shape(out, self.rows(), self.cols(), "broadcast_row_add_into");
        for r in 0..self.rows() {
            for ((o, &a), &b) in out.row_mut(r).iter_mut().zip(self.row(r)).zip(row.row(0)) {
                *o = a + b;
            }
        }
    }

    /// `out = [self | other]`.
    pub fn concat_cols_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rows(), other.rows(), "concat_cols_into: row mismatch");
        let (r, c1) = self.shape();
        let c2 = other.cols();
        self.assert_out_shape(out, r, c1 + c2, "concat_cols_into");
        for i in 0..r {
            let dst = out.row_mut(i);
            dst[..c1].copy_from_slice(self.row(i));
            dst[c1..].copy_from_slice(other.row(i));
        }
    }

    /// `out = [self; other]`.
    pub fn concat_rows_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "concat_rows_into: column mismatch"
        );
        self.assert_out_shape(
            out,
            self.rows() + other.rows(),
            self.cols(),
            "concat_rows_into",
        );
        let n1 = self.numel();
        out.as_mut_slice()[..n1].copy_from_slice(self.as_slice());
        out.as_mut_slice()[n1..].copy_from_slice(other.as_slice());
    }

    /// Copy this tensor's data into a same-sized output of possibly
    /// different shape (the reshape/copy primitive).
    pub fn copy_into(&self, out: &mut Tensor) {
        assert_eq!(self.numel(), out.numel(), "copy_into: size mismatch");
        out.as_mut_slice().copy_from_slice(self.as_slice());
    }
}

/// [`crate::unfold1d_circular`] into a zeroed `[B·len × k·channels]` output.
pub fn unfold1d_circular_into(input: &Tensor, channels: usize, k: usize, out: &mut Tensor) {
    let (b, width) = input.shape();
    assert!(k >= 1, "unfold1d_circular_into: kernel size must be >= 1");
    assert_eq!(
        width % channels,
        0,
        "unfold1d_circular_into: width not divisible by channels"
    );
    let len = width / channels;
    assert!(len >= 1, "unfold1d_circular_into: empty signal");
    assert_eq!(
        out.shape(),
        (b * len, k * channels),
        "unfold1d_circular_into: output shape mismatch"
    );
    let half = (k - 1) / 2;
    for bi in 0..b {
        for p in 0..len {
            for w in 0..k {
                let pos = (p + len + w - half) % len;
                let s = &input.row(bi)[pos * channels..(pos + 1) * channels];
                out.row_mut(bi * len + p)[w * channels..(w + 1) * channels].copy_from_slice(s);
            }
        }
    }
}

/// [`crate::fold1d_circular`] into a zeroed `[B × len·channels]` output.
pub fn fold1d_circular_into(grad: &Tensor, b: usize, channels: usize, k: usize, out: &mut Tensor) {
    let (rows, wk) = grad.shape();
    assert_eq!(wk, k * channels, "fold1d_circular_into: width mismatch");
    assert_eq!(
        rows % b,
        0,
        "fold1d_circular_into: rows not divisible by batch"
    );
    let len = rows / b;
    assert_eq!(
        out.shape(),
        (b, len * channels),
        "fold1d_circular_into: output shape mismatch"
    );
    let half = (k - 1) / 2;
    for bi in 0..b {
        for p in 0..len {
            let src = grad.row(bi * len + p);
            let dst = out.row_mut(bi);
            for w in 0..k {
                let pos = (p + len + w - half) % len;
                for c in 0..channels {
                    dst[pos * channels + c] += src[w * channels + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fold1d_circular, unfold1d_circular};

    fn t(r: usize, c: usize) -> Tensor {
        Tensor::from_fn(r, c, |i, j| ((i * 13 + j * 7) as f64 * 0.37).sin())
    }

    /// Every `_into` kernel must reproduce its allocating twin bit-for-bit.
    #[test]
    fn into_kernels_match_allocating_kernels_bitwise() {
        let a = t(5, 7);
        let b = t(5, 7);
        let cases: Vec<(&str, Tensor, Tensor)> = vec![
            ("add", a.add(&b), {
                let mut o = Tensor::zeros(5, 7);
                a.add_into(&b, &mut o);
                o
            }),
            ("sub", a.sub(&b), {
                let mut o = Tensor::zeros(5, 7);
                a.sub_into(&b, &mut o);
                o
            }),
            ("mul", a.mul(&b), {
                let mut o = Tensor::zeros(5, 7);
                a.mul_into(&b, &mut o);
                o
            }),
            ("scale", a.scale(-1.37), {
                let mut o = Tensor::zeros(5, 7);
                a.scale_into(-1.37, &mut o);
                o
            }),
            ("add_scalar", a.add_scalar(0.77), {
                let mut o = Tensor::zeros(5, 7);
                a.add_scalar_into(0.77, &mut o);
                o
            }),
            ("transpose", a.transpose(), {
                let mut o = Tensor::zeros(7, 5);
                a.transpose_into(&mut o);
                o
            }),
            ("sum_axis0", a.sum_axis0(), {
                let mut o = Tensor::zeros(1, 7);
                a.sum_axis0_into(&mut o);
                o
            }),
            ("repeat_rows", a.repeat_rows(3), {
                let mut o = Tensor::zeros(15, 7);
                a.repeat_rows_into(3, &mut o);
                o
            }),
            ("sum_groups", t(6, 4).sum_groups(2), {
                let mut o = Tensor::zeros(3, 4);
                t(6, 4).sum_groups_into(2, &mut o);
                o
            }),
            ("slice_cols", a.slice_cols(2, 3), {
                let mut o = Tensor::zeros(5, 3);
                a.slice_cols_into(2, 3, &mut o);
                o
            }),
            ("slice_rows", a.slice_rows(1, 3), {
                let mut o = Tensor::zeros(3, 7);
                a.slice_rows_into(1, 3, &mut o);
                o
            }),
            ("pad_cols", a.pad_cols(2, 11), {
                let mut o = Tensor::zeros(5, 11);
                a.pad_cols_into(2, 11, &mut o);
                o
            }),
            ("pad_rows", a.pad_rows(1, 8), {
                let mut o = Tensor::zeros(8, 7);
                a.pad_rows_into(1, 8, &mut o);
                o
            }),
            ("broadcast_row_add", a.broadcast_row_add(&t(1, 7)), {
                let mut o = Tensor::zeros(5, 7);
                a.broadcast_row_add_into(&t(1, 7), &mut o);
                o
            }),
            ("concat_cols", a.concat_cols(&b), {
                let mut o = Tensor::zeros(5, 14);
                a.concat_cols_into(&b, &mut o);
                o
            }),
            ("concat_rows", a.concat_rows(&b), {
                let mut o = Tensor::zeros(10, 7);
                a.concat_rows_into(&b, &mut o);
                o
            }),
            ("unfold", unfold1d_circular(&t(2, 8), 2, 3), {
                let mut o = Tensor::zeros(8, 6);
                unfold1d_circular_into(&t(2, 8), 2, 3, &mut o);
                o
            }),
            ("fold", fold1d_circular(&t(8, 6), 2, 2, 3), {
                let mut o = Tensor::zeros(2, 8);
                fold1d_circular_into(&t(8, 6), 2, 2, 3, &mut o);
                o
            }),
        ];
        for (name, want, got) in cases {
            assert_eq!(want.shape(), got.shape(), "{name}: shape");
            for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
                assert_eq!(w.to_bits(), g.to_bits(), "{name}: value drift");
            }
        }
    }

    #[test]
    fn copy_into_reshapes() {
        let a = t(2, 6);
        let mut o = Tensor::zeros(3, 4);
        a.copy_into(&mut o);
        assert_eq!(o.as_slice(), a.as_slice());
        assert_eq!(o.shape(), (3, 4));
    }

    #[test]
    #[should_panic(expected = "output shape")]
    fn shape_mismatch_panics() {
        let a = t(2, 2);
        let mut o = Tensor::zeros(2, 3);
        a.add_into(&a.clone(), &mut o);
    }
}
