//! Blocked general matrix multiply with optional transposes.
//!
//! This GEMM is the single compute kernel behind every SDNet forward and
//! backward pass, so it gets the classic HPC treatment: an `ikj` loop order
//! over a packed row-major layout (unit-stride inner loop the compiler can
//! vectorize), cache blocking, and rayon parallelism over row bands of the
//! output for large problems.
//!
//! Transposed operands are handled by packing the transposed matrix once
//! (O(n²)) rather than striding through it in the O(n³) inner loop.

use crate::Tensor;
use rayon::prelude::*;

/// Whether an operand participates as itself or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Use the matrix as stored.
    Normal,
    /// Use the transpose of the stored matrix.
    Transposed,
}

/// Problem size (in multiply-adds) above which rayon row-parallelism kicks in.
const PAR_THRESHOLD: usize = 1 << 18;

/// Cache block size along the `k` dimension.
const KC: usize = 256;

/// `C = op_a(A) · op_b(B)`.
///
/// Shapes: with `op_a(A)` being `m×k` and `op_b(B)` being `k×n`, the result
/// is `m×n`. Panics on inner-dimension mismatch.
pub fn gemm(a: &Tensor, la: Layout, b: &Tensor, lb: Layout) -> Tensor {
    let (m, k1) = effective_shape(a, la);
    let (k2, n) = effective_shape(b, lb);
    assert_eq!(
        k1, k2,
        "gemm: inner dimension mismatch ({m}x{k1} · {k2}x{n}) with layouts {la:?}/{lb:?}"
    );
    let mut out = Tensor::zeros(m, n);
    gemm_into(a, la, b, lb, &mut out);
    out
}

/// `C += op_a(A) · op_b(B)` accumulated into an existing output tensor.
pub fn gemm_into(a: &Tensor, la: Layout, b: &Tensor, lb: Layout, out: &mut Tensor) {
    let (m, k1) = effective_shape(a, la);
    let (k2, n) = effective_shape(b, lb);
    assert_eq!(k1, k2, "gemm_into: inner dimension mismatch");
    assert_eq!(out.shape(), (m, n), "gemm_into: output shape mismatch");
    let k = k1;

    // Pack transposed operands once so the kernel always sees row-major
    // `m×k` and `k×n` buffers with unit-stride inner loops.
    let a_packed;
    let a_buf: &[f64] = match la {
        Layout::Normal => a.as_slice(),
        Layout::Transposed => {
            a_packed = a.transpose();
            a_packed.as_slice()
        }
    };
    let b_packed;
    let b_buf: &[f64] = match lb {
        Layout::Normal => b.as_slice(),
        Layout::Transposed => {
            b_packed = b.transpose();
            b_packed.as_slice()
        }
    };

    let work = m * n * k;
    let out_buf = out.as_mut_slice();
    if work >= PAR_THRESHOLD && m > 1 {
        out_buf
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| kernel_row(i, row, a_buf, b_buf, k, n));
    } else {
        for (i, row) in out_buf.chunks_mut(n).enumerate() {
            kernel_row(i, row, a_buf, b_buf, k, n);
        }
    }
}

/// Accumulate one output row: `row += A[i, :] · B`.
#[inline]
fn kernel_row(i: usize, row: &mut [f64], a: &[f64], b: &[f64], k: usize, n: usize) {
    let a_row = &a[i * k..(i + 1) * k];
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        for p in p0..p1 {
            let aval = a_row[p];
            if aval == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (r, &bv) in row.iter_mut().zip(b_row) {
                *r += aval * bv;
            }
        }
    }
}

#[inline]
fn effective_shape(t: &Tensor, l: Layout) -> (usize, usize) {
    match l {
        Layout::Normal => t.shape(),
        Layout::Transposed => (t.cols(), t.rows()),
    }
}

impl Tensor {
    /// `self · other` (no transposes). See [`gemm`] for the general form.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        gemm(self, Layout::Normal, other, Layout::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        Tensor::from_fn(m, n, |i, j| (0..k).map(|p| a.get(i, p) * b.get(p, j)).sum())
    }

    fn random(rng: &mut impl Rng, r: usize, c: usize) -> Tensor {
        Tensor::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = random(&mut rng, 6, 6);
        assert!(a.matmul(&Tensor::eye(6)).allclose(&a, 1e-12));
        assert!(Tensor::eye(6).matmul(&a).allclose(&a, 1e-12));
    }

    #[test]
    fn matches_naive_on_odd_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 33, 7)] {
            let a = random(&mut rng, m, k);
            let b = random(&mut rng, k, n);
            assert!(
                a.matmul(&b).allclose(&naive(&a, &b), 1e-10),
                "shape {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn transposed_layouts_agree_with_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = random(&mut rng, 7, 4);
        let b = random(&mut rng, 7, 5);
        // aᵀ·b
        let tn = gemm(&a, Layout::Transposed, &b, Layout::Normal);
        assert!(tn.allclose(&a.transpose().matmul(&b), 1e-12));
        // a·bᵀ with compatible shapes
        let c = random(&mut rng, 4, 9);
        let d = random(&mut rng, 5, 9);
        let nt = gemm(&c, Layout::Normal, &d, Layout::Transposed);
        assert!(nt.allclose(&c.matmul(&d.transpose()), 1e-12));
        // aᵀ·bᵀ
        let e = random(&mut rng, 4, 7);
        let f = random(&mut rng, 9, 4);
        let tt = gemm(&e, Layout::Transposed, &f, Layout::Transposed);
        assert!(tt.allclose(&e.transpose().matmul(&f.transpose()), 1e-12));
    }

    #[test]
    fn gemm_into_accumulates() {
        let a = Tensor::eye(3);
        let b = Tensor::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let mut c = Tensor::ones(3, 3);
        gemm_into(&a, Layout::Normal, &b, Layout::Normal, &mut c);
        assert!(c.allclose(&b.add_scalar(1.0), 1e-12));
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Large enough to cross PAR_THRESHOLD.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = random(&mut rng, 128, 64);
        let b = random(&mut rng, 64, 96);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-9));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let _ = Tensor::zeros(2, 3).matmul(&Tensor::zeros(4, 2));
    }

    #[test]
    fn associativity_with_identity_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = random(&mut rng, 5, 8);
        let b = random(&mut rng, 8, 5);
        let left = a.matmul(&b);
        let right = gemm(&b, Layout::Transposed, &a, Layout::Transposed).transpose();
        // (A·B) == (Bᵀ·Aᵀ)ᵀ
        assert!(left.allclose(&right, 1e-12));
    }
}
