//! The core dense 2-D tensor type.

use std::fmt;

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// `Tensor` is the single value type flowing through the whole Mosaic Flow
/// stack. Row vectors are `1×n`, column vectors `n×1`, scalars `1×1`.
///
/// The representation is a plain `Vec<f64>` plus a shape, so reshapes of a
/// contiguous tensor are free and the data can be handed to the simulated
/// communication layer without copies.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Create a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Create a `1×1` tensor holding a single scalar.
    pub fn scalar(value: f64) -> Self {
        Self {
            data: vec![value],
            rows: 1,
            cols: 1,
        }
    }

    /// Identity matrix of size `n×n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Build from an existing buffer. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Build by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// A `1×n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n×1` column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Bytes occupied by the element buffer (used by the autograd memory
    /// meter that reproduces Table 3 of the paper).
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Bytes *reserved* by the backing buffer — what the heap allocator
    /// actually charged for this tensor. For pool-recycled buffers the
    /// capacity is rounded up to a power-of-two size class, so this can
    /// exceed [`Tensor::nbytes`].
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access. Panics out of bounds (debug builds check via slice indexing).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set a single element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The value of a `1×1` tensor. Panics otherwise.
    pub fn item(&self) -> f64 {
        assert_eq!(
            self.numel(),
            1,
            "Tensor::item called on {}x{} tensor",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds for {} rows",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds for {} rows",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c` as a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {} out of bounds for {} cols",
            c,
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Reinterpret as a new shape with the same number of elements. Free for
    /// contiguous row-major data.
    pub fn reshape(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            self.numel(),
            rows * cols,
            "reshape: cannot view {}x{} as {}x{}",
            self.rows,
            self.cols,
            rows,
            cols
        );
        Tensor {
            data: self.data.clone(),
            rows,
            cols,
        }
    }

    /// In-place reshape (metadata only).
    pub fn reshape_in_place(&mut self, rows: usize, cols: usize) {
        assert_eq!(self.numel(), rows * cols, "reshape_in_place: size mismatch");
        self.rows = rows;
        self.cols = cols;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large tensors.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Apply `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Apply `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine two same-shaped tensors elementwise.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` in place (axpy).
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f64) -> Tensor {
        self.map(|x| x * s)
    }

    /// Add `s` to every element.
    pub fn add_scalar(&self, s: f64) -> Tensor {
        self.map(|x| x + s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm_l2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max-absolute-value norm.
    pub fn norm_linf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Dot product, treating both tensors as flat buffers of equal length.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.numel(), other.numel(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Largest absolute elementwise difference between two same-shaped tensors.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Mean absolute elementwise difference (the paper's MAE metric).
    pub fn mean_abs_diff(&self, other: &Tensor) -> f64 {
        self.assert_same_shape(other, "mean_abs_diff");
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.data.len() as f64
    }

    /// True if every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    #[inline]
    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        let max_cols = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_cols) {
                write!(f, "{:10.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(max_cols) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.numel(), 12);
        assert_eq!(t.nbytes(), 96);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(t.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::from_fn(5, 7, |r, c| (r * 7 + c) as f64);
        let tt = t.transpose();
        assert_eq!(tt.shape(), (7, 5));
        assert_eq!(tt.get(3, 2), t.get(2, 3));
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0; 4]);
        assert_eq!(a.sub(&b).as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(1, 3);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.norm_linf(), 4.0);
        assert!((t.norm_l2() - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mae_and_allclose() {
        let a = Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(1, 4, vec![1.0, 2.5, 3.0, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert!((a.mean_abs_diff(&b) - 0.375).abs() < 1e-15);
        assert!(a.allclose(&b, 1.0));
        assert!(!a.allclose(&b, 0.5));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(2, 6, |r, c| (r * 6 + c) as f64);
        let r = t.reshape(3, 4);
        assert_eq!(r.shape(), (3, 4));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_bad_size() {
        let _ = Tensor::zeros(2, 3).reshape(4, 2);
    }

    #[test]
    fn row_and_col_views() {
        let t = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(t.row(1), &[2.0, 3.0]);
        assert_eq!(t.col(1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "item")]
    fn item_rejects_non_scalar() {
        let _ = Tensor::zeros(2, 1).item();
    }
}
