#![warn(missing_docs)]

//! Dense row-major `f64` tensors for the Mosaic Flow stack.
//!
//! This crate is the numerical substrate shared by the autodiff engine
//! (`mf-autodiff`), the finite-difference solvers (`mf-numerics`) and the
//! neural-network layers (`mf-nn`). It deliberately implements only what
//! physics-informed neural PDE solvers need:
//!
//! * a 2-D row-major [`Tensor`] (vectors are `1×n` or `n×1`),
//! * a blocked GEMM with optional transposes and rayon row-parallelism,
//! * the axis/broadcast operations required by the *input-split* layer of
//!   SDNet (grouped row repetition and grouped row summation),
//! * reductions and norms used by losses and convergence tests.
//!
//! All operations validate shapes and panic with a descriptive message on
//! mismatch; shape errors in a PDE solver are programming errors, not
//! recoverable conditions.

mod gemm;
mod inplace;
mod ops;
mod pool;
#[cfg(test)]
mod proptests;
mod tensor;

pub use gemm::{gemm, gemm_into, Layout};
pub use inplace::{fold1d_circular_into, unfold1d_circular_into};
pub use ops::{fold1d_circular, unfold1d_circular};
pub use pool::{BufferPool, PoolStats};
pub use tensor::Tensor;

/// Relative/absolute tolerance comparison for floating-point test code.
///
/// Returns `true` when `|a - b| <= atol + rtol * |b|`.
#[inline]
pub fn close(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    (a - b).abs() <= atol + rtol * b.abs()
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn close_is_tolerant() {
        assert!(close(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
        assert!(!close(1.0, 1.1, 1e-9, 1e-9));
    }
}
