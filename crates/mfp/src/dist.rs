//! Distributed Mosaic Flow predictor — Algorithm 2 of the paper.
//!
//! The global domain is partitioned over a 2-D processor grid (row-scan or
//! Morton rank placement). Each rank owns a half-open block of grid points
//! and the overlapping subdomains whose centers fall inside it. One
//! iteration is: sweep the four local groups with immediate local updates
//! (batched inference), then exchange the owned lattice values in a band
//! of half-a-subdomain width with up to eight neighbors — **once** per
//! iteration (the relaxed synchronization of §4.2). A final dense pass
//! fills the owned atomic subdomains and an allgather assembles the global
//! solution.

use crate::domain::{DomainSpec, Subdomain};
use crate::seq::MaeTarget;
use crate::solver::SubdomainSolver;
use mf_dist::thread_cpu_time;
use mf_dist::{
    CartesianGrid, Cluster, ClusterError, CommError, CommStats, Communicator, Direction, FaultPlan,
    OverlapTracker, PerfModel, RankOrder,
};
use mf_numerics::boundary::apply_boundary;
use mf_observe::{RecKind, StallDetector};
use mf_telemetry::{counter, histogram, span, Buckets};
use mf_tensor::Tensor;
use std::time::Duration;

/// Controls for [`run_distributed`].
#[derive(Clone, Debug)]
pub struct DistMfpConfig {
    /// Maximum Schwarz iterations.
    pub max_iters: usize,
    /// Relative-change threshold (0 disables the check and its allreduce).
    pub tol: f64,
    /// Evaluate the convergence check every this many iterations.
    pub check_every: usize,
    /// Exchange halos every this many iterations (1 = Algorithm 2;
    /// larger values are the communication-avoiding variant discussed in
    /// §5.3 "Open problems").
    pub comm_every: usize,
    /// Rank placement on the processor grid.
    pub order: RankOrder,
    /// Optional reference-based stop (MAE on lattice points).
    pub target: Option<MaeTarget>,
    /// Coarse-grid lattice initialization before iterating (each rank
    /// computes the same cheap coarse solve locally).
    pub coarse_init: bool,
    /// Fault injection for the cluster's links ([`FaultPlan::none`] keeps
    /// the lossless PR-1 semantics).
    pub plan: FaultPlan,
    /// Degraded mode: bound each halo exchange by [`Self::halo_timeout`]
    /// and *reuse the stale halo* from the previous exchange when a
    /// neighbor misses the deadline, instead of blocking the iteration.
    /// The Schwarz fixed point is unchanged — stale interface data only
    /// slows convergence (the same trade as `comm_every > 1`).
    pub degraded_halos: bool,
    /// Per-exchange deadline in degraded mode.
    pub halo_timeout: Duration,
}

impl Default for DistMfpConfig {
    fn default() -> Self {
        Self {
            max_iters: 1000,
            tol: 1e-4,
            check_every: 1,
            comm_every: 1,
            order: RankOrder::RowMajor,
            target: None,
            coarse_init: false,
            plan: FaultPlan::none(),
            degraded_halos: false,
            halo_timeout: Duration::from_millis(50),
        }
    }
}

/// Per-rank measurements of a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Wall-clock seconds in subdomain solves (compute).
    pub compute_seconds: f64,
    /// Wall-clock seconds packing/unpacking halo buffers ("Boundaries IO"
    /// in Fig. 9).
    pub pack_seconds: f64,
    /// Communication counters for the whole run (iteration loop + final
    /// gather).
    pub comm: CommStats,
    /// Communication counters of the iteration loop only (halo exchanges
    /// and convergence allreduces) — the per-iteration cost of §4.3.
    pub halo: CommStats,
    /// Overlapping subdomains owned by this rank.
    pub owned_subdomains: usize,
    /// Halo slots served from stale data because a neighbor missed the
    /// degraded-mode deadline (always 0 outside degraded mode).
    pub stale_halos: usize,
}

/// Result of [`run_distributed`].
#[derive(Clone, Debug)]
pub struct DistMfpResult {
    /// Assembled dense global solution.
    pub grid: Tensor,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether a stop criterion fired.
    pub converged: bool,
    /// Relative lattice change at each performed check.
    pub deltas: Vec<f64>,
    /// `(iteration, lattice MAE)` history when a target was given.
    pub mae_history: Vec<(usize, f64)>,
    /// One report per rank.
    pub reports: Vec<RankReport>,
}

/// Block partition of the global grid over a processor grid.
struct Partition<'a> {
    domain: &'a DomainSpec,
    grid: CartesianGrid,
}

type Region = (std::ops::Range<usize>, std::ops::Range<usize>);

/// Watch-mode side channel: gather every rank's per-atomic-subdomain
/// residual (mean |u − prev| over the window) and render the lattice
/// heatmap report on rank 0. Only called when watch mode is enabled, so
/// its allgather never runs under the pinned-message-count fixtures.
#[allow(clippy::too_many_arguments)]
fn watch_residual_report(
    comm: &mut Communicator,
    domain: &DomainSpec,
    owned: &Region,
    u: &Tensor,
    prev: &Tensor,
    deltas: &[f64],
    iteration: usize,
    stalled: bool,
    stale_in_window: u64,
) {
    // Encode owned atoms as (lattice index, residual) pairs: the gather
    // is ragged, each rank contributes only what it owns.
    let mut local = Vec::new();
    for (idx, sd) in domain.atomic_subdomains().into_iter().enumerate() {
        if owned.0.contains(&sd.oy) && owned.1.contains(&sd.ox) {
            let a = domain.read_window_field(u, sd);
            let b = domain.read_window_field(prev, sd);
            let n = a.numel().max(1) as f64;
            let resid = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
                / n;
            local.push(idx as f64);
            local.push(resid);
        }
    }
    let gathered = comm.allgather(&local);
    if comm.rank() == 0 {
        let mut grid = vec![0.0; domain.sx * domain.sy];
        for pair in gathered.iter().flat_map(|v| v.chunks_exact(2)) {
            grid[pair[0] as usize] = pair[1];
        }
        eprint!(
            "{}",
            mf_observe::mfp_watch_report(
                iteration,
                deltas,
                &grid,
                domain.sy,
                domain.sx,
                stalled,
                stale_in_window,
            )
        );
        // Live throughput from the published time-series ring: every rank
        // publishes its `dist.iterations` windows after each MFP iteration,
        // so the merged ring shows cluster-wide iteration rate.
        if let Some(s) = mf_telemetry::published_series("dist.iterations") {
            eprint!(
                "{}",
                mf_observe::series_rate_line(
                    "dist.iterations",
                    s.rate_per_sec(10),
                    &s.recent_counts(30)
                )
            );
        }
    }
}

impl<'a> Partition<'a> {
    fn new(domain: &'a DomainSpec, ranks: usize, order: RankOrder) -> Self {
        Self {
            domain,
            grid: CartesianGrid::square_for(ranks, order),
        }
    }

    /// Owned grid points of a rank: half-open `(rows, cols)`.
    ///
    /// Atomic subdomains are split near-evenly over the processor grid
    /// (boundaries at `⌊c·s/p⌋` subdomains, i.e. always on atom edges, so
    /// atoms never straddle ranks). When there are fewer atom rows or
    /// columns than processor rows or columns, the surplus ranks simply
    /// own an empty region — they exchange zero-length halos and
    /// contribute nothing to the gather. Edge ranks absorb the final
    /// global row/column.
    fn owned(&self, rank: usize) -> Region {
        let (prow, pcol) = self.grid.coords_of(rank);
        let step = self.domain.sub.m - 1;
        let (px, py) = (self.grid.px(), self.grid.py());
        let c0 = pcol * self.domain.sx / px * step;
        let c1 = if pcol + 1 == px {
            self.domain.nx()
        } else {
            (pcol + 1) * self.domain.sx / px * step
        };
        let r0 = prow * self.domain.sy / py * step;
        let r1 = if prow + 1 == py {
            self.domain.ny()
        } else {
            (prow + 1) * self.domain.sy / py * step
        };
        (r0..r1, c0..c1)
    }

    /// The band of `rank`'s owned points adjacent to its border in
    /// direction `dir`, of half-subdomain width — the halo data its
    /// neighbor in that direction needs. Clamped to the owned region, so
    /// narrow or empty blocks produce correspondingly narrow (or empty)
    /// bands; sender and receiver both evaluate this for the *owning*
    /// rank, so the two sides always agree on the size.
    fn band(&self, rank: usize, dir: Direction) -> Region {
        let s = self.domain.shift();
        let (rows, cols) = self.owned(rank);
        let rows = match dir.offset().0 {
            1 => rows.end.saturating_sub(s).max(rows.start)..rows.end,
            -1 => rows.start..(rows.start + s).min(rows.end),
            _ => rows,
        };
        let cols = match dir.offset().1 {
            1 => cols.end.saturating_sub(s).max(cols.start)..cols.end,
            -1 => cols.start..(cols.start + s).min(cols.end),
            _ => cols,
        };
        (rows, cols)
    }

    /// Lattice values of a region, row-major.
    fn pack(&self, grid: &Tensor, region: &Region) -> Vec<f64> {
        let mut out = Vec::new();
        for j in region.0.clone() {
            for i in region.1.clone() {
                if self.domain.on_lattice(j, i) {
                    out.push(grid.get(j, i));
                }
            }
        }
        out
    }

    /// Inverse of [`Partition::pack`].
    fn unpack(&self, grid: &mut Tensor, region: &Region, data: &[f64]) {
        let mut k = 0;
        for j in region.0.clone() {
            for i in region.1.clone() {
                if self.domain.on_lattice(j, i) {
                    grid.set(j, i, data[k]);
                    k += 1;
                }
            }
        }
        assert_eq!(k, data.len(), "halo unpack: size mismatch");
    }

    /// All grid values of a region, row-major (final gather).
    fn pack_dense(&self, grid: &Tensor, region: &Region) -> Vec<f64> {
        let mut out = Vec::with_capacity(region.0.len() * region.1.len());
        for j in region.0.clone() {
            for i in region.1.clone() {
                out.push(grid.get(j, i));
            }
        }
        out
    }

    fn unpack_dense(&self, grid: &mut Tensor, region: &Region, data: &[f64]) {
        let mut k = 0;
        for j in region.0.clone() {
            for i in region.1.clone() {
                grid.set(j, i, data[k]);
                k += 1;
            }
        }
    }

    /// Sum of squared lattice values over the owned region.
    fn owned_lattice_sumsq(&self, grid: &Tensor, region: &Region) -> f64 {
        let mut acc = 0.0;
        for j in region.0.clone() {
            for i in region.1.clone() {
                if self.domain.on_lattice(j, i) {
                    let v = grid.get(j, i);
                    acc += v * v;
                }
            }
        }
        acc
    }

    fn owned_lattice_diff_sumsq(&self, a: &Tensor, b: &Tensor, region: &Region) -> f64 {
        let mut acc = 0.0;
        for j in region.0.clone() {
            for i in region.1.clone() {
                if self.domain.on_lattice(j, i) {
                    let d = a.get(j, i) - b.get(j, i);
                    acc += d * d;
                }
            }
        }
        acc
    }

    fn owned_lattice_absdiff_count(&self, a: &Tensor, b: &Tensor, region: &Region) -> (f64, usize) {
        let mut acc = 0.0;
        let mut n = 0;
        for j in region.0.clone() {
            for i in region.1.clone() {
                if self.domain.on_lattice(j, i) {
                    acc += (a.get(j, i) - b.get(j, i)).abs();
                    n += 1;
                }
            }
        }
        (acc, n)
    }
}

/// Run the distributed MF predictor on `ranks` simulated devices.
///
/// `bc` is the global boundary walk. The solver is shared by all ranks
/// (read-only), mirroring each GPU holding a replica of the pre-trained
/// SDNet.
pub fn run_distributed<S: SubdomainSolver>(
    solver: &S,
    domain: &DomainSpec,
    bc: &Tensor,
    ranks: usize,
    cfg: &DistMfpConfig,
) -> DistMfpResult {
    run_distributed_shifted(solver, domain, bc, 0.0, None, ranks, cfg)
}

/// [`run_distributed`] that surfaces rank failures (panics, injected
/// crashes) as a typed [`ClusterError`] instead of panicking.
pub fn try_run_distributed<S: SubdomainSolver>(
    solver: &S,
    domain: &DomainSpec,
    bc: &Tensor,
    ranks: usize,
    cfg: &DistMfpConfig,
) -> Result<DistMfpResult, ClusterError> {
    try_run_distributed_shifted(solver, domain, bc, 0.0, None, ranks, cfg)
}

/// [`run_distributed`] for the shifted operator `σu − Δu = f` (forcing on
/// the full global grid) — the distributed form of the time-dependent
/// extension. Every rank reads the shared forcing field; only the
/// lattice values are communicated, exactly as in the Laplace case.
pub fn run_distributed_shifted<S: SubdomainSolver>(
    solver: &S,
    domain: &DomainSpec,
    bc: &Tensor,
    sigma: f64,
    forcing: Option<&Tensor>,
    ranks: usize,
    cfg: &DistMfpConfig,
) -> DistMfpResult {
    try_run_distributed_shifted(solver, domain, bc, sigma, forcing, ranks, cfg)
        .unwrap_or_else(|e| panic!("cluster failed: {e}"))
}

/// [`run_distributed_shifted`] with typed failure reporting.
#[allow(clippy::too_many_arguments)]
pub fn try_run_distributed_shifted<S: SubdomainSolver>(
    solver: &S,
    domain: &DomainSpec,
    bc: &Tensor,
    sigma: f64,
    forcing: Option<&Tensor>,
    ranks: usize,
    cfg: &DistMfpConfig,
) -> Result<DistMfpResult, ClusterError> {
    if let Some(f) = forcing {
        assert_eq!(
            f.shape(),
            (domain.ny(), domain.nx()),
            "run_distributed_shifted: forcing shape mismatch"
        );
    }
    assert_eq!(
        solver.spec(),
        domain.sub,
        "run_distributed: solver and domain geometry differ"
    );
    assert_eq!(
        bc.numel(),
        domain.boundary_len(),
        "run_distributed: bad boundary length"
    );
    let part = Partition::new(domain, ranks, cfg.order);
    let part = &part;

    let cross = domain.center_cross_offsets();
    let cross_pts = domain.offsets_to_points(&cross);
    let interior = domain.interior_offsets();
    let interior_pts = domain.offsets_to_points(&interior);
    let s = domain.shift();

    let per_rank = Cluster::try_run(ranks, cfg.plan.clone(), |comm| {
        let rank = comm.rank();
        // Align per-rank clocks before iterating so the merged trace rows
        // share a time base (barrier-only: no link messages, so the
        // fault RNG streams and pinned message counts are untouched).
        comm.align_clocks();
        let owned = part.owned(rank);
        let neighbors = part.grid.neighbors(rank);
        let stale_counter = counter("mfp.stale_halos");
        let mut stale_halos = 0usize;

        // Local copy of the global grid; only owned ∪ halo is maintained.
        let mut u = Tensor::zeros(domain.ny(), domain.nx());
        apply_boundary(&mut u, bc);
        if cfg.coarse_init {
            domain.coarse_initialize(&mut u);
        }

        // Owned overlapping subdomains, split into the four sweep groups.
        let mut groups: [Vec<Subdomain>; 4] = Default::default();
        for sd in domain.subdomains() {
            let (ccol, crow) = (sd.ox + s, sd.oy + s);
            if owned.0.contains(&crow) && owned.1.contains(&ccol) {
                groups[domain.group_of(sd)].push(sd);
            }
        }
        let owned_subdomains: usize = groups.iter().map(|g| g.len()).sum();

        let mut compute_seconds = 0.0;
        let mut pack_seconds = 0.0;
        let mut deltas = Vec::new();
        let mut mae_history = Vec::new();
        let mut converged = false;
        let mut iterations = 0;

        let h_residual = histogram("mfp.residual", Buckets::exponential(1e-9, 10.0, 12));
        let h_halo = histogram("mfp.halo_bytes", Buckets::bytes());

        // Convergence watchdog: trips after 5 residual checks without a
        // ≥ 1% improvement; in degraded mode the stale-halo delta over
        // the same window attributes the stall to a late neighbor.
        let mut stall = StallDetector::new(5);
        let stalls_counter = counter("mfp.stalls");
        let stall_stale_counter = counter("mfp.stall_stale_halos");
        let mut stale_at_window = 0usize;

        // Comm/compute overlap accounting (§4.3): measured busy/wait
        // intervals folded through the alpha-beta model into the
        // dist.overlap_ratio / dist.comm_wait_us / dist.compute_us
        // metrics, once per iteration. Reads counters only — never sends.
        let mut overlap = OverlapTracker::new(PerfModel::a30_cluster(), comm);
        let mut busy_mark = 0.0;

        for it in 0..cfg.max_iters {
            mf_observe::set_step_context(0, it as u64);
            span!(
                "mfp.iteration",
                it = it as f64,
                owned = owned_subdomains as f64
            );
            mf_observe::record(
                RecKind::Iteration,
                "mfp.iteration",
                owned_subdomains as u64,
                deltas.last().copied().unwrap_or(f64::NAN),
            );
            let prev = u.clone();

            // Local sweeps with immediate updates (within-rank semantics
            // of the baseline are preserved).
            let t0 = thread_cpu_time();
            {
                mf_profile::zone!("sweep");
                for group in &groups {
                    if group.is_empty() {
                        continue;
                    }
                    let boundaries = Tensor::vstack(
                        &group
                            .iter()
                            .map(|&sd| domain.read_window_boundary(&u, sd))
                            .collect::<Vec<_>>(),
                    );
                    let fw = forcing.map(|f| {
                        Tensor::vstack(
                            &group
                                .iter()
                                .map(|&sd| domain.read_window_field(f, sd))
                                .collect::<Vec<_>>(),
                        )
                    });
                    let preds =
                        solver.solve_batch_shifted(sigma, &boundaries, fw.as_ref(), &cross_pts);
                    let q = cross.len();
                    for (bi, &sd) in group.iter().enumerate() {
                        for (k, &(j, i)) in cross.iter().enumerate() {
                            u.set(sd.oy + j, sd.ox + i, preds.get(bi * q + k, 0));
                        }
                    }
                }
            }
            compute_seconds += thread_cpu_time() - t0;
            iterations = it + 1;

            // Relaxed synchronization: one halo exchange per iteration
            // (or every `comm_every` iterations).
            if iterations % cfg.comm_every == 0 {
                let t1 = thread_cpu_time();
                let outgoing: Vec<(usize, Vec<f64>)> = {
                    mf_profile::zone!("halo_pack");
                    neighbors
                        .iter()
                        .map(|&(dir, nbr)| (nbr, part.pack(&u, &part.band(rank, dir))))
                        .collect()
                };
                pack_seconds += thread_cpu_time() - t1;
                h_halo.record(outgoing.iter().map(|(_, p)| p.len() * 8).sum::<usize>() as f64);
                if cfg.degraded_halos {
                    // Deadline-bounded exchange: a slot whose neighbor
                    // missed the deadline keeps its previous (stale)
                    // values — the iteration proceeds instead of
                    // blocking. The per-iteration tag keeps late round-N
                    // data out of round N+1.
                    let incoming = comm.exchange_deadline(&outgoing, it as u64, cfg.halo_timeout);
                    let t2 = thread_cpu_time();
                    for ((dir, nbr), (peer, result)) in neighbors.iter().zip(incoming) {
                        debug_assert_eq!(*nbr, peer);
                        match result {
                            Ok(data) => {
                                let region = part.band(*nbr, dir.opposite());
                                part.unpack(&mut u, &region, &data);
                            }
                            Err(CommError::Timeout { .. }) => {
                                stale_halos += 1;
                                stale_counter.incr();
                            }
                            Err(e @ CommError::RankFailed { .. }) => {
                                panic!("halo exchange: {e}");
                            }
                        }
                    }
                    pack_seconds += thread_cpu_time() - t2;
                } else {
                    let incoming = comm.exchange(&outgoing, it as u64);
                    let t2 = thread_cpu_time();
                    for ((dir, nbr), (peer, data)) in neighbors.iter().zip(incoming) {
                        debug_assert_eq!(*nbr, peer);
                        // The neighbor sent its own band facing us.
                        let region = part.band(*nbr, dir.opposite());
                        part.unpack(&mut u, &region, &data);
                    }
                    pack_seconds += thread_cpu_time() - t2;
                }
            }

            // Global convergence check (Algorithm 2, line 5).
            if cfg.tol > 0.0 && iterations % cfg.check_every == 0 {
                let mut nums = [
                    part.owned_lattice_diff_sumsq(&u, &prev, &owned),
                    part.owned_lattice_sumsq(&prev, &owned),
                ];
                comm.allreduce_sum(&mut nums);
                let delta = (nums[0] / nums[1].max(f64::MIN_POSITIVE)).sqrt();
                h_residual.record(delta);
                deltas.push(delta);
                let stalled = stall.observe(delta);
                if stalled {
                    stalls_counter.incr();
                    let stale_in_window = (stale_halos - stale_at_window) as u64;
                    stall_stale_counter.add(stale_in_window);
                    mf_observe::record(RecKind::Health, "mfp.stall", stale_in_window, delta);
                }
                if mf_observe::watch_enabled() {
                    // Watch is opt-in, so the extra allgather never runs
                    // under the pinned-message-count regression fixtures.
                    let stale_in_window = (stale_halos - stale_at_window) as u64;
                    watch_residual_report(
                        comm,
                        domain,
                        &owned,
                        &u,
                        &prev,
                        &deltas,
                        iterations,
                        stalled,
                        stale_in_window,
                    );
                }
                if stalled {
                    stale_at_window = stale_halos;
                }
                if delta < cfg.tol {
                    converged = true;
                    break;
                }
            }
            if let Some(t) = &cfg.target {
                if iterations % t.every == 0 {
                    let (local_abs, local_n) =
                        part.owned_lattice_absdiff_count(&u, &t.reference, &owned);
                    let mut buf = [local_abs, local_n as f64];
                    comm.allreduce_sum(&mut buf);
                    let mae = buf[0] / buf[1].max(1.0);
                    mae_history.push((iterations, mae));
                    if mae <= t.mae {
                        converged = true;
                        break;
                    }
                }
            }

            // Close this iteration's busy/wait interval and make the
            // rank's metrics visible to live scrapes.
            let busy = compute_seconds + pack_seconds;
            overlap.observe_iteration(comm, busy - busy_mark);
            busy_mark = busy;
            mf_telemetry::publish_thread();
        }

        // A convergence break skips the in-loop accounting; flush the
        // final iteration's interval so its comm wait is not dropped.
        let busy = compute_seconds + pack_seconds;
        if busy > busy_mark {
            overlap.observe_iteration(comm, busy - busy_mark);
            mf_telemetry::publish_thread();
        }

        let halo_stats = comm.stats();

        // Final phase: dense prediction of owned atomic subdomains.
        let t0 = thread_cpu_time();
        let atoms: Vec<Subdomain> = domain
            .atomic_subdomains()
            .into_iter()
            .filter(|sd| {
                // An atomic subdomain belongs to the rank owning its
                // lower-left corner (blocks align with rank boundaries).
                owned.0.contains(&sd.oy) && owned.1.contains(&sd.ox)
            })
            .collect();
        if !atoms.is_empty() {
            let boundaries = Tensor::vstack(
                &atoms
                    .iter()
                    .map(|&sd| domain.read_window_boundary(&u, sd))
                    .collect::<Vec<_>>(),
            );
            let fw = forcing.map(|f| {
                Tensor::vstack(
                    &atoms
                        .iter()
                        .map(|&sd| domain.read_window_field(f, sd))
                        .collect::<Vec<_>>(),
                )
            });
            let preds = solver.solve_batch_shifted(sigma, &boundaries, fw.as_ref(), &interior_pts);
            let q = interior.len();
            for (bi, &sd) in atoms.iter().enumerate() {
                for (k, &(j, i)) in interior.iter().enumerate() {
                    u.set(sd.oy + j, sd.ox + i, preds.get(bi * q + k, 0));
                }
            }
        }
        compute_seconds += thread_cpu_time() - t0;

        // Allgather the owned dense blocks and assemble the global grid.
        let t1 = thread_cpu_time();
        let local = part.pack_dense(&u, &owned);
        pack_seconds += thread_cpu_time() - t1;
        let gathered = comm.allgather(&local);
        let t2 = thread_cpu_time();
        let mut global = Tensor::zeros(domain.ny(), domain.nx());
        apply_boundary(&mut global, bc);
        for (r, data) in gathered.iter().enumerate() {
            let region = part.owned(r);
            part.unpack_dense(&mut global, &region, data);
        }
        pack_seconds += thread_cpu_time() - t2;

        let report = RankReport {
            rank,
            compute_seconds,
            pack_seconds,
            comm: comm.stats(),
            halo: halo_stats,
            owned_subdomains,
            stale_halos,
        };
        if mf_telemetry::metrics_report_enabled() {
            mf_dist::print_merged_report(comm);
        }
        (global, iterations, converged, deltas, mae_history, report)
    })?;

    let reports: Vec<RankReport> = per_rank.iter().map(|r| r.5).collect();
    let (grid, iterations, converged, deltas, mae_history, _) =
        per_rank.into_iter().next().unwrap();
    Ok(DistMfpResult {
        grid,
        iterations,
        converged,
        deltas,
        mae_history,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{Mfp, MfpConfig};
    use crate::solver::OracleSolver;
    use mf_data::SubdomainSpec;
    use mf_numerics::boundary::boundary_coords;

    fn spec() -> SubdomainSpec {
        SubdomainSpec { m: 9, spatial: 0.5 }
    }

    fn harmonic_bc(d: &DomainSpec) -> Tensor {
        let h = d.h();
        let f = |x: f64, y: f64| x * x - y * y + 0.5 * x;
        let coords = boundary_coords(d.ny(), d.nx());
        Tensor::from_vec(
            1,
            coords.len(),
            coords
                .iter()
                .map(|&(j, i)| f(i as f64 * h, j as f64 * h))
                .collect(),
        )
    }

    #[test]
    fn one_rank_matches_sequential_mfp() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let seq = Mfp::new(&oracle, d).run(
            &bc,
            &MfpConfig {
                max_iters: 20,
                tol: 0.0,
                batched: true,
                target: None,
                coarse_init: false,
            },
        );
        let dist = run_distributed(
            &oracle,
            &d,
            &bc,
            1,
            &DistMfpConfig {
                max_iters: 20,
                tol: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(dist.iterations, 20);
        assert!(
            dist.grid.max_abs_diff(&seq.grid) < 1e-12,
            "P=1 distributed deviates from sequential: {}",
            dist.grid.max_abs_diff(&seq.grid)
        );
    }

    #[test]
    fn compiled_plan_solver_matches_graph_solver_across_ranks() {
        // The distributed MFP must be oblivious to which SDNet execution
        // path backs the subdomain solver: the compiled-plan and graph
        // paths produce bitwise-identical lattices on every rank count.
        use rand::SeedableRng;
        let d = DomainSpec::new(spec(), 2, 2);
        let mut cfg = mf_nn::SdNetConfig::small(spec().boundary_len());
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![10, 10];
        cfg.coord_fourier = 2;
        let net = mf_nn::SdNet::new(cfg, &mut rand_chacha::ChaCha8Rng::seed_from_u64(7));
        let plan = crate::PlanSolver::new(net.clone(), spec());
        let graph = crate::NeuralSolver::new(net, spec());
        let bc = harmonic_bc(&d);
        let cfg = DistMfpConfig {
            max_iters: 3,
            tol: 0.0,
            ..Default::default()
        };
        for ranks in [1, 4] {
            let a = run_distributed(&plan, &d, &bc, ranks, &cfg);
            let e = run_distributed(&graph, &d, &bc, ranks, &cfg);
            assert_eq!(a.grid.shape(), e.grid.shape());
            for (x, y) in e.grid.as_slice().iter().zip(a.grid.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "P={ranks}");
            }
        }
        assert!(plan.cache_hits() > 0);
    }

    #[test]
    fn four_ranks_converge_to_the_sequential_solution() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let seq = Mfp::new(&oracle, d).run(
            &bc,
            &MfpConfig {
                max_iters: 400,
                tol: 1e-9,
                batched: true,
                target: None,
                coarse_init: false,
            },
        );
        assert!(seq.converged);
        let dist = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 400,
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(dist.converged, "distributed run did not converge");
        let diff = dist.grid.mean_abs_diff(&seq.grid);
        assert!(diff < 1e-5, "distributed vs sequential MAE {diff}");
    }

    #[test]
    fn relaxation_costs_iterations_but_not_correctness() {
        // More ranks ⇒ staler interfaces ⇒ same or more iterations to the
        // same tolerance (Table 4's trend), with the same fixed point.
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let run = |p: usize| {
            run_distributed(
                &oracle,
                &d,
                &bc,
                p,
                &DistMfpConfig {
                    max_iters: 500,
                    tol: 1e-8,
                    ..Default::default()
                },
            )
        };
        let r1 = run(1);
        let r4 = run(4);
        assert!(r1.converged && r4.converged);
        assert!(
            r4.iterations >= r1.iterations,
            "P=4 ({}) should need at least as many iterations as P=1 ({})",
            r4.iterations,
            r1.iterations
        );
        assert!(r1.grid.mean_abs_diff(&r4.grid) < 1e-5);
    }

    #[test]
    fn communication_avoiding_variant_still_converges() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let every1 = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 600,
                tol: 1e-8,
                comm_every: 1,
                ..Default::default()
            },
        );
        let every4 = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 600,
                tol: 1e-8,
                comm_every: 4,
                ..Default::default()
            },
        );
        assert!(every1.converged && every4.converged);
        // Same solution; fewer halo messages, possibly more iterations.
        assert!(every1.grid.mean_abs_diff(&every4.grid) < 1e-4);
        let bytes = |r: &DistMfpResult| {
            r.reports
                .iter()
                .map(|rep| rep.comm.bytes_sent)
                .sum::<usize>()
        };
        // Halo payloads dominate byte volume; skipping 3 of 4 exchanges
        // must cut it even if convergence takes more iterations.
        assert!(
            bytes(&every4) < bytes(&every1),
            "comm-avoiding variant did not reduce byte volume: {} vs {}",
            bytes(&every4),
            bytes(&every1)
        );
    }

    #[test]
    fn morton_and_row_major_orders_agree() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let a = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 300,
                tol: 1e-8,
                order: RankOrder::RowMajor,
                ..Default::default()
            },
        );
        let b = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 300,
                tol: 1e-8,
                order: RankOrder::Morton,
                ..Default::default()
            },
        );
        assert!(a.converged && b.converged);
        assert!(a.grid.mean_abs_diff(&b.grid) < 1e-6);
    }

    #[test]
    fn distributed_shifted_matches_sequential_shifted() {
        // The heat-step operator, distributed over 4 ranks, must agree
        // with the sequential shifted MFP.
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let sigma = 60.0;
        let forcing = Tensor::from_fn(d.ny(), d.nx(), |j, i| {
            ((j as f64) * 0.3).sin() * ((i as f64) * 0.2).cos()
        });
        let bc = Tensor::zeros(1, d.boundary_len());
        let seq = Mfp::new(&oracle, d).run_shifted(
            &bc,
            sigma,
            Some(&forcing),
            &MfpConfig {
                max_iters: 300,
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(seq.converged);
        let dist = crate::dist::run_distributed_shifted(
            &oracle,
            &d,
            &bc,
            sigma,
            Some(&forcing),
            4,
            &DistMfpConfig {
                max_iters: 300,
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(dist.converged);
        let mae = dist.grid.mean_abs_diff(&seq.grid);
        assert!(mae < 1e-6, "distributed vs sequential shifted MAE {mae}");
    }

    #[test]
    fn domain_smaller_than_processor_grid_still_works() {
        // 2x1 atoms over a 2x2 processor grid: one processor row owns an
        // empty region and exchanges zero-length halos.
        let d = DomainSpec::new(spec(), 2, 1);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let seq = Mfp::new(&oracle, d).run(
            &bc,
            &MfpConfig {
                max_iters: 400,
                tol: 1e-9,
                batched: true,
                target: None,
                coarse_init: false,
            },
        );
        assert!(seq.converged);
        let dist = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 400,
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(dist.converged, "2x1 over 4 ranks did not converge");
        let diff = dist.grid.mean_abs_diff(&seq.grid);
        assert!(diff < 1e-5, "distributed vs sequential MAE {diff}");
        let total: usize = dist.reports.iter().map(|r| r.owned_subdomains).sum();
        assert_eq!(total, d.subdomains().len());
    }

    #[test]
    fn uneven_atom_split_converges() {
        // 3x3 atoms over a 2x2 processor grid: near-even 1/2 splits.
        let d = DomainSpec::new(spec(), 3, 3);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let seq = Mfp::new(&oracle, d).run(
            &bc,
            &MfpConfig {
                max_iters: 600,
                tol: 1e-8,
                batched: true,
                target: None,
                coarse_init: false,
            },
        );
        assert!(seq.converged);
        let dist = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 600,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(dist.converged, "3x3 over 4 ranks did not converge");
        let diff = dist.grid.mean_abs_diff(&seq.grid);
        assert!(diff < 1e-5, "distributed vs sequential MAE {diff}");
        let total: usize = dist.reports.iter().map(|r| r.owned_subdomains).sum();
        assert_eq!(total, d.subdomains().len());
    }

    #[test]
    fn dropped_halos_recover_to_the_fault_free_result() {
        // 10% drop with bounded retries: retransmission delivers the
        // identical payloads, so the run matches the fault-free residual
        // trajectory bitwise (well inside the 1e-6 acceptance bound).
        use mf_dist::RetryPolicy;
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let base = DistMfpConfig {
            max_iters: 60,
            tol: 1e-8,
            ..Default::default()
        };
        let clean = run_distributed(&oracle, &d, &bc, 4, &base);
        let faulty_cfg = DistMfpConfig {
            plan: FaultPlan {
                retry: RetryPolicy {
                    timeout: Duration::from_millis(20),
                    max_retries: 100,
                },
                ..FaultPlan::lossy(9, 0.10)
            },
            ..base
        };
        let faulty = try_run_distributed(&oracle, &d, &bc, 4, &faulty_cfg).unwrap();
        assert_eq!(clean.iterations, faulty.iterations);
        assert_eq!(clean.deltas, faulty.deltas, "residual trajectories differ");
        assert!(clean.grid.max_abs_diff(&faulty.grid) < 1e-6);
    }

    #[test]
    fn degraded_mode_reuses_stale_halos_and_still_converges() {
        // Sender-side delays larger than the halo deadline force timeouts;
        // degraded mode substitutes the stale halo and keeps iterating.
        // Stale interfaces only slow Schwarz convergence (same fixed
        // point), so the solution still lands on the sequential one.
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let clean = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 500,
                tol: 1e-8,
                ..Default::default()
            },
        );
        let degraded_cfg = DistMfpConfig {
            max_iters: 500,
            tol: 1e-8,
            plan: FaultPlan {
                seed: 3,
                delay_rate: 0.4,
                delay_max_us: 30_000,
                ..FaultPlan::none()
            },
            degraded_halos: true,
            halo_timeout: Duration::from_millis(8),
            ..Default::default()
        };
        let degraded = try_run_distributed(&oracle, &d, &bc, 4, &degraded_cfg).unwrap();
        assert!(degraded.converged, "degraded run did not converge");
        let stale: usize = degraded.reports.iter().map(|r| r.stale_halos).sum();
        assert!(stale > 0, "delays never exceeded the halo deadline");
        assert!(
            clean.grid.mean_abs_diff(&degraded.grid) < 1e-5,
            "degraded solution diverged: {}",
            clean.grid.mean_abs_diff(&degraded.grid)
        );
    }

    #[test]
    fn injected_crash_in_mfp_names_the_rank() {
        use mf_dist::CrashAt;
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let bc = harmonic_bc(&d);
        let cfg = DistMfpConfig {
            max_iters: 50,
            tol: 1e-8,
            plan: FaultPlan {
                crash: Some(CrashAt {
                    rank: 3,
                    after_sends: 10,
                }),
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let err = try_run_distributed(&oracle, &d, &bc, 4, &cfg).unwrap_err();
        assert_eq!(err.origin(), 3, "{err}");
    }

    #[test]
    fn reports_account_for_every_subdomain() {
        let d = DomainSpec::new(spec(), 4, 2);
        let oracle = OracleSolver::new(spec(), 1e-9);
        let bc = harmonic_bc(&d);
        let r = run_distributed(
            &oracle,
            &d,
            &bc,
            4,
            &DistMfpConfig {
                max_iters: 3,
                tol: 0.0,
                ..Default::default()
            },
        );
        let total: usize = r.reports.iter().map(|rep| rep.owned_subdomains).sum();
        assert_eq!(total, d.subdomains().len());
        // Compute time is recorded on every rank.
        for rep in &r.reports {
            assert!(rep.compute_seconds > 0.0);
        }
    }
}
