//! Global-domain geometry: the overlapping-subdomain lattice.

use mf_data::SubdomainSpec;
use mf_numerics::boundary::boundary_coords;
use mf_tensor::Tensor;

/// A large solve domain tiled by `sx × sy` atomic subdomains.
///
/// With subdomain resolution `m` (odd), the half-subdomain shift is
/// `s = (m−1)/2` grid points. Overlapping subdomains sit at every origin
/// that is a multiple of `s`, giving `(2sx−1) × (2sy−1)` subdomains; the
/// `sx × sy` *atomic* subdomains are the non-overlapping subset at
/// origins that are multiples of `2s`.
#[derive(Clone, Copy, Debug)]
pub struct DomainSpec {
    /// Subdomain geometry (shared with the training data).
    pub sub: SubdomainSpec,
    /// Atomic subdomains along x.
    pub sx: usize,
    /// Atomic subdomains along y.
    pub sy: usize,
}

/// One overlapping subdomain: its origin in global grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Subdomain {
    /// Global column of the window's left edge.
    pub ox: usize,
    /// Global row of the window's bottom edge.
    pub oy: usize,
}

impl DomainSpec {
    /// Construct and validate (odd `m`, at least one atomic subdomain).
    pub fn new(sub: SubdomainSpec, sx: usize, sy: usize) -> Self {
        assert!(
            sub.m >= 5 && sub.m % 2 == 1,
            "DomainSpec: m must be odd and >= 5"
        );
        assert!(
            sx >= 1 && sy >= 1,
            "DomainSpec: need at least one atomic subdomain"
        );
        Self { sub, sx, sy }
    }

    /// Half-subdomain shift in grid points.
    pub fn shift(&self) -> usize {
        (self.sub.m - 1) / 2
    }

    /// Global grid columns.
    pub fn nx(&self) -> usize {
        self.sx * (self.sub.m - 1) + 1
    }

    /// Global grid rows.
    pub fn ny(&self) -> usize {
        self.sy * (self.sub.m - 1) + 1
    }

    /// Grid spacing (same as the training subdomain's).
    pub fn h(&self) -> f64 {
        self.sub.h()
    }

    /// Length of the global boundary walk.
    pub fn boundary_len(&self) -> usize {
        2 * (self.nx() - 1) + 2 * (self.ny() - 1)
    }

    /// Whether a global grid point lies on the subdomain-interface
    /// lattice (or the domain boundary) — the set of points the MFP
    /// iteration maintains.
    pub fn on_lattice(&self, j: usize, i: usize) -> bool {
        let s = self.shift();
        j.is_multiple_of(s) || i.is_multiple_of(s)
    }

    /// All overlapping subdomains, in row-major order of their origins.
    pub fn subdomains(&self) -> Vec<Subdomain> {
        let s = self.shift();
        let mut out = Vec::with_capacity((2 * self.sx - 1) * (2 * self.sy - 1));
        for gy in 0..(2 * self.sy - 1) {
            for gx in 0..(2 * self.sx - 1) {
                out.push(Subdomain {
                    ox: gx * s,
                    oy: gy * s,
                });
            }
        }
        out
    }

    /// The atomic (non-overlapping) subdomains.
    pub fn atomic_subdomains(&self) -> Vec<Subdomain> {
        let step = self.sub.m - 1;
        let mut out = Vec::with_capacity(self.sx * self.sy);
        for gy in 0..self.sy {
            for gx in 0..self.sx {
                out.push(Subdomain {
                    ox: gx * step,
                    oy: gy * step,
                });
            }
        }
        out
    }

    /// The sweep group (0..4) of a subdomain: origins with equal parity of
    /// `(ox/s, oy/s)` never overlap, so each group can be batched into one
    /// inference (§4.1).
    pub fn group_of(&self, sd: Subdomain) -> usize {
        let s = self.shift();
        (sd.ox / s % 2) + 2 * (sd.oy / s % 2)
    }

    /// Read a subdomain's boundary walk from the global grid as a `1×4(m−1)`
    /// row vector.
    pub fn read_window_boundary(&self, grid: &Tensor, sd: Subdomain) -> Tensor {
        let m = self.sub.m;
        let coords = boundary_coords(m, m);
        Tensor::from_vec(
            1,
            coords.len(),
            coords
                .iter()
                .map(|&(j, i)| grid.get(sd.oy + j, sd.ox + i))
                .collect(),
        )
    }

    /// Read a subdomain's full `m×m` window of a global field as a
    /// `1×m²` row vector (row-major) — the forcing-term format of the
    /// shifted-operator extension.
    pub fn read_window_field(&self, field: &Tensor, sd: Subdomain) -> Tensor {
        let m = self.sub.m;
        let mut data = Vec::with_capacity(m * m);
        for j in 0..m {
            for i in 0..m {
                data.push(field.get(sd.oy + j, sd.ox + i));
            }
        }
        Tensor::from_vec(1, m * m, data)
    }

    /// Local `(row, col)` offsets of a subdomain's center cross — the
    /// interior points of its vertical and horizontal center lines (the
    /// center point appears once). These are exactly the points the MFP
    /// iteration predicts per subdomain.
    pub fn center_cross_offsets(&self) -> Vec<(usize, usize)> {
        let m = self.sub.m;
        let s = self.shift();
        let mut out = Vec::with_capacity(2 * (m - 2) - 1);
        for j in 1..m - 1 {
            out.push((j, s));
        }
        for i in 1..m - 1 {
            if i != s {
                out.push((s, i));
            }
        }
        out
    }

    /// Local `(row, col)` offsets of a subdomain's full interior, row-major
    /// — used by the final dense pass over atomic subdomains.
    pub fn interior_offsets(&self) -> Vec<(usize, usize)> {
        let m = self.sub.m;
        let mut out = Vec::with_capacity((m - 2) * (m - 2));
        for j in 1..m - 1 {
            for i in 1..m - 1 {
                out.push((j, i));
            }
        }
        out
    }

    /// Physical local coordinates of a list of local offsets, as a `q×2`
    /// tensor of `(x, y)` — the query-point format of
    /// [`SubdomainSolver`](crate::SubdomainSolver).
    pub fn offsets_to_points(&self, offsets: &[(usize, usize)]) -> Tensor {
        let h = self.h();
        let mut data = Vec::with_capacity(offsets.len() * 2);
        for &(j, i) in offsets {
            data.push(i as f64 * h);
            data.push(j as f64 * h);
        }
        Tensor::from_vec(offsets.len(), 2, data)
    }

    /// Sum of squares of the lattice values of a grid (used by the
    /// relative-change convergence test of Algorithm 2).
    pub fn lattice_sumsq(&self, grid: &Tensor) -> f64 {
        let mut acc = 0.0;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.on_lattice(j, i) {
                    let v = grid.get(j, i);
                    acc += v * v;
                }
            }
        }
        acc
    }

    /// Sum of squared differences of lattice values between two grids.
    pub fn lattice_diff_sumsq(&self, a: &Tensor, b: &Tensor) -> f64 {
        let mut acc = 0.0;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.on_lattice(j, i) {
                    let d = a.get(j, i) - b.get(j, i);
                    acc += d * d;
                }
            }
        }
        acc
    }

    /// Initialize the lattice from a **coarse global solve** — the
    /// coarse-grid correction the paper cites as the cure for one-level
    /// Schwarz methods on many subdomains (§5.3, refs [10, 8]).
    ///
    /// The subdomain-interface lattice intersections form a coarse grid
    /// with spacing `s·h`; solving the global BVP there is cheap
    /// (`O((2sx)·(2sy))` unknowns) and propagates boundary information
    /// across the whole domain in one step instead of one subdomain per
    /// iteration. Intersection values come from the coarse solve; the
    /// lattice lines between intersections are filled by linear
    /// interpolation. The boundary ring of `grid` must already hold the
    /// global BC.
    pub fn coarse_initialize(&self, grid: &mut Tensor) {
        use mf_numerics::{solve_dirichlet, Poisson};
        let s = self.shift();
        let (cny, cnx) = ((self.ny() - 1) / s + 1, (self.nx() - 1) / s + 1);
        // Sample the current grid (boundary ring set, interior zero) at
        // the lattice intersections.
        let coarse0 = Tensor::from_fn(cny, cnx, |j, i| grid.get(j * s, i * s));
        let problem = Poisson::laplace(cny, cnx, self.h() * s as f64);
        let (coarse, _stats) = solve_dirichlet(&problem, &coarse0, 1e-8);

        // Write intersections.
        for cj in 1..cny - 1 {
            for ci in 1..cnx - 1 {
                grid.set(cj * s, ci * s, coarse.get(cj, ci));
            }
        }
        // Interpolate along horizontal lattice rows.
        for cj in 1..cny - 1 {
            let j = cj * s;
            for i in 1..self.nx() - 1 {
                if i % s != 0 {
                    let i0 = i / s * s;
                    let t = (i - i0) as f64 / s as f64;
                    let v = (1.0 - t) * grid.get(j, i0) + t * grid.get(j, i0 + s);
                    grid.set(j, i, v);
                }
            }
        }
        // Interpolate along vertical lattice columns.
        for ci in 1..cnx - 1 {
            let i = ci * s;
            for j in 1..self.ny() - 1 {
                if j % s != 0 {
                    let j0 = j / s * s;
                    let t = (j - j0) as f64 / s as f64;
                    let v = (1.0 - t) * grid.get(j0, i) + t * grid.get(j0 + s, i);
                    grid.set(j, i, v);
                }
            }
        }
    }

    /// Mean absolute error between two grids over lattice points only —
    /// the cheap convergence metric used while iterating.
    pub fn lattice_mae(&self, a: &Tensor, b: &Tensor) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.on_lattice(j, i) {
                    acc += (a.get(j, i) - b.get(j, i)).abs();
                    n += 1;
                }
            }
        }
        acc / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DomainSpec {
        DomainSpec::new(SubdomainSpec { m: 9, spatial: 0.5 }, 2, 3)
    }

    #[test]
    fn grid_dimensions() {
        let d = spec();
        assert_eq!(d.shift(), 4);
        assert_eq!(d.nx(), 17);
        assert_eq!(d.ny(), 25);
        assert_eq!(d.boundary_len(), 2 * 16 + 2 * 24);
    }

    #[test]
    fn subdomain_counts() {
        let d = spec();
        assert_eq!(d.subdomains().len(), 3 * 5);
        assert_eq!(d.atomic_subdomains().len(), 6);
        // All windows fit inside the grid.
        for sd in d.subdomains() {
            assert!(sd.ox + d.sub.m <= d.nx());
            assert!(sd.oy + d.sub.m <= d.ny());
        }
    }

    #[test]
    fn groups_partition_and_never_overlap() {
        let d = spec();
        let sds = d.subdomains();
        for g in 0..4 {
            let group: Vec<_> = sds.iter().filter(|sd| d.group_of(**sd) == g).collect();
            // Pairwise non-overlap within a group: windows are m wide and
            // origins differ by at least 2s = m-1 in some axis.
            for (a, b) in group
                .iter()
                .enumerate()
                .flat_map(|(i, a)| group[i + 1..].iter().map(move |b| (a, b)))
            {
                let dx = a.ox.abs_diff(b.ox);
                let dy = a.oy.abs_diff(b.oy);
                assert!(
                    dx >= d.sub.m - 1 || dy >= d.sub.m - 1,
                    "group {g}: {a:?} and {b:?} overlap"
                );
            }
        }
        // Groups cover all subdomains.
        let total: usize = (0..4)
            .map(|g| sds.iter().filter(|sd| d.group_of(**sd) == g).count())
            .sum();
        assert_eq!(total, sds.len());
    }

    #[test]
    fn center_cross_offsets_shape() {
        let d = spec();
        let cc = d.center_cross_offsets();
        assert_eq!(cc.len(), 2 * (9 - 2) - 1);
        // All on the center lines.
        for &(j, i) in &cc {
            assert!(j == 4 || i == 4);
            assert!((1..=7).contains(&j) && (1..=7).contains(&i));
        }
        // No duplicates.
        let set: std::collections::HashSet<_> = cc.iter().collect();
        assert_eq!(set.len(), cc.len());
    }

    #[test]
    fn cross_writes_cover_every_interior_lattice_point() {
        // Union over all subdomains of (origin + center-cross offsets)
        // must equal the set of interior lattice points.
        let d = spec();
        let cc = d.center_cross_offsets();
        let mut written = std::collections::HashSet::new();
        for sd in d.subdomains() {
            for &(j, i) in &cc {
                written.insert((sd.oy + j, sd.ox + i));
            }
        }
        for j in 1..d.ny() - 1 {
            for i in 1..d.nx() - 1 {
                if d.on_lattice(j, i) {
                    assert!(
                        written.contains(&(j, i)),
                        "interior lattice point ({j},{i}) never written"
                    );
                }
            }
        }
        // And nothing outside the interior lattice is written.
        for &(j, i) in &written {
            assert!(d.on_lattice(j, i), "non-lattice point ({j},{i}) written");
            assert!(j >= 1 && j < d.ny() - 1 && i >= 1 && i < d.nx() - 1);
        }
    }

    #[test]
    fn window_boundary_reads_in_walk_order() {
        let d = spec();
        let grid = Tensor::from_fn(d.ny(), d.nx(), |j, i| (j * 100 + i) as f64);
        let b = d.read_window_boundary(&grid, Subdomain { ox: 4, oy: 8 });
        assert_eq!(b.numel(), 32);
        // Walk starts at the window origin.
        assert_eq!(b.as_slice()[0], (8 * 100 + 4) as f64);
        // Second point: one step right along the bottom edge.
        assert_eq!(b.as_slice()[1], (8 * 100 + 5) as f64);
    }

    #[test]
    fn offsets_to_points_uses_local_physical_coords() {
        let d = spec();
        let pts = d.offsets_to_points(&[(0, 0), (4, 8)]);
        assert_eq!(pts.shape(), (2, 2));
        assert_eq!(pts.get(0, 0), 0.0);
        let h = d.h();
        assert!((pts.get(1, 0) - 8.0 * h).abs() < 1e-15); // x = col*h
        assert!((pts.get(1, 1) - 4.0 * h).abs() < 1e-15); // y = row*h
    }

    #[test]
    fn lattice_metrics_agree_with_direct_computation() {
        let d = DomainSpec::new(SubdomainSpec { m: 5, spatial: 0.5 }, 1, 1);
        let a = Tensor::from_fn(5, 5, |j, i| (j + i) as f64);
        let b = Tensor::zeros(5, 5);
        // m=5 ⇒ s=2: lattice = rows/cols {0,2,4} — every point with even
        // row or col.
        let mut sumsq = 0.0;
        let mut n = 0;
        let mut mae = 0.0;
        for j in 0..5 {
            for i in 0..5 {
                if j % 2 == 0 || i % 2 == 0 {
                    sumsq += ((j + i) as f64).powi(2);
                    mae += (j + i) as f64;
                    n += 1;
                }
            }
        }
        assert!((d.lattice_sumsq(&a) - sumsq).abs() < 1e-12);
        assert!((d.lattice_diff_sumsq(&a, &b) - sumsq).abs() < 1e-12);
        assert!((d.lattice_mae(&a, &b) - mae / n as f64).abs() < 1e-12);
    }
}
