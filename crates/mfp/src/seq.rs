//! Single-process Mosaic Flow predictor: the baseline (unbatched) and the
//! device-parallel batched variant (§4.1).

use crate::domain::{DomainSpec, Subdomain};
use crate::solver::SubdomainSolver;
use mf_numerics::boundary::apply_boundary;
use mf_telemetry::{histogram, span, Buckets};
use mf_tensor::Tensor;
use rayon::prelude::*;

/// Early-stop criterion based on a reference solution (used by the
/// strong-scaling experiments, which iterate until MAE ≤ 0.05).
#[derive(Clone, Debug)]
pub struct MaeTarget {
    /// Reference solution on the full global grid.
    pub reference: Tensor,
    /// Stop once the lattice MAE against the reference drops below this.
    pub mae: f64,
    /// Check every this many iterations.
    pub every: usize,
}

/// Iteration controls for [`Mfp::run`].
#[derive(Clone, Debug)]
pub struct MfpConfig {
    /// Maximum Schwarz iterations.
    pub max_iters: usize,
    /// Relative-change convergence threshold `δ` (Algorithm 2, line 5);
    /// set to 0 to disable.
    pub tol: f64,
    /// Batch each sweep group into one inference (§4.1) instead of solving
    /// one subdomain at a time.
    pub batched: bool,
    /// Optional reference-based stop.
    pub target: Option<MaeTarget>,
    /// Initialize the lattice from a coarse global solve before
    /// iterating (the coarse-grid correction of §5.3's cited future
    /// work) — typically cuts the iteration count severalfold on large
    /// domains.
    pub coarse_init: bool,
}

impl Default for MfpConfig {
    fn default() -> Self {
        Self {
            max_iters: 1000,
            tol: 1e-4,
            batched: true,
            target: None,
            coarse_init: false,
        }
    }
}

/// Outcome of an MFP run.
#[derive(Clone, Debug)]
pub struct MfpResult {
    /// Dense solution on the global grid.
    pub grid: Tensor,
    /// Schwarz iterations performed.
    pub iterations: usize,
    /// Whether a stop criterion fired before `max_iters`.
    pub converged: bool,
    /// Relative lattice change per iteration.
    pub deltas: Vec<f64>,
    /// `(iteration, lattice MAE)` history when a target was given.
    pub mae_history: Vec<(usize, f64)>,
}

/// The Mosaic Flow predictor bound to a solver and a domain.
pub struct Mfp<'a, S: SubdomainSolver> {
    solver: &'a S,
    domain: DomainSpec,
}

impl<'a, S: SubdomainSolver> Mfp<'a, S> {
    /// Bind a solver to a domain (geometries must match).
    pub fn new(solver: &'a S, domain: DomainSpec) -> Self {
        assert_eq!(
            solver.spec(),
            domain.sub,
            "Mfp: solver and domain subdomain geometry differ"
        );
        Self { solver, domain }
    }

    /// The bound domain.
    pub fn domain(&self) -> &DomainSpec {
        &self.domain
    }

    /// Solve the BVP given the global boundary walk `bc`
    /// (`1×boundary_len`).
    pub fn run(&self, bc: &Tensor, cfg: &MfpConfig) -> MfpResult {
        self.run_shifted(bc, 0.0, None, cfg)
    }

    /// Solve the shifted problem `σu − Δu = f` with `f` given on the full
    /// global grid. With `σ = 1/(α·Δt)` and `f = σ·uⁿ` this is one
    /// implicit-Euler step of the heat equation — the time-dependent
    /// extension hypothesized in §5.3 of the paper. Requires a subdomain
    /// solver that implements
    /// [`SubdomainSolver::solve_batch_shifted`] (the oracle does).
    pub fn run_shifted(
        &self,
        bc: &Tensor,
        sigma: f64,
        forcing: Option<&Tensor>,
        cfg: &MfpConfig,
    ) -> MfpResult {
        let d = &self.domain;
        if let Some(f) = forcing {
            assert_eq!(
                f.shape(),
                (d.ny(), d.nx()),
                "run_shifted: forcing shape mismatch"
            );
        }
        assert_eq!(
            bc.numel(),
            d.boundary_len(),
            "Mfp::run: global boundary has wrong length"
        );
        let mut grid = Tensor::zeros(d.ny(), d.nx());
        apply_boundary(&mut grid, bc);
        if cfg.coarse_init {
            d.coarse_initialize(&mut grid);
        }

        let groups = self.sweep_groups();
        let cross = d.center_cross_offsets();
        let cross_pts = d.offsets_to_points(&cross);

        let mut deltas = Vec::new();
        let mut mae_history = Vec::new();
        let mut converged = false;
        let mut iterations = 0;

        let h_residual = histogram("mfp.residual", Buckets::exponential(1e-9, 10.0, 12));

        for it in 0..cfg.max_iters {
            span!("mfp.iteration", it = it as f64);
            let prev = grid.clone();
            {
                mf_profile::zone!("sweep");
                for group in &groups {
                    self.sweep_group(
                        &mut grid,
                        group,
                        &cross,
                        &cross_pts,
                        cfg.batched,
                        sigma,
                        forcing,
                    );
                }
            }
            iterations = it + 1;
            // Make this thread's metrics visible to live scrapes once
            // per iteration (a warm publish does not allocate).
            mf_telemetry::publish_thread();

            let delta = {
                let num = d.lattice_diff_sumsq(&grid, &prev);
                let den = d.lattice_sumsq(&prev).max(f64::MIN_POSITIVE);
                (num / den).sqrt()
            };
            h_residual.record(delta);
            deltas.push(delta);
            if cfg.tol > 0.0 && delta < cfg.tol {
                converged = true;
                break;
            }
            if let Some(t) = &cfg.target {
                if iterations % t.every == 0 {
                    let mae = d.lattice_mae(&grid, &t.reference);
                    mae_history.push((iterations, mae));
                    if mae <= t.mae {
                        converged = true;
                        break;
                    }
                }
            }
        }

        self.dense_fill_shifted(&mut grid, sigma, forcing);
        MfpResult {
            grid,
            iterations,
            converged,
            deltas,
            mae_history,
        }
    }

    /// The four non-overlapping sweep groups, in a fixed alternating
    /// order.
    pub fn sweep_groups(&self) -> [Vec<Subdomain>; 4] {
        let mut groups: [Vec<Subdomain>; 4] = Default::default();
        for sd in self.domain.subdomains() {
            groups[self.domain.group_of(sd)].push(sd);
        }
        groups
    }

    /// Run one group's inferences and write the center crosses back.
    /// `batched = false` issues one inference per subdomain (the original
    /// baseline); within a group the results are identical because group
    /// members never overlap.
    #[allow(clippy::too_many_arguments)]
    fn sweep_group(
        &self,
        grid: &mut Tensor,
        group: &[Subdomain],
        cross: &[(usize, usize)],
        cross_pts: &Tensor,
        batched: bool,
        sigma: f64,
        forcing: Option<&Tensor>,
    ) {
        if group.is_empty() {
            return;
        }
        let window_forcings = |sds: &[Subdomain]| {
            forcing.map(|f| {
                Tensor::vstack(
                    &sds.iter()
                        .map(|&sd| self.domain.read_window_field(f, sd))
                        .collect::<Vec<_>>(),
                )
            })
        };
        if batched {
            let boundaries = Tensor::vstack(
                &group
                    .iter()
                    .map(|&sd| self.domain.read_window_boundary(grid, sd))
                    .collect::<Vec<_>>(),
            );
            let fw = window_forcings(group);
            let preds = self
                .solver
                .solve_batch_shifted(sigma, &boundaries, fw.as_ref(), cross_pts);
            let q = cross.len();
            for (bi, &sd) in group.iter().enumerate() {
                for (k, &(j, i)) in cross.iter().enumerate() {
                    grid.set(sd.oy + j, sd.ox + i, preds.get(bi * q + k, 0));
                }
            }
        } else {
            // Same-color subdomains never overlap, so their solves are
            // independent: fan the per-subdomain launches out with rayon
            // and write the crosses back (to disjoint lattice cells)
            // afterwards.
            let gridr: &Tensor = grid;
            let preds: Vec<Tensor> = group
                .to_vec()
                .into_par_iter()
                .map(|sd| {
                    let boundary = self.domain.read_window_boundary(gridr, sd);
                    let fw = window_forcings(&[sd]);
                    self.solver
                        .solve_batch_shifted(sigma, &boundary, fw.as_ref(), cross_pts)
                })
                .collect();
            for (&sd, p) in group.iter().zip(&preds) {
                for (k, &(j, i)) in cross.iter().enumerate() {
                    grid.set(sd.oy + j, sd.ox + i, p.get(k, 0));
                }
            }
        }
    }

    /// Final dense pass: predict every interior point of every atomic
    /// subdomain from its current lattice boundary.
    pub fn dense_fill(&self, grid: &mut Tensor) {
        self.dense_fill_shifted(grid, 0.0, None)
    }

    /// Dense pass for the shifted operator.
    pub fn dense_fill_shifted(&self, grid: &mut Tensor, sigma: f64, forcing: Option<&Tensor>) {
        let d = &self.domain;
        let interior = d.interior_offsets();
        let pts = d.offsets_to_points(&interior);
        let atoms = d.atomic_subdomains();
        let boundaries = Tensor::vstack(
            &atoms
                .iter()
                .map(|&sd| d.read_window_boundary(grid, sd))
                .collect::<Vec<_>>(),
        );
        let fw = forcing.map(|f| {
            Tensor::vstack(
                &atoms
                    .iter()
                    .map(|&sd| d.read_window_field(f, sd))
                    .collect::<Vec<_>>(),
            )
        });
        let preds = self
            .solver
            .solve_batch_shifted(sigma, &boundaries, fw.as_ref(), &pts);
        let q = interior.len();
        for (bi, &sd) in atoms.iter().enumerate() {
            for (k, &(j, i)) in interior.iter().enumerate() {
                grid.set(sd.oy + j, sd.ox + i, preds.get(bi * q + k, 0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::OracleSolver;
    use mf_data::SubdomainSpec;
    use mf_numerics::boundary::{boundary_coords, grid_with_boundary};
    use mf_numerics::{solve_dirichlet, Poisson};

    fn spec() -> SubdomainSpec {
        SubdomainSpec { m: 9, spatial: 0.5 }
    }

    /// Global boundary walk of a harmonic function on the domain.
    fn harmonic_bc(d: &DomainSpec) -> (Tensor, Tensor) {
        let h = d.h();
        let f = |x: f64, y: f64| x * x - y * y + 0.3 * x * y;
        let coords = boundary_coords(d.ny(), d.nx());
        let bc = Tensor::from_vec(
            1,
            coords.len(),
            coords
                .iter()
                .map(|&(j, i)| f(i as f64 * h, j as f64 * h))
                .collect(),
        );
        let exact = Tensor::from_fn(d.ny(), d.nx(), |j, i| f(i as f64 * h, j as f64 * h));
        (bc, exact)
    }

    /// Reference via a single global numerical solve.
    fn reference(d: &DomainSpec, bc: &Tensor) -> Tensor {
        let guess = grid_with_boundary(d.ny(), d.nx(), bc);
        let (sol, stats) = solve_dirichlet(&Poisson::laplace(d.ny(), d.nx(), d.h()), &guess, 1e-9);
        assert!(stats.converged);
        sol
    }

    #[test]
    fn single_subdomain_domain_is_solved_in_one_iteration() {
        let d = DomainSpec::new(spec(), 1, 1);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let (bc, exact) = harmonic_bc(&d);
        let res = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 3,
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(
            res.grid.max_abs_diff(&exact) < 1e-5,
            "err {}",
            res.grid.max_abs_diff(&exact)
        );
    }

    #[test]
    fn mfp_with_oracle_converges_to_global_solution() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let refsol = reference(&d, &bc);
        let res = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 200,
                tol: 1e-8,
                batched: true,
                target: None,
                coarse_init: false,
            },
        );
        assert!(
            res.converged,
            "did not converge in {} iters",
            res.iterations
        );
        let mae = res.grid.mean_abs_diff(&refsol);
        assert!(mae < 1e-4, "MAE vs global solve: {mae}");
    }

    #[test]
    fn batched_and_unbatched_produce_identical_results() {
        let d = DomainSpec::new(spec(), 2, 1);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let cfg_b = MfpConfig {
            max_iters: 5,
            tol: 0.0,
            batched: true,
            target: None,
            coarse_init: false,
        };
        let cfg_u = MfpConfig {
            batched: false,
            ..cfg_b.clone()
        };
        let rb = mfp.run(&bc, &cfg_b);
        let ru = mfp.run(&bc, &cfg_u);
        assert_eq!(rb.iterations, ru.iterations);
        assert!(
            rb.grid.max_abs_diff(&ru.grid) < 1e-12,
            "batched vs unbatched diverge: {}",
            rb.grid.max_abs_diff(&ru.grid)
        );
    }

    /// A small Fourier-feature SDNet for the compiled-vs-graph equality
    /// tests.
    fn equality_net(seed: u64) -> mf_nn::SdNet {
        use rand::SeedableRng;
        let mut cfg = mf_nn::SdNetConfig::small(spec().boundary_len());
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![10, 10];
        cfg.coord_fourier = 2;
        mf_nn::SdNet::new(cfg, &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed))
    }

    fn assert_grids_bitwise(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape());
        for (k, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: cell {k} differs ({x} vs {y})"
            );
        }
    }

    #[test]
    fn plan_batched_and_unbatched_mfp_runs_are_bitwise_identical() {
        // The compiled-plan solver, the batched graph path, and the
        // unbatched graph path must agree *bit for bit* through a full
        // MFP run (sweeps + dense fill exercise two distinct plans).
        let d = DomainSpec::new(spec(), 2, 1);
        let net = equality_net(42);
        let (bc, _) = harmonic_bc(&d);
        let cfg_b = MfpConfig {
            max_iters: 3,
            tol: 0.0,
            batched: true,
            target: None,
            coarse_init: false,
        };
        let cfg_u = MfpConfig {
            batched: false,
            ..cfg_b.clone()
        };

        let plan = crate::PlanSolver::new(net.clone(), spec());
        let graph = crate::NeuralSolver::new(net, spec());
        let rp = Mfp::new(&plan, d).run(&bc, &cfg_b);
        let rb = Mfp::new(&graph, d).run(&bc, &cfg_b);
        let ru = Mfp::new(&graph, d).run(&bc, &cfg_u);
        assert_grids_bitwise(&rb.grid, &rp.grid, "plan vs batched graph");
        assert_grids_bitwise(&rb.grid, &ru.grid, "batched vs unbatched graph");
        // Sweeps reuse the cross-point plan after the first compile; the
        // dense fill compiles a second plan for the interior points.
        assert!(plan.cache_hits() > 0);
    }

    mod plan_equality_proptests {
        use super::*;
        use proptest::prelude::*;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// The compiled plan, the batched graph path, and the
            /// per-boundary graph path must be bitwise-identical for any
            /// weights, boundaries, and query points.
            #[test]
            fn plan_and_graph_paths_agree_bitwise(
                net_seed in 0u64..1_000_000,
                data_seed in 0u64..1_000_000,
                b in 1usize..5,
                q in 1usize..9,
            ) {
                let spec = spec();
                let net = equality_net(net_seed);
                let plan = crate::PlanSolver::new(net.clone(), spec);
                let graph = crate::NeuralSolver::new(net, spec);
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(data_seed);
                let bnd = Tensor::from_fn(b, spec.boundary_len(), |_, _| {
                    rng.gen_range(-1.0..1.0)
                });
                let pts = Tensor::from_fn(q, 2, |_, _| rng.gen_range(0.0..0.5));

                let compiled = plan.solve_batch(&bnd, &pts);
                let batched = graph.solve_batch(&bnd, &pts);
                for (x, y) in batched.as_slice().iter().zip(compiled.as_slice()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                // Unbatched graph path: one boundary per launch.
                for bi in 0..b {
                    let row = Tensor::from_fn(1, spec.boundary_len(), |_, c| bnd.get(bi, c));
                    let single = graph.solve_batch(&row, &pts);
                    for k in 0..q {
                        prop_assert_eq!(
                            single.get(k, 0).to_bits(),
                            batched.get(bi * q + k, 0).to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deltas_decay_monotonically_in_the_tail() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let res = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 30,
                tol: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(res.deltas.len(), 30);
        // Schwarz for Laplace contracts: late deltas well below early ones.
        let early = res.deltas[1];
        let late = *res.deltas.last().unwrap();
        assert!(
            late < early * 0.1,
            "deltas did not contract: {early} -> {late}"
        );
    }

    #[test]
    fn global_boundary_is_never_modified() {
        let d = DomainSpec::new(spec(), 2, 1);
        let oracle = OracleSolver::new(spec(), 1e-9);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let res = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 3,
                tol: 0.0,
                ..Default::default()
            },
        );
        let out_bc = mf_numerics::boundary::extract_boundary(&res.grid);
        assert!(out_bc.allclose(&bc, 1e-12));
    }

    #[test]
    fn shifted_mfp_matches_global_shifted_solve() {
        // Manufactured problem: σu − Δu = f with u = sin(πx/W)sin(πy/H)
        // on the domain, zero boundary.
        use mf_numerics::solve_shifted_sor;
        let d = DomainSpec::new(spec(), 2, 1);
        let (w, hgt) = ((d.nx() - 1) as f64 * d.h(), (d.ny() - 1) as f64 * d.h());
        let pi = std::f64::consts::PI;
        let sigma = 40.0;
        let exact = Tensor::from_fn(d.ny(), d.nx(), |j, i| {
            (pi * i as f64 * d.h() / w).sin() * (pi * j as f64 * d.h() / hgt).sin()
        });
        let lam = (pi / w).powi(2) + (pi / hgt).powi(2);
        let forcing = exact.scale(sigma + lam);
        let bc = Tensor::zeros(1, d.boundary_len());

        // Global reference with the same discretization.
        let problem = mf_numerics::Poisson {
            f: forcing.clone(),
            h: d.h(),
        };
        let guess = Tensor::zeros(d.ny(), d.nx());
        let (reference, st) = solve_shifted_sor(&problem, sigma, &guess, 1.5, 100_000, 1e-10);
        assert!(st.converged);

        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let res = mfp.run_shifted(
            &bc,
            sigma,
            Some(&forcing),
            &MfpConfig {
                max_iters: 300,
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(res.converged, "shifted MFP did not converge");
        let mae = res.grid.mean_abs_diff(&reference);
        assert!(mae < 1e-5, "MAE vs global shifted solve: {mae}");
        // And against the continuum solution, up to discretization error.
        assert!(res.grid.mean_abs_diff(&exact) < 5e-3);
    }

    #[test]
    fn shifted_mfp_converges_faster_than_laplace_mfp() {
        // Diagonal dominance (σ > 0) localizes the problem: information
        // needs fewer Schwarz iterations — the basis of §5.3's hypothesis
        // that time-dependent problems suit one-level Schwarz.
        let d = DomainSpec::new(spec(), 4, 2);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let cfg = MfpConfig {
            max_iters: 2000,
            tol: 1e-7,
            ..Default::default()
        };
        let laplace = mfp.run(&bc, &cfg);
        let zero_forcing = Tensor::zeros(d.ny(), d.nx());
        let shifted = mfp.run_shifted(&bc, 200.0, Some(&zero_forcing), &cfg);
        assert!(laplace.converged && shifted.converged);
        assert!(
            shifted.iterations < laplace.iterations,
            "shifted ({}) should beat Laplace ({})",
            shifted.iterations,
            laplace.iterations
        );
    }

    #[test]
    fn coarse_init_cuts_iterations_without_changing_the_answer() {
        // The coarse-grid initialization (cited future work of §5.3)
        // propagates boundary information globally in one cheap solve, so
        // the Schwarz iteration starts much closer to the fixed point.
        let d = DomainSpec::new(spec(), 4, 4);
        let oracle = OracleSolver::new(spec(), 1e-10);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let plain = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 2000,
                tol: 1e-7,
                ..Default::default()
            },
        );
        let coarse = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 2000,
                tol: 1e-7,
                coarse_init: true,
                ..Default::default()
            },
        );
        assert!(plain.converged && coarse.converged);
        assert!(
            (coarse.iterations as f64) <= 0.8 * plain.iterations as f64,
            "coarse init should cut iterations noticeably: {} vs {}",
            coarse.iterations,
            plain.iterations
        );
        assert!(
            plain.grid.mean_abs_diff(&coarse.grid) < 1e-5,
            "coarse init changed the converged solution"
        );
    }

    #[test]
    fn coarse_initialize_is_exact_for_linear_solutions() {
        // A linear harmonic function is reproduced exactly by the coarse
        // solve + linear interpolation, so the lattice starts at the
        // exact solution.
        let d = DomainSpec::new(spec(), 2, 2);
        let h = d.h();
        let f = |x: f64, y: f64| 1.0 + 2.0 * x - 3.0 * y;
        let coords = mf_numerics::boundary::boundary_coords(d.ny(), d.nx());
        let bc = Tensor::from_vec(
            1,
            coords.len(),
            coords
                .iter()
                .map(|&(j, i)| f(i as f64 * h, j as f64 * h))
                .collect(),
        );
        let mut grid = Tensor::zeros(d.ny(), d.nx());
        apply_boundary(&mut grid, &bc);
        d.coarse_initialize(&mut grid);
        for j in 0..d.ny() {
            for i in 0..d.nx() {
                if d.on_lattice(j, i) {
                    let e = f(i as f64 * h, j as f64 * h);
                    assert!(
                        (grid.get(j, i) - e).abs() < 1e-7,
                        "lattice point ({j},{i}): {} vs {e}",
                        grid.get(j, i)
                    );
                }
            }
        }
    }

    #[test]
    fn mae_target_stops_early_and_records_history() {
        let d = DomainSpec::new(spec(), 2, 2);
        let oracle = OracleSolver::new(spec(), 1e-9);
        let mfp = Mfp::new(&oracle, d);
        let (bc, _) = harmonic_bc(&d);
        let refsol = reference(&d, &bc);
        let res = mfp.run(
            &bc,
            &MfpConfig {
                max_iters: 500,
                tol: 0.0,
                batched: true,
                target: Some(MaeTarget {
                    reference: refsol,
                    mae: 0.05,
                    every: 1,
                }),
                coarse_init: false,
            },
        );
        assert!(res.converged);
        assert!(res.iterations < 500);
        assert!(!res.mae_history.is_empty());
        // History MAE is decreasing overall.
        let first = res.mae_history[0].1;
        let last = res.mae_history.last().unwrap().1;
        assert!(last <= first);
        assert!(last <= 0.05);
    }
}
