//! The subdomain-solver abstraction and its two implementations.

use mf_data::SubdomainSpec;
use mf_nn::SdNet;
use mf_numerics::boundary::grid_with_boundary;
use mf_numerics::{solve_dirichlet, Poisson};
use mf_tensor::Tensor;
use rayon::prelude::*;

/// Map grid-aligned query points to `(row, col)` grid indices on an
/// `m×m` subdomain with spacing `h`. Panics when a point is farther than
/// 1e-9 from a lattice site — the oracle can only sample what the grid
/// solver computed.
fn grid_aligned_indices(points: &Tensor, h: f64) -> Vec<(usize, usize)> {
    (0..points.rows())
        .map(|k| {
            let i = (points.get(k, 0) / h).round();
            let j = (points.get(k, 1) / h).round();
            assert!(
                (points.get(k, 0) - i * h).abs() < 1e-9 && (points.get(k, 1) - j * h).abs() < 1e-9,
                "OracleSolver: query point {k} is not grid-aligned"
            );
            (j as usize, i as usize)
        })
        .collect()
}

/// Anything that can solve a batch of small Dirichlet problems at a fixed
/// set of query points.
///
/// `boundaries` is `[B, 4(m−1)]` (counter-clockwise walks); `points` is a
/// single `q×2` set of local physical coordinates shared by all `B`
/// problems. The result is `[B·q, 1]` with rows grouped per boundary.
pub trait SubdomainSolver: Sync {
    /// Subdomain geometry this solver was built for.
    fn spec(&self) -> SubdomainSpec;

    /// Solve all `B` problems at the shared query points.
    fn solve_batch(&self, boundaries: &Tensor, points: &Tensor) -> Tensor;

    /// Number of scalar inferences performed so far (for the cost model).
    fn inference_count(&self) -> usize;

    /// Number of `solve_batch` calls so far — "kernel launches" in the
    /// device-occupancy model behind the Fig-8 reproduction.
    fn launch_count(&self) -> usize;

    /// Solve the shifted problem `σu − Δu = f` on each subdomain, with
    /// `forcings` holding one row-major `m·m` window per boundary. This
    /// powers the time-dependent extension (implicit-Euler heat stepping,
    /// §5.3 of the paper); the default rejects anything but the plain
    /// Laplace equation, which is all a Laplace-trained SDNet supports.
    fn solve_batch_shifted(
        &self,
        sigma: f64,
        boundaries: &Tensor,
        forcings: Option<&Tensor>,
        points: &Tensor,
    ) -> Tensor {
        assert!(
            sigma == 0.0 && forcings.is_none(),
            "this subdomain solver supports only the Laplace equation"
        );
        self.solve_batch(boundaries, points)
    }
}

/// SDNet-backed solver (the paper's configuration).
pub struct NeuralSolver {
    net: SdNet,
    spec: SubdomainSpec,
    count: std::sync::atomic::AtomicUsize,
    launches: std::sync::atomic::AtomicUsize,
}

impl NeuralSolver {
    /// Wrap a trained network. The network's `boundary_len` must match the
    /// subdomain geometry.
    pub fn new(net: SdNet, spec: SubdomainSpec) -> Self {
        assert_eq!(
            net.config().boundary_len,
            spec.boundary_len(),
            "NeuralSolver: network boundary length does not match subdomain"
        );
        Self {
            net,
            spec,
            count: std::sync::atomic::AtomicUsize::new(0),
            launches: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Access the wrapped network.
    pub fn net(&self) -> &SdNet {
        &self.net
    }
}

impl SubdomainSolver for NeuralSolver {
    fn spec(&self) -> SubdomainSpec {
        self.spec
    }

    fn solve_batch(&self, boundaries: &Tensor, points: &Tensor) -> Tensor {
        let b = boundaries.rows();
        let q = points.rows();
        // Tile the shared query points for every boundary in the batch.
        let mut tiled = Vec::with_capacity(b * q * 2);
        for _ in 0..b {
            tiled.extend_from_slice(points.as_slice());
        }
        let tiled = Tensor::from_vec(b * q, 2, tiled);
        self.count
            .fetch_add(b * q, std::sync::atomic::Ordering::Relaxed);
        self.launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.net.predict(boundaries, &tiled, q)
    }

    fn inference_count(&self) -> usize {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn launch_count(&self) -> usize {
        self.launches.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Numerical oracle: solves each subdomain with multigrid/SOR and samples
/// the query points. With this solver the MFP becomes a classical
/// lattice-restricted alternating Schwarz method — the reference for
/// isolating distributed-algorithm behaviour from model error.
pub struct OracleSolver {
    spec: SubdomainSpec,
    tol: f64,
    count: std::sync::atomic::AtomicUsize,
    launches: std::sync::atomic::AtomicUsize,
}

impl OracleSolver {
    /// Oracle for the given geometry, solving to residual `tol`.
    pub fn new(spec: SubdomainSpec, tol: f64) -> Self {
        Self {
            spec,
            tol,
            count: std::sync::atomic::AtomicUsize::new(0),
            launches: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl SubdomainSolver for OracleSolver {
    fn spec(&self) -> SubdomainSpec {
        self.spec
    }

    fn solve_batch(&self, boundaries: &Tensor, points: &Tensor) -> Tensor {
        let m = self.spec.m;
        let h = self.spec.h();
        let b = boundaries.rows();
        let q = points.rows();
        // Query points must be grid-aligned for the oracle.
        let idx = grid_aligned_indices(points, h);

        let mut out = Tensor::zeros(b * q, 1);
        let problem = Poisson::laplace(m, m, h);
        // Each boundary owns a disjoint q-row block of the output, so the
        // multigrid solves run in parallel.
        out.as_mut_slice()
            .par_chunks_mut(q)
            .enumerate()
            .for_each(|(bi, chunk)| {
                let bc = Tensor::from_vec(1, boundaries.cols(), boundaries.row(bi).to_vec());
                let guess = grid_with_boundary(m, m, &bc);
                let (sol, stats) = solve_dirichlet(&problem, &guess, self.tol);
                debug_assert!(stats.converged, "oracle subdomain solve failed: {stats:?}");
                for (k, &(j, i)) in idx.iter().enumerate() {
                    chunk[k] = sol.get(j, i);
                }
            });
        self.count
            .fetch_add(b * q, std::sync::atomic::Ordering::Relaxed);
        self.launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        out
    }

    fn inference_count(&self) -> usize {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn launch_count(&self) -> usize {
        self.launches.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn solve_batch_shifted(
        &self,
        sigma: f64,
        boundaries: &Tensor,
        forcings: Option<&Tensor>,
        points: &Tensor,
    ) -> Tensor {
        use mf_numerics::solve_shifted_sor;
        if sigma == 0.0 && forcings.is_none() {
            return self.solve_batch(boundaries, points);
        }
        let m = self.spec.m;
        let h = self.spec.h();
        let b = boundaries.rows();
        let q = points.rows();
        let idx = grid_aligned_indices(points, h);
        let mut out = Tensor::zeros(b * q, 1);
        out.as_mut_slice()
            .par_chunks_mut(q)
            .enumerate()
            .for_each(|(bi, chunk)| {
                let bc = Tensor::from_vec(1, boundaries.cols(), boundaries.row(bi).to_vec());
                let guess = grid_with_boundary(m, m, &bc);
                let f = match forcings {
                    Some(fr) => Tensor::from_vec(m, m, fr.row(bi).to_vec()),
                    None => Tensor::zeros(m, m),
                };
                let problem = Poisson { f, h };
                let (sol, stats) =
                    solve_shifted_sor(&problem, sigma, &guess, 1.5, 50_000, self.tol);
                debug_assert!(stats.converged, "oracle shifted solve failed: {stats:?}");
                for (k, &(j, i)) in idx.iter().enumerate() {
                    chunk[k] = sol.get(j, i);
                }
            });
        self.count
            .fetch_add(b * q, std::sync::atomic::Ordering::Relaxed);
        self.launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_nn::SdNetConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec() -> SubdomainSpec {
        SubdomainSpec { m: 9, spatial: 0.5 }
    }

    #[test]
    fn oracle_reproduces_harmonic_function() {
        let spec = spec();
        let s = OracleSolver::new(spec, 1e-10);
        // Boundary of u = x² − y² on the subdomain.
        let coords = mf_numerics::boundary::boundary_coords(spec.m, spec.m);
        let h = spec.h();
        let bvals: Vec<f64> = coords
            .iter()
            .map(|&(j, i)| {
                let (x, y) = (i as f64 * h, j as f64 * h);
                x * x - y * y
            })
            .collect();
        let bc = Tensor::from_vec(1, bvals.len(), bvals);
        let pts = Tensor::from_vec(2, 2, vec![4.0 * h, 4.0 * h, 2.0 * h, 6.0 * h]);
        let out = s.solve_batch(&bc, &pts);
        assert_eq!(out.shape(), (2, 1));
        let e0 = (4.0 * h) * (4.0 * h) - (4.0 * h) * (4.0 * h);
        let e1 = (2.0 * h) * (2.0 * h) - (6.0 * h) * (6.0 * h);
        assert!((out.get(0, 0) - e0).abs() < 1e-6);
        assert!((out.get(1, 0) - e1).abs() < 1e-6);
        // One boundary × two query points.
        assert_eq!(s.inference_count(), 2);
    }

    #[test]
    fn oracle_batches_independent_problems() {
        let spec = spec();
        let s = OracleSolver::new(spec, 1e-9);
        let l = spec.boundary_len();
        // Two different constant boundaries: solutions are the constants.
        let mut b = Tensor::zeros(2, l);
        for c in 0..l {
            b.set(0, c, 1.0);
            b.set(1, c, -2.0);
        }
        let h = spec.h();
        let pts = Tensor::from_vec(1, 2, vec![4.0 * h, 4.0 * h]);
        let out = s.solve_batch(&b, &pts);
        assert!((out.get(0, 0) - 1.0).abs() < 1e-7);
        assert!((out.get(1, 0) + 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "grid-aligned")]
    fn oracle_rejects_off_grid_points() {
        let spec = spec();
        let s = OracleSolver::new(spec, 1e-9);
        let b = Tensor::zeros(1, spec.boundary_len());
        let pts = Tensor::from_vec(1, 2, vec![0.1234, 0.1]);
        let _ = s.solve_batch(&b, &pts);
    }

    #[test]
    fn neural_solver_tiles_points_per_boundary() {
        let spec = spec();
        let mut cfg = SdNetConfig::small(spec.boundary_len());
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![8, 8];
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(0));
        let s = NeuralSolver::new(net, spec);
        let b = Tensor::from_fn(3, spec.boundary_len(), |r, c| ((r + c) as f64 * 0.1).sin());
        let pts = Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]);
        let out = s.solve_batch(&b, &pts);
        assert_eq!(out.shape(), (6, 1));
        assert_eq!(s.inference_count(), 6);
        // Same boundary ⇒ same prediction for the same point; different
        // boundaries ⇒ (generically) different predictions.
        let single = s.solve_batch(
            &Tensor::from_vec(1, spec.boundary_len(), b.row(1).to_vec()),
            &pts,
        );
        assert!((single.get(0, 0) - out.get(2, 0)).abs() < 1e-12);
        assert!((single.get(1, 0) - out.get(3, 0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "boundary length")]
    fn neural_solver_checks_geometry() {
        let mut cfg = SdNetConfig::small(16);
        cfg.conv_channels = vec![];
        cfg.hidden = vec![4];
        let net = SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(0));
        let _ = NeuralSolver::new(net, spec()); // spec wants 32
    }
}
