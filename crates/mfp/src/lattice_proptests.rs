//! Property-based tests of the subdomain-lattice geometry over random
//! domain shapes: the structural invariants the MFP iteration silently
//! relies on must hold for *every* `(m, sx, sy)`, not just the sizes the
//! unit tests pick.

use crate::domain::{DomainSpec, Subdomain};
use mf_data::SubdomainSpec;
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = DomainSpec> {
    // m ∈ {5, 9, 13, 17} (odd, ≥5), sx/sy ∈ 1..=4.
    (0usize..4, 1usize..=4, 1usize..=4).prop_map(|(mi, sx, sy)| {
        let m = 5 + 4 * mi;
        DomainSpec::new(SubdomainSpec { m, spatial: 0.5 }, sx, sy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every subdomain window fits inside the global grid.
    #[test]
    fn windows_stay_inside_the_grid(d in arb_domain()) {
        for sd in d.subdomains() {
            prop_assert!(sd.ox + d.sub.m <= d.nx());
            prop_assert!(sd.oy + d.sub.m <= d.ny());
        }
    }

    /// Subdomain and atomic counts match the closed forms of §4.3.
    #[test]
    fn subdomain_counts_match_formulas(d in arb_domain()) {
        prop_assert_eq!(d.subdomains().len(), (2 * d.sx - 1) * (2 * d.sy - 1));
        prop_assert_eq!(d.atomic_subdomains().len(), d.sx * d.sy);
    }

    /// The four sweep groups partition the subdomains, and no two members
    /// of a group overlap (this is what makes batching §4.1 exact).
    #[test]
    fn sweep_groups_partition_without_overlap(d in arb_domain()) {
        let sds = d.subdomains();
        let mut total = 0;
        for g in 0..4 {
            let group: Vec<Subdomain> =
                sds.iter().copied().filter(|sd| d.group_of(*sd) == g).collect();
            total += group.len();
            for i in 0..group.len() {
                for j in i + 1..group.len() {
                    let dx = group[i].ox.abs_diff(group[j].ox);
                    let dy = group[i].oy.abs_diff(group[j].oy);
                    prop_assert!(
                        dx >= d.sub.m - 1 || dy >= d.sub.m - 1,
                        "group {} members overlap", g
                    );
                }
            }
        }
        prop_assert_eq!(total, sds.len());
    }

    /// Center-cross writes cover exactly the interior lattice and nothing
    /// else — the MFP's state is closed under one sweep.
    #[test]
    fn cross_writes_cover_interior_lattice_exactly(d in arb_domain()) {
        let cross = d.center_cross_offsets();
        let mut written = std::collections::HashSet::new();
        for sd in d.subdomains() {
            for &(j, i) in &cross {
                written.insert((sd.oy + j, sd.ox + i));
            }
        }
        for j in 1..d.ny() - 1 {
            for i in 1..d.nx() - 1 {
                if d.on_lattice(j, i) {
                    prop_assert!(written.contains(&(j, i)), "({j},{i}) never written");
                }
            }
        }
        for &(j, i) in &written {
            prop_assert!(d.on_lattice(j, i));
            prop_assert!(j >= 1 && j < d.ny() - 1 && i >= 1 && i < d.nx() - 1);
        }
    }

    /// Atomic subdomains tile the grid: interiors are disjoint and their
    /// union plus the lattice covers everything.
    #[test]
    fn atomic_interiors_are_disjoint_and_cover(d in arb_domain()) {
        let interior = d.interior_offsets();
        let mut seen = std::collections::HashSet::new();
        for sd in d.atomic_subdomains() {
            for &(j, i) in &interior {
                prop_assert!(
                    seen.insert((sd.oy + j, sd.ox + i)),
                    "atomic interiors overlap at ({}, {})", sd.oy + j, sd.ox + i
                );
            }
        }
        // Every non-lattice point is some atomic interior point.
        for j in 0..d.ny() {
            for i in 0..d.nx() {
                if !d.on_lattice(j, i) {
                    prop_assert!(seen.contains(&(j, i)), "({j},{i}) uncovered");
                }
            }
        }
    }

    /// Window boundary reads and field reads have the expected lengths.
    #[test]
    fn window_read_shapes(d in arb_domain()) {
        let grid = mf_tensor::Tensor::zeros(d.ny(), d.nx());
        let sd = d.subdomains()[0];
        prop_assert_eq!(d.read_window_boundary(&grid, sd).numel(), 4 * (d.sub.m - 1));
        prop_assert_eq!(d.read_window_field(&grid, sd).numel(), d.sub.m * d.sub.m);
    }

    /// The coarse initializer touches only lattice points and preserves
    /// the boundary ring.
    #[test]
    fn coarse_init_preserves_boundary_and_non_lattice(d in arb_domain()) {
        use mf_numerics::boundary::{apply_boundary, boundary_from_fn};
        let bc = boundary_from_fn(d.ny(), d.nx(), |t| (2.0 * std::f64::consts::PI * t).sin());
        let mut grid = mf_tensor::Tensor::zeros(d.ny(), d.nx());
        apply_boundary(&mut grid, &bc);
        let before = grid.clone();
        d.coarse_initialize(&mut grid);
        for j in 0..d.ny() {
            for i in 0..d.nx() {
                let edge = j == 0 || i == 0 || j == d.ny() - 1 || i == d.nx() - 1;
                if edge {
                    prop_assert_eq!(grid.get(j, i), before.get(j, i), "boundary modified");
                } else if !d.on_lattice(j, i) {
                    prop_assert_eq!(grid.get(j, i), 0.0, "non-lattice point written");
                }
            }
        }
    }
}
