#![warn(missing_docs)]

//! The Mosaic Flow predictor (MFP): solving boundary value problems on
//! large domains purely by inference over a pre-trained subdomain solver.
//!
//! The domain is covered by **overlapping subdomains** placed on a lattice
//! with spacing of half a subdomain (the paper's `½m` interval, Fig. 2).
//! The solution lives only on the lattice lines; each iteration feeds every
//! subdomain's boundary (read from the lattice) to the subdomain solver and
//! writes back the predicted **center cross**, which is a boundary line of
//! the neighboring subdomains — an alternating-Schwarz sweep that touches a
//! small fraction of the grid points. A final dense pass fills the atomic
//! (non-overlapping) subdomains.
//!
//! Three execution modes reproduce the paper's §4/§5:
//!
//! * [`Mfp`] *unbatched* — one subdomain inference at a time (the original
//!   Mosaic Flow baseline),
//! * [`Mfp`] *batched* — the non-overlapping subdomains of each sweep
//!   group are solved in one batched inference (§4.1),
//! * [`run_distributed`] — Algorithm 2: the domain is split over a 2-D
//!   processor grid; each rank sweeps its own subdomains with immediate
//!   local updates and exchanges halo lattice values with ≤8 neighbors
//!   **once per iteration** (relaxed synchronization).
//!
//! The [`SubdomainSolver`] trait abstracts the subdomain solver: a trained
//! [`NeuralSolver`] (SDNet) or the numerical [`OracleSolver`] (multigrid),
//! which isolates the convergence behaviour of the distributed algorithm
//! from neural-model error.

mod dist;
mod domain;
#[cfg(test)]
mod lattice_proptests;
mod plan;
mod seq;
mod solver;

pub use dist::{
    run_distributed, run_distributed_shifted, try_run_distributed, try_run_distributed_shifted,
    DistMfpConfig, DistMfpResult, RankReport,
};
pub use domain::{DomainSpec, Subdomain};
pub use plan::PlanSolver;
pub use seq::{MaeTarget, Mfp, MfpConfig, MfpResult};
pub use solver::{NeuralSolver, OracleSolver, SubdomainSolver};
