//! [`PlanSolver`]: the compiled-plan subdomain solver.
//!
//! Wraps `mf-infer`'s [`InferencePlan`] behind the [`SubdomainSolver`]
//! trait so the sequential and distributed MFP paths run graph-free. The
//! MFP evaluates the network on a tiny number of distinct query-point sets
//! (the center cross during sweeps, the subdomain interior during the
//! dense fill), so the solver keeps one compiled plan per point set and
//! revalidates it against the network's parameter version on every launch
//! — an optimizer step anywhere in the process automatically invalidates
//! every cached plan.

use crate::solver::SubdomainSolver;
use mf_data::SubdomainSpec;
use mf_infer::{InferencePlan, Workspace};
use mf_nn::SdNet;
use mf_tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: exact bit pattern of a query-point tensor. The MFP reuses
/// the same few point sets thousands of times, so equality-by-bits with a
/// linear scan beats any hashing scheme here.
#[derive(PartialEq, Eq)]
struct PointsKey {
    rows: usize,
    bits: Vec<u64>,
}

impl PointsKey {
    fn of(points: &Tensor) -> Self {
        Self {
            rows: points.rows(),
            bits: points.as_slice().iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// Allocation-free equality against a points tensor, for the
    /// per-launch cache probe.
    fn matches(&self, points: &Tensor) -> bool {
        self.rows == points.rows()
            && self.bits.len() == points.numel()
            && self
                .bits
                .iter()
                .zip(points.as_slice())
                .all(|(b, v)| *b == v.to_bits())
    }
}

/// SDNet-backed subdomain solver on the graph-free compiled path.
///
/// Results are bitwise identical to [`NeuralSolver`](crate::NeuralSolver)
/// (asserted by the `seq` equality tests); the difference is purely cost:
/// no autodiff tape, pooled workspaces, and the query-coordinate half of
/// the input-split layer computed once per (point set, weight version)
/// instead of once per launch.
pub struct PlanSolver {
    net: SdNet,
    spec: SubdomainSpec,
    plans: Mutex<Vec<(PointsKey, Arc<InferencePlan>)>>,
    workspaces: Mutex<Vec<Workspace>>,
    count: AtomicUsize,
    launches: AtomicUsize,
    cache_hits: AtomicUsize,
}

impl PlanSolver {
    /// Wrap a trained network. Panics if the network's boundary length
    /// does not match the subdomain geometry or the network uses the
    /// `Concat` embedding (which stays on the graph path — check
    /// [`InferencePlan::supports`] before constructing).
    pub fn new(net: SdNet, spec: SubdomainSpec) -> Self {
        assert_eq!(
            net.config().boundary_len,
            spec.boundary_len(),
            "PlanSolver: network boundary length does not match subdomain"
        );
        assert!(
            InferencePlan::supports(&net),
            "PlanSolver: network embedding cannot be lowered to a plan"
        );
        Self {
            net,
            spec,
            plans: Mutex::new(Vec::new()),
            workspaces: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
            launches: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
        }
    }

    /// Access the wrapped network.
    pub fn net(&self) -> &SdNet {
        &self.net
    }

    /// Mutable access to the wrapped network, e.g. for applying an
    /// optimizer step between solves. Any mutable parameter access bumps
    /// the store's version counter, so cached plans recompile on the next
    /// launch — no explicit invalidation call needed.
    pub fn net_mut(&mut self) -> &mut SdNet {
        &mut self.net
    }

    /// Launches served by an already-compiled, still-fresh plan.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// The compiled plan for `points`, rebuilt when absent or stale.
    fn plan_for(&self, points: &Tensor) -> Arc<InferencePlan> {
        static CACHE_HITS: std::sync::OnceLock<mf_telemetry::Counter> = std::sync::OnceLock::new();
        let version = self.net.params.version();
        let mut plans = self.plans.lock().unwrap();
        if let Some((_, plan)) = plans.iter().find(|(k, _)| k.matches(points)) {
            if plan.params_version() == version {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS
                    .get_or_init(|| mf_telemetry::counter("infer.plan_cache_hits"))
                    .incr();
                return Arc::clone(plan);
            }
        }
        let plan = Arc::new(InferencePlan::compile(&self.net, points));
        match plans.iter_mut().find(|(k, _)| k.matches(points)) {
            Some(entry) => entry.1 = Arc::clone(&plan),
            None => plans.push((PointsKey::of(points), Arc::clone(&plan))),
        }
        plan
    }
}

impl SubdomainSolver for PlanSolver {
    fn spec(&self) -> SubdomainSpec {
        self.spec
    }

    fn solve_batch(&self, boundaries: &Tensor, points: &Tensor) -> Tensor {
        let b = boundaries.rows();
        let q = points.rows();
        let plan = self.plan_for(points);
        // Check a workspace out of the shared set so concurrent sweep
        // groups never contend on one buffer pool.
        let mut ws = self.workspaces.lock().unwrap().pop().unwrap_or_default();
        let mut out = Tensor::zeros(b * q, 1);
        plan.execute_into(&mut ws, boundaries, &mut out);
        self.workspaces.lock().unwrap().push(ws);
        self.count.fetch_add(b * q, Ordering::Relaxed);
        self.launches.fetch_add(1, Ordering::Relaxed);
        out
    }

    fn inference_count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn launch_count(&self) -> usize {
        self.launches.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeuralSolver;
    use mf_nn::SdNetConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn spec() -> SubdomainSpec {
        SubdomainSpec { m: 9, spatial: 0.5 }
    }

    fn net(seed: u64) -> SdNet {
        let mut cfg = SdNetConfig::small(spec().boundary_len());
        cfg.conv_channels = vec![2];
        cfg.hidden = vec![10, 10];
        cfg.coord_fourier = 3;
        SdNet::new(cfg, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    #[test]
    fn matches_neural_solver_bitwise() {
        let spec = spec();
        let n = net(0);
        let plan = PlanSolver::new(n.clone(), spec);
        let graph = NeuralSolver::new(n, spec);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = Tensor::from_fn(5, spec.boundary_len(), |_, _| rng.gen_range(-1.0..1.0));
        let pts = Tensor::from_fn(4, 2, |_, _| rng.gen_range(0.0..0.5));
        for _ in 0..3 {
            let a = plan.solve_batch(&b, &pts);
            let e = graph.solve_batch(&b, &pts);
            for (x, y) in e.as_slice().iter().zip(a.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(plan.inference_count(), 3 * 5 * 4);
        assert_eq!(plan.launch_count(), 3);
        // First launch compiles, the rest hit the cache.
        assert_eq!(plan.cache_hits(), 2);
    }

    #[test]
    fn weight_update_invalidates_cached_plans() {
        let spec = spec();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let b = Tensor::from_fn(2, spec.boundary_len(), |_, _| rng.gen_range(-1.0..1.0));
        let pts = Tensor::from_fn(3, 2, |_, _| rng.gen_range(0.0..0.5));

        let mut solver = PlanSolver::new(net(2), spec);
        let before = solver.solve_batch(&b, &pts);
        let hits_before = solver.cache_hits();

        // An in-place optimizer-style step bumps the params version...
        for t in solver.net_mut().params.tensors_mut() {
            t.as_mut_slice().iter_mut().for_each(|v| *v += 0.1);
        }
        // ...so the next launch recompiles instead of serving stale bits.
        let after = solver.solve_batch(&b, &pts);
        assert_eq!(solver.cache_hits(), hits_before);
        assert!(before.max_abs_diff(&after) > 0.0);
        let expect = NeuralSolver::new(solver.net().clone(), spec).solve_batch(&b, &pts);
        for (x, y) in expect.as_slice().iter().zip(after.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // And once recompiled, the fresh plan is cached again.
        let _ = solver.solve_batch(&b, &pts);
        assert_eq!(solver.cache_hits(), hits_before + 1);
    }

    #[test]
    fn distinct_point_sets_get_distinct_plans() {
        let spec = spec();
        let solver = PlanSolver::new(net(4), spec);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let b = Tensor::from_fn(1, spec.boundary_len(), |_, _| rng.gen_range(-1.0..1.0));
        let p1 = Tensor::from_fn(3, 2, |_, _| rng.gen_range(0.0..0.5));
        let p2 = Tensor::from_fn(6, 2, |_, _| rng.gen_range(0.0..0.5));
        let _ = solver.solve_batch(&b, &p1);
        let _ = solver.solve_batch(&b, &p2);
        let _ = solver.solve_batch(&b, &p1);
        let _ = solver.solve_batch(&b, &p2);
        // Two compiles, then every launch is a hit.
        assert_eq!(solver.cache_hits(), 2);
    }
}
