//! Sample generation: GP boundaries solved with multigrid.

use mf_gp::BoundarySampler;
use mf_numerics::boundary::grid_with_boundary;
use mf_numerics::{solve_dirichlet, Poisson};
use mf_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Geometry of the training subdomain.
///
/// The paper trains on a `0.5×0.5` spatial domain at `32×32` resolution;
/// the defaults here use an odd point count so the multigrid ground-truth
/// solver can coarsen (`m = 2^k + 1`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubdomainSpec {
    /// Grid points per side.
    pub m: usize,
    /// Physical edge length.
    pub spatial: f64,
}

impl SubdomainSpec {
    /// Paper-like default: 0.5×0.5 subdomain, 17 points per side
    /// (laptop-scale stand-in for the paper's 32).
    pub fn default_small() -> Self {
        Self {
            m: 17,
            spatial: 0.5,
        }
    }

    /// Grid spacing.
    pub fn h(&self) -> f64 {
        self.spatial / (self.m - 1) as f64
    }

    /// Length of the boundary walk, `4(m−1)`.
    pub fn boundary_len(&self) -> usize {
        4 * (self.m - 1)
    }

    /// Local coordinates `(x, y)` of grid point `(row j, col i)`.
    pub fn coords(&self, j: usize, i: usize) -> (f64, f64) {
        (i as f64 * self.h(), j as f64 * self.h())
    }
}

/// One solved boundary value problem.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Discretized boundary condition, `1×4(m−1)` (counter-clockwise walk).
    pub boundary: Tensor,
    /// Numerical solution on the full `m×m` grid.
    pub solution: Tensor,
}

/// A set of solved BVPs on a fixed subdomain geometry.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Subdomain geometry shared by all samples.
    pub spec: SubdomainSpec,
    /// Solved samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Generate `count` samples: GP boundary curves (Sobol-swept
    /// hyperparameters, periodic kernel) solved to `1e-9` residual with
    /// multigrid/SOR. Deterministic in `seed`.
    pub fn generate(spec: SubdomainSpec, count: usize, seed: u64) -> Self {
        Self::generate_with(spec, count, seed, (0.3, 0.9), (0.4, 1.2))
    }

    /// [`Dataset::generate`] with explicit GP hyperparameter ranges
    /// (length scale and signal variance of the periodic kernel). Shorter
    /// length scales produce rougher boundary curves and a harder
    /// learning problem.
    pub fn generate_with(
        spec: SubdomainSpec,
        count: usize,
        seed: u64,
        lengthscale_range: (f64, f64),
        variance_range: (f64, f64),
    ) -> Self {
        let mut sampler =
            BoundarySampler::new(spec.boundary_len(), lengthscale_range, variance_range, true);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Draw boundaries sequentially (the Sobol sweep is stateful), then
        // solve in parallel.
        let boundaries: Vec<Tensor> = (0..count).map(|_| sampler.sample(&mut rng)).collect();
        let samples: Vec<Sample> = boundaries
            .into_par_iter()
            .map(|boundary| {
                let guess = grid_with_boundary(spec.m, spec.m, &boundary);
                let problem = Poisson::laplace(spec.m, spec.m, spec.h());
                let (solution, stats) = solve_dirichlet(&problem, &guess, 1e-9);
                assert!(
                    stats.converged,
                    "ground-truth solve failed to converge: {stats:?}"
                );
                Sample { boundary, solution }
            })
            .collect();
        Self { spec, samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Split into train/validation by fraction (train gets the first
    /// `frac` of samples; generation order is already Sobol-shuffled in
    /// hyperparameter space).
    pub fn split(self, train_frac: f64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_frac),
            "train_frac must be in [0,1]"
        );
        let n_train = (self.samples.len() as f64 * train_frac).round() as usize;
        let mut train = self.samples;
        let val = train.split_off(n_train.min(train.len()));
        (
            Dataset {
                spec: self.spec,
                samples: train,
            },
            Dataset {
                spec: self.spec,
                samples: val,
            },
        )
    }

    /// The shard of this dataset owned by `rank` out of `world` (strided,
    /// like PyTorch's DistributedSampler).
    pub fn shard(&self, rank: usize, world: usize) -> Dataset {
        assert!(rank < world, "shard: rank {rank} out of {world}");
        Dataset {
            spec: self.spec,
            samples: self
                .samples
                .iter()
                .skip(rank)
                .step_by(world)
                .cloned()
                .collect(),
        }
    }
}

/// Stack all boundary rows of a dataset into a `[len × 4(m−1)]` matrix.
pub(crate) fn stack_boundaries(ds: &Dataset, idx: &[usize]) -> Tensor {
    let rows: Vec<Tensor> = idx
        .iter()
        .map(|&i| ds.samples[i].boundary.clone())
        .collect();
    Tensor::vstack(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_numerics::boundary::extract_boundary;
    use mf_numerics::residual_norm;

    #[test]
    fn spec_geometry() {
        let s = SubdomainSpec {
            m: 17,
            spatial: 0.5,
        };
        assert!((s.h() - 0.03125).abs() < 1e-15);
        assert_eq!(s.boundary_len(), 64);
        assert_eq!(s.coords(0, 16), (0.5, 0.0));
        assert_eq!(s.coords(16, 0), (0.0, 0.5));
    }

    #[test]
    fn generated_samples_solve_the_laplace_equation() {
        let spec = SubdomainSpec::default_small();
        let ds = Dataset::generate(spec, 3, 42);
        assert_eq!(ds.len(), 3);
        for s in &ds.samples {
            let p = Poisson::laplace(spec.m, spec.m, spec.h());
            assert!(
                residual_norm(&p, &s.solution) < 1e-6,
                "sample residual too large"
            );
            // Solution ring must match the boundary vector.
            let b = extract_boundary(&s.solution);
            assert!(b.allclose(&s.boundary, 1e-12));
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let a = Dataset::generate(spec, 2, 7);
        let b = Dataset::generate(spec, 2, 7);
        assert!(a.samples[1].boundary.allclose(&b.samples[1].boundary, 0.0));
        let c = Dataset::generate(spec, 2, 8);
        assert!(a.samples[0].boundary.max_abs_diff(&c.samples[0].boundary) > 1e-6);
    }

    #[test]
    fn split_partitions_samples() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 10, 1);
        let (train, val) = ds.split(0.9);
        assert_eq!(train.len(), 9);
        assert_eq!(val.len(), 1);
    }

    #[test]
    fn shards_are_disjoint_and_cover() {
        let spec = SubdomainSpec { m: 9, spatial: 0.5 };
        let ds = Dataset::generate(spec, 7, 2);
        let world = 3;
        let mut total = 0;
        for rank in 0..world {
            total += ds.shard(rank, world).len();
        }
        assert_eq!(total, 7);
        // Strided: rank 0 gets samples 0, 3, 6.
        let s0 = ds.shard(0, world);
        assert!(s0.samples[1]
            .boundary
            .allclose(&ds.samples[3].boundary, 0.0));
    }
}
