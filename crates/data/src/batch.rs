//! Mini-batch assembly for physics-informed training.

use crate::dataset::{stack_boundaries, Dataset};
use mf_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One training batch.
///
/// Coordinates are grouped per boundary: rows `[b·q, (b+1)·q)` of the point
/// tensors belong to boundary `b`, matching
/// [`SdNet::forward`](../../mf_nn/struct.SdNet.html#method.forward).
#[derive(Clone, Debug)]
pub struct Batch {
    /// `[B, 4(m−1)]` boundary conditions.
    pub boundaries: Tensor,
    /// `[B·qd, 2]` coordinates of points with known solutions.
    pub data_points: Tensor,
    /// `[B·qd, 1]` ground-truth values at `data_points`.
    pub data_values: Tensor,
    /// `[B·qc, 2]` collocation coordinates (PDE residual only).
    pub colloc_points: Tensor,
    /// Data points per boundary.
    pub qd: usize,
    /// Collocation points per boundary.
    pub qc: usize,
}

impl Batch {
    /// Number of boundary conditions in the batch.
    pub fn batch_size(&self) -> usize {
        self.boundaries.rows()
    }
}

/// Draws shuffled epochs of batches from a dataset.
///
/// `qd` data points per sample are drawn from the solved grid (interior
/// and ring alike — both have known values); `qc` collocation points are
/// uniform in the open subdomain.
pub struct BatchSampler {
    batch_size: usize,
    qd: usize,
    qc: usize,
    rng: ChaCha8Rng,
}

/// A serializable snapshot of a [`BatchSampler`] — configuration plus the
/// exact ChaCha8 RNG state, so a restored sampler reproduces the original
/// shuffle/point stream bitwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplerState {
    /// Boundary conditions per batch.
    pub batch_size: usize,
    /// Data points per boundary.
    pub qd: usize,
    /// Collocation points per boundary.
    pub qc: usize,
    /// Raw ChaCha8 RNG state words (seed block + counter).
    pub rng_words: Vec<u32>,
}

impl BatchSampler {
    /// New sampler. `batch_size` is the number of *boundary conditions*
    /// per batch (the paper's "#domains"); total points per batch is
    /// `batch_size · (qd + qc)`.
    pub fn new(batch_size: usize, qd: usize, qc: usize, seed: u64) -> Self {
        assert!(
            batch_size > 0 && qd > 0 && qc > 0,
            "BatchSampler: sizes must be positive"
        );
        Self {
            batch_size,
            qd,
            qc,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Snapshot the sampler (configuration + exact RNG position) for
    /// checkpointing.
    pub fn state(&self) -> SamplerState {
        SamplerState {
            batch_size: self.batch_size,
            qd: self.qd,
            qc: self.qc,
            rng_words: self.rng.state_words(),
        }
    }

    /// Rebuild a sampler from a [`SamplerState`] snapshot; the returned
    /// sampler continues the random stream exactly where the snapshot was
    /// taken.
    ///
    /// Panics if the RNG words are malformed (wrong length).
    pub fn restore(state: &SamplerState) -> Self {
        let rng = ChaCha8Rng::from_state_words(&state.rng_words)
            .expect("SamplerState: malformed RNG state words");
        Self {
            batch_size: state.batch_size,
            qd: state.qd,
            qc: state.qc,
            rng,
        }
    }

    /// One shuffled epoch over `ds` (last partial batch dropped, as in the
    /// paper's DDP training where shards stay equally sized).
    pub fn epoch(&mut self, ds: &Dataset) -> Vec<Batch> {
        let mut idx: Vec<usize> = (0..ds.len()).collect();
        idx.shuffle(&mut self.rng);
        idx.chunks_exact(self.batch_size)
            .map(|chunk| self.make_batch(ds, chunk))
            .collect()
    }

    /// Assemble a batch from explicit sample indices.
    pub fn make_batch(&mut self, ds: &Dataset, idx: &[usize]) -> Batch {
        let spec = ds.spec;
        let boundaries = stack_boundaries(ds, idx);
        let mut dp = Vec::with_capacity(idx.len() * self.qd * 2);
        let mut dv = Vec::with_capacity(idx.len() * self.qd);
        let mut cp = Vec::with_capacity(idx.len() * self.qc * 2);
        for &si in idx {
            let sol = &ds.samples[si].solution;
            for _ in 0..self.qd {
                let j = self.rng.gen_range(0..spec.m);
                let i = self.rng.gen_range(0..spec.m);
                let (x, y) = spec.coords(j, i);
                dp.push(x);
                dp.push(y);
                dv.push(sol.get(j, i));
            }
            for _ in 0..self.qc {
                cp.push(self.rng.gen_range(0.0..spec.spatial));
                cp.push(self.rng.gen_range(0.0..spec.spatial));
            }
        }
        Batch {
            boundaries,
            data_points: Tensor::from_vec(idx.len() * self.qd, 2, dp),
            data_values: Tensor::from_vec(idx.len() * self.qd, 1, dv),
            colloc_points: Tensor::from_vec(idx.len() * self.qc, 2, cp),
            qd: self.qd,
            qc: self.qc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, SubdomainSpec};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(SubdomainSpec { m: 9, spatial: 0.5 }, 6, 3)
    }

    #[test]
    fn batch_shapes() {
        let ds = tiny_dataset();
        let mut bs = BatchSampler::new(2, 5, 7, 0);
        let b = bs.make_batch(&ds, &[0, 1]);
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.boundaries.shape(), (2, 32));
        assert_eq!(b.data_points.shape(), (10, 2));
        assert_eq!(b.data_values.shape(), (10, 1));
        assert_eq!(b.colloc_points.shape(), (14, 2));
    }

    #[test]
    fn data_values_match_the_grid() {
        let ds = tiny_dataset();
        let spec = ds.spec;
        let mut bs = BatchSampler::new(1, 20, 1, 1);
        let b = bs.make_batch(&ds, &[2]);
        for k in 0..20 {
            let x = b.data_points.get(k, 0);
            let y = b.data_points.get(k, 1);
            let i = (x / spec.h()).round() as usize;
            let j = (y / spec.h()).round() as usize;
            assert!((b.data_values.get(k, 0) - ds.samples[2].solution.get(j, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn collocation_points_stay_inside_the_subdomain() {
        let ds = tiny_dataset();
        let mut bs = BatchSampler::new(2, 2, 50, 2);
        let b = bs.make_batch(&ds, &[0, 3]);
        for k in 0..b.colloc_points.rows() {
            for c in 0..2 {
                let v = b.colloc_points.get(k, c);
                assert!((0.0..0.5).contains(&v), "coordinate {v} escaped");
            }
        }
    }

    #[test]
    fn epoch_covers_dataset_in_batches() {
        let ds = tiny_dataset();
        let mut bs = BatchSampler::new(2, 3, 3, 4);
        let batches = bs.epoch(&ds);
        assert_eq!(batches.len(), 3);
        for b in &batches {
            assert_eq!(b.batch_size(), 2);
        }
    }

    #[test]
    fn sampler_state_roundtrip_resumes_the_stream_bitwise() {
        let ds = tiny_dataset();
        let mut bs = BatchSampler::new(2, 3, 3, 9);
        let _ = bs.epoch(&ds); // advance mid-stream
        let snap = bs.state();
        let e_orig = bs.epoch(&ds);
        let mut restored = BatchSampler::restore(&snap);
        let e_rest = restored.epoch(&ds);
        assert_eq!(e_orig.len(), e_rest.len());
        for (a, b) in e_orig.iter().zip(&e_rest) {
            assert!(a.boundaries.allclose(&b.boundaries, 0.0));
            assert!(a.data_points.allclose(&b.data_points, 0.0));
            assert!(a.data_values.allclose(&b.data_values, 0.0));
            assert!(a.colloc_points.allclose(&b.colloc_points, 0.0));
        }
    }

    #[test]
    fn epochs_are_shuffled() {
        let ds = tiny_dataset();
        let mut bs = BatchSampler::new(2, 3, 3, 5);
        let e1 = bs.epoch(&ds);
        let e2 = bs.epoch(&ds);
        // With 6 samples the probability of identical shuffles is 1/720
        // per epoch pair; compare the first boundary rows.
        let same = e1[0].boundaries.allclose(&e2[0].boundaries, 0.0)
            && e1[1].boundaries.allclose(&e2[1].boundaries, 0.0);
        assert!(!same, "two epochs produced identical batch order");
    }
}
