#![warn(missing_docs)]

//! Dataset generation and batching for SDNet training (§5.1/§5.2).
//!
//! Pipeline, mirroring the paper: a Sobol sequence sweeps Gaussian-process
//! kernel hyperparameters → each GP yields one boundary curve → each
//! boundary value problem is solved with geometric multigrid (our pyAMG
//! substitute) → the (boundary, solution-grid) pairs form the dataset.
//!
//! Training consumes [`Batch`]es holding three tensors per step: the
//! boundary conditions, *data points* with known solutions (grid points of
//! the numerical solve) and *collocation points* (uniform random interior
//! coordinates where only the PDE residual is enforced).

mod batch;
mod dataset;

pub use batch::{Batch, BatchSampler, SamplerState};
pub use dataset::{Dataset, Sample, SubdomainSpec};
