//! Dependency-free metrics exposition over `std::net::TcpListener`.
//!
//! One acceptor thread, blocking per-connection handling (scrapes are
//! rare and tiny), non-blocking accept so shutdown is prompt. Routes:
//!
//! - `GET /metrics` — OpenMetrics text; every published rank registry
//!   merged (counters/buckets sum, gauges max) plus `<name>_rate`
//!   gauges derived from the time-series rings.
//! - `GET /snapshot` — JSON: per-rank metrics, the merged view, and the
//!   raw series windows.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running exposition server; dropping it stops the
/// acceptor thread and releases the port.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (`HOST:PORT`; port 0 picks a free port) and start
    /// serving scrapes on a background thread.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mf-metrics".into())
            .spawn(move || serve_loop(listener, stop2))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// Start from the `--metrics-addr` flag value or the
    /// `MF_METRICS_ADDR` environment variable, whichever is set (flag
    /// wins). Bind failures are reported on stderr rather than aborting
    /// the run: losing the solve over a busy scrape port is a bad trade.
    pub fn from_flag_or_env(flag: Option<&str>) -> Option<MetricsServer> {
        let addr = match flag {
            Some(a) => a.to_string(),
            None => std::env::var("MF_METRICS_ADDR").ok()?,
        };
        match MetricsServer::start(&addr) {
            Ok(s) => {
                eprintln!("serving metrics on http://{}/metrics", s.addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("warning: could not bind metrics server on {addr}: {e}");
                None
            }
        }
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Keep the server running until process exit: detach the acceptor
    /// thread instead of stopping it on drop.
    pub fn run_forever(mut self) {
        self.handle.take();
        std::mem::forget(self);
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_conn(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Read until the end of the request head (we ignore any body).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = route(method, path);
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            mf_telemetry::render_openmetrics(
                &mf_telemetry::merged_snapshot(),
                &mf_telemetry::merged_series(),
            ),
        ),
        "/snapshot" => (
            "200 OK",
            "application/json; charset=utf-8",
            mf_telemetry::render_snapshot_json(
                &mf_telemetry::per_rank_snapshots(),
                &mf_telemetry::merged_snapshot(),
                &mf_telemetry::merged_series(),
            ),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "see /metrics or /snapshot\n".into(),
        ),
    }
}

/// Issue one HTTP GET against `addr` and return `(status_line, body)`.
/// Test/bench helper so scrape round-trips can be exercised without an
/// external HTTP client.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: mf\r\nConnection: close\r\n\r\n"
    )?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let status = resp.lines().next().unwrap_or("").to_string();
    let body = match resp.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_snapshot_and_404() {
        // Put something observable in this thread's registry and publish
        // it so the scrape (a different thread) can see it.
        mf_telemetry::counter("profile.server.test_counter").add(3);
        crate::zone!("server_test");
        mf_telemetry::publish_thread();

        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "status: {status}");
        assert!(body.ends_with("# EOF\n"));
        assert!(body.contains("profile_server_test_counter_total 3"));
        assert!(body.contains("# TYPE prof_server_test_us histogram"));

        let (status, body) = http_get(addr, "/snapshot").unwrap();
        assert!(status.contains("200"), "status: {status}");
        let doc = mf_telemetry::JsonValue::parse(&body).expect("valid JSON");
        assert!(doc.get("merged").is_some());
        assert!(doc.get("ranks").and_then(|v| v.as_arr()).is_some());

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert!(status.contains("404"), "status: {status}");

        drop(server);
        // Port is released: a new server can bind the same address.
        let again = MetricsServer::start(&addr.to_string());
        assert!(again.is_ok(), "rebind after drop failed: {:?}", again.err());
    }
}
