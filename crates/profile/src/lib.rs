//! Continuous profiling for the mosaic-flow hot paths.
//!
//! Two pieces:
//!
//! 1. **Zones** ([`zone!`], [`Zone`]) — scoped, nestable RAII timers with
//!    per-kernel attribution. Each zone site hoists its metric handles
//!    into a `OnceLock` (one registry lock for the lifetime of the
//!    process, never per call) and feeds two always-on sinks in
//!    `mf-telemetry`: a log-bucketed latency histogram (`prof.<name>_us`,
//!    for tails) and a 100 ms time-series ring (for rates over time).
//!    Recording is thread-local and allocation-free once warm; a
//!    disabled zone costs one relaxed atomic load.
//! 2. **Exposition** ([`MetricsServer`]) — a dependency-free HTTP server
//!    on `std::net::TcpListener` serving `GET /metrics` (Prometheus/
//!    OpenMetrics text) and `GET /snapshot` (JSON), merging every
//!    published per-rank registry on scrape. Enabled with
//!    `--metrics-addr HOST:PORT` or `MF_METRICS_ADDR`.
//!
//! ```
//! mf_profile::zone!("doc_example");
//! // … work …
//! ```

mod server;

pub use server::{http_get, MetricsServer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn zone profiling on or off globally. On by default; the
/// `repro_profile` overhead bench measures the A/B difference.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether zones record. One relaxed atomic load — the entire cost of a
/// disabled [`zone!`] site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Apply the `MF_PROFILE` environment variable (`off`/`0`/`false`
/// disable zone recording; anything else leaves it on).
pub fn init_from_env() {
    if let Ok(v) = std::env::var("MF_PROFILE") {
        if matches!(v.as_str(), "off" | "0" | "false") {
            set_enabled(false);
        }
    }
}

/// A named profiling site: a latency histogram plus a time-series ring,
/// both resolved from the registry once. Create via [`zone!`], which
/// hoists the `Zone` into a per-site `OnceLock`.
pub struct Zone {
    hist: mf_telemetry::Histogram,
    series: mf_telemetry::Series,
}

impl Zone {
    /// Register the metric pair for `name` (a full metric name such as
    /// `"prof.gemm_us"`). The histogram uses the standard microsecond
    /// latency buckets.
    pub fn new(name: &'static str) -> Self {
        Self {
            hist: mf_telemetry::histogram(name, mf_telemetry::Buckets::latency_us()),
            series: mf_telemetry::series(name),
        }
    }

    /// Begin timing; the returned guard records elapsed microseconds
    /// into both sinks on drop. Returns `None` (and does nothing) when
    /// profiling is disabled.
    #[inline]
    pub fn enter(&self) -> Option<ZoneGuard<'_>> {
        if !enabled() {
            return None;
        }
        Some(ZoneGuard {
            zone: self,
            start: Instant::now(),
        })
    }
}

/// RAII guard for an active [`Zone`]; see [`Zone::enter`].
pub struct ZoneGuard<'a> {
    zone: &'a Zone,
    start: Instant,
}

impl Drop for ZoneGuard<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_secs_f64() * 1e6;
        self.zone.hist.record(us);
        self.zone.series.record(us);
    }
}

/// Time the enclosing scope under `prof.<name>_us`. The site's handles
/// are registered on first execution and cached in a `OnceLock`; zones
/// nest naturally (inner guards drop first).
///
/// ```
/// fn kernel() {
///     mf_profile::zone!("gemm");
///     // … the rest of the scope is attributed to prof.gemm_us …
/// }
/// ```
#[macro_export]
macro_rules! zone {
    ($name:literal) => {
        let _mf_profile_zone_guard = {
            static ZONE: ::std::sync::OnceLock<$crate::Zone> = ::std::sync::OnceLock::new();
            ZONE.get_or_init(|| $crate::Zone::new(concat!("prof.", $name, "_us")))
                .enter()
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_telemetry::MetricValue;

    fn hist_count(name: &str) -> u64 {
        match mf_telemetry::snapshot().get(name) {
            Some(MetricValue::Histogram(h)) => h.count,
            _ => 0,
        }
    }

    #[test]
    fn zones_record_into_histogram_and_ring() {
        let before = hist_count("prof.test_zone_us");
        {
            zone!("test_zone");
            std::hint::black_box(1 + 1);
        }
        assert_eq!(hist_count("prof.test_zone_us"), before + 1);
        let rings = mf_telemetry::series_snapshot();
        let ring = rings
            .iter()
            .find(|s| s.name == "prof.test_zone_us")
            .expect("ring registered");
        assert!(ring.windows.iter().map(|w| w.count).sum::<u64>() >= 1);
    }

    #[test]
    fn zones_nest() {
        let outer0 = hist_count("prof.test_outer_us");
        let inner0 = hist_count("prof.test_inner_us");
        {
            zone!("test_outer");
            {
                zone!("test_inner");
            }
            {
                zone!("test_inner");
            }
        }
        assert_eq!(hist_count("prof.test_outer_us"), outer0 + 1);
        assert_eq!(hist_count("prof.test_inner_us"), inner0 + 2);
    }

    #[test]
    fn disabled_zones_record_nothing() {
        let before = hist_count("prof.test_disabled_us");
        set_enabled(false);
        {
            zone!("test_disabled");
        }
        set_enabled(true);
        assert_eq!(hist_count("prof.test_disabled_us"), before);
    }
}
