//! Learning-rate schedules and the paper's multi-device scaling rules.

/// Post-warmup decay shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decay {
    /// Hold the max learning rate.
    Constant,
    /// Polynomial decay to zero: `lr = max_lr · (1 − progress)^power`.
    /// The paper uses `power = 1` (linear).
    Polynomial {
        /// Decay exponent.
        power: f64,
    },
}

/// Linear warmup into a decay, as tuned in §5.2 of the paper.
#[derive(Clone, Copy, Debug)]
pub struct LrSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub max_lr: f64,
    /// Fraction of total steps spent warming up (0.001 in the paper).
    pub warmup_frac: f64,
    /// Total number of optimizer steps.
    pub total_steps: usize,
    /// Decay shape after warmup.
    pub decay: Decay,
}

impl LrSchedule {
    /// The paper's single-device recipe: max LR 1e-3, 0.1 % warmup,
    /// polynomial decay with exponent one.
    pub fn paper_default(total_steps: usize) -> Self {
        Self {
            max_lr: 1e-3,
            warmup_frac: 0.001,
            total_steps,
            decay: Decay::Polynomial { power: 1.0 },
        }
    }

    /// Scale the schedule for data-parallel training on `devices` devices
    /// (batch grows `devices×`): max LR × √devices, warmup fraction ×
    /// devices (§5.2: "(a) scale the maximum learning rate by the square
    /// root of the increase in batch size; (b) scale the warmup fraction
    /// linearly").
    pub fn scaled_for_devices(&self, devices: usize) -> Self {
        assert!(devices >= 1, "device count must be positive");
        Self {
            max_lr: self.max_lr * (devices as f64).sqrt(),
            warmup_frac: (self.warmup_frac * devices as f64).min(1.0),
            total_steps: self.total_steps,
            decay: self.decay,
        }
    }

    /// Number of warmup steps (at least one when warmup_frac > 0).
    pub fn warmup_steps(&self) -> usize {
        if self.warmup_frac == 0.0 {
            0
        } else {
            ((self.total_steps as f64 * self.warmup_frac).ceil() as usize).max(1)
        }
    }

    /// Learning rate at a zero-based step index.
    pub fn lr_at(&self, step: usize) -> f64 {
        let warmup = self.warmup_steps();
        if step < warmup {
            // Linear ramp from max_lr/warmup to max_lr.
            return self.max_lr * (step + 1) as f64 / warmup as f64;
        }
        match self.decay {
            Decay::Constant => self.max_lr,
            Decay::Polynomial { power } => {
                let total = self.total_steps.max(warmup + 1);
                let progress = (step - warmup) as f64 / (total - warmup) as f64;
                self.max_lr * (1.0 - progress.min(1.0)).powf(power)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_to_max() {
        let s = LrSchedule {
            max_lr: 1.0,
            warmup_frac: 0.1,
            total_steps: 100,
            decay: Decay::Constant,
        };
        assert_eq!(s.warmup_steps(), 10);
        assert!(s.lr_at(0) > 0.0);
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-12);
        assert_eq!(s.lr_at(50), 1.0);
    }

    #[test]
    fn polynomial_decays_to_zero() {
        let s = LrSchedule::paper_default(1000);
        let end = s.lr_at(999);
        assert!(end < s.max_lr * 0.01, "end lr {end}");
        // Monotone decrease after warmup.
        let w = s.warmup_steps();
        assert!(s.lr_at(w) >= s.lr_at(w + 100));
        assert!(s.lr_at(w + 100) >= s.lr_at(w + 500));
    }

    #[test]
    fn linear_decay_is_halfway_at_midpoint() {
        let s = LrSchedule {
            max_lr: 2.0,
            warmup_frac: 0.0,
            total_steps: 100,
            decay: Decay::Polynomial { power: 1.0 },
        };
        assert!((s.lr_at(50) - 1.0).abs() < 0.05);
    }

    #[test]
    fn device_scaling_follows_paper_rules() {
        let s = LrSchedule::paper_default(1000);
        let s4 = s.scaled_for_devices(4);
        assert!((s4.max_lr - s.max_lr * 2.0).abs() < 1e-15);
        assert!((s4.warmup_frac - s.warmup_frac * 4.0).abs() < 1e-15);
        // Identity for one device.
        let s1 = s.scaled_for_devices(1);
        assert_eq!(s1.max_lr, s.max_lr);
    }

    #[test]
    fn warmup_fraction_is_capped_at_one() {
        let s = LrSchedule {
            max_lr: 1.0,
            warmup_frac: 0.2,
            total_steps: 10,
            decay: Decay::Constant,
        };
        let huge = s.scaled_for_devices(100);
        assert_eq!(huge.warmup_frac, 1.0);
    }

    #[test]
    fn zero_warmup_starts_at_max() {
        let s = LrSchedule {
            max_lr: 0.5,
            warmup_frac: 0.0,
            total_steps: 10,
            decay: Decay::Constant,
        };
        assert_eq!(s.lr_at(0), 0.5);
    }
}
