#![warn(missing_docs)]

//! Optimizers and learning-rate schedules for SDNet training.
//!
//! The paper tunes a single-GPU recipe (AdamW-style, max LR 1e-3, linear
//! warmup + polynomial decay) and switches to **LAMB** for large-batch
//! multi-GPU training, scaling the max LR by the square root of the batch
//! growth and the warmup fraction linearly (§5.2). This crate implements:
//!
//! * [`Sgd`] (with momentum), [`Adam`], [`AdamW`] (decoupled weight decay),
//!   and [`Lamb`] (layerwise trust-ratio adaptation, You et al.),
//! * [`LrSchedule`] — linear warmup into polynomial (or constant) decay,
//!   plus the paper's batch-size scaling rules
//!   ([`LrSchedule::scaled_for_devices`]).
//!
//! All optimizers implement [`Optimizer`] and update a parameter list in
//! place given a gradient list of the same structure.

mod optim;
mod schedule;

pub use optim::{clip_grad_norm, Adam, AdamW, Lamb, Optimizer, OptimizerState, Sgd};
pub use schedule::{Decay, LrSchedule};
