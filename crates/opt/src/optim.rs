//! First-order optimizers.

use mf_tensor::Tensor;

/// A stateful first-order optimizer.
///
/// `step` consumes one gradient per parameter tensor (same order and
/// shapes) and updates the parameters in place with the given learning
/// rate. The schedule is kept outside the optimizer so the distributed
/// trainer can apply the paper's batch-size scaling rules.
pub trait Optimizer {
    /// Apply one update.
    fn step<'a>(&mut self, params: impl Iterator<Item = &'a mut Tensor>, grads: &[Tensor], lr: f64);

    /// Number of updates applied so far.
    fn steps(&self) -> usize;

    /// Snapshot the full optimizer state for checkpointing. Importing the
    /// snapshot into a freshly constructed optimizer of the same kind
    /// resumes the update sequence bitwise-identically.
    fn export_state(&self) -> OptimizerState;

    /// Restore a snapshot taken by [`Optimizer::export_state`].
    ///
    /// Panics if `state.kind` does not match this optimizer.
    fn import_state(&mut self, state: &OptimizerState);
}

/// A serializable snapshot of an optimizer: its kind tag, step counter,
/// hyperparameter scalars, and per-parameter state tensors (momentum /
/// moment buffers). The layout of `scalars` and `tensors` is private to
/// each optimizer kind; treat the struct as an opaque blob keyed by
/// `kind`.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizerState {
    /// Optimizer kind tag: `"sgd"`, `"adam"`, `"adamw"`, or `"lamb"`.
    pub kind: String,
    /// Updates applied so far (drives Adam-family bias correction).
    pub t: usize,
    /// Hyperparameter scalars, kind-specific order.
    pub scalars: Vec<f64>,
    /// Per-parameter state tensors, kind-specific order.
    pub tensors: Vec<Tensor>,
}

impl OptimizerState {
    fn expect_kind(&self, kind: &str) {
        assert_eq!(
            self.kind, kind,
            "optimizer state kind mismatch: snapshot is '{}', optimizer is '{kind}'",
            self.kind
        );
    }
}

/// Split an interleaved `[m0, v0, m1, v1, …]` tensor list back into
/// `Moments`.
fn moments_from_interleaved(tensors: &[Tensor]) -> Moments {
    assert!(
        tensors.len().is_multiple_of(2),
        "optimizer state: moment tensor count {} is odd",
        tensors.len()
    );
    let mut m = Vec::with_capacity(tensors.len() / 2);
    let mut v = Vec::with_capacity(tensors.len() / 2);
    for pair in tensors.chunks_exact(2) {
        m.push(pair[0].clone());
        v.push(pair[1].clone());
    }
    Moments { m, v }
}

fn moments_to_interleaved(moments: &Moments) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(moments.m.len() * 2);
    for (m, v) in moments.m.iter().zip(&moments.v) {
        out.push(m.clone());
        out.push(v.clone());
    }
    out
}

/// Scale all gradients in place so their joint L2 norm is at most
/// `max_norm`; returns the pre-clip norm. Gradient clipping is the
/// standard guard against the loss spikes of physics-informed training
/// (the PDE term can produce very large residual gradients early on).
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
    let total: f64 = grads
        .iter()
        .map(|g| g.norm_l2().powi(2))
        .sum::<f64>()
        .sqrt();
    if total > max_norm {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            g.map_in_place(|v| v * scale);
        }
    }
    total
}

fn check_shapes(param: &Tensor, grad: &Tensor, idx: usize) {
    assert_eq!(
        param.shape(),
        grad.shape(),
        "optimizer: parameter {idx} shape {:?} does not match gradient {:?}",
        param.shape(),
        grad.shape()
    );
}

/// Stochastic gradient descent with classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    momentum: f64,
    velocity: Vec<Tensor>,
    t: usize,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`) or heavy-ball SGD.
    pub fn new(momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            momentum,
            velocity: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Sgd {
    fn step<'a>(
        &mut self,
        params: impl Iterator<Item = &'a mut Tensor>,
        grads: &[Tensor],
        lr: f64,
    ) {
        self.t += 1;
        for (i, (p, g)) in params.zip(grads).enumerate() {
            check_shapes(p, g, i);
            if self.momentum == 0.0 {
                p.axpy(-lr, g);
            } else {
                if self.velocity.len() <= i {
                    self.velocity.push(Tensor::zeros(g.rows(), g.cols()));
                }
                let v = &mut self.velocity[i];
                for (vv, gg) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vv = self.momentum * *vv + gg;
                }
                p.axpy(-lr, v);
            }
        }
    }

    fn steps(&self) -> usize {
        self.t
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "sgd".into(),
            t: self.t,
            scalars: vec![self.momentum],
            tensors: self.velocity.clone(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) {
        state.expect_kind("sgd");
        self.t = state.t;
        self.momentum = state.scalars[0];
        self.velocity = state.tensors.clone();
    }
}

/// Per-parameter Adam state.
#[derive(Clone, Debug)]
struct Moments {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Moments {
    fn new() -> Self {
        Self {
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure(&mut self, i: usize, shape: (usize, usize)) {
        while self.m.len() <= i {
            self.m.push(Tensor::zeros(shape.0, shape.1));
            self.v.push(Tensor::zeros(shape.0, shape.1));
        }
    }

    /// Update the moments for parameter `i` and return the bias-corrected
    /// Adam direction `m̂ / (√v̂ + ε)` as a tensor.
    fn direction(
        &mut self,
        i: usize,
        g: &Tensor,
        t: usize,
        beta1: f64,
        beta2: f64,
        eps: f64,
    ) -> Tensor {
        self.ensure(i, g.shape());
        let m = &mut self.m[i];
        let v = &mut self.v[i];
        for ((mm, vv), gg) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice().iter_mut())
            .zip(g.as_slice())
        {
            *mm = beta1 * *mm + (1.0 - beta1) * gg;
            *vv = beta2 * *vv + (1.0 - beta2) * gg * gg;
        }
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        let mut dir = Tensor::zeros(g.rows(), g.cols());
        for ((d, mm), vv) in dir
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_slice())
            .zip(v.as_slice())
        {
            let mhat = mm / bc1;
            let vhat = vv / bc2;
            *d = mhat / (vhat.sqrt() + eps);
        }
        dir
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    moments: Moments,
    t: usize,
}

impl Adam {
    /// Standard hyperparameters: β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new() -> Self {
        Self::with_betas(0.9, 0.999, 1e-8)
    }

    /// Custom betas and epsilon.
    pub fn with_betas(beta1: f64, beta2: f64, eps: f64) -> Self {
        Self {
            beta1,
            beta2,
            eps,
            moments: Moments::new(),
            t: 0,
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step<'a>(
        &mut self,
        params: impl Iterator<Item = &'a mut Tensor>,
        grads: &[Tensor],
        lr: f64,
    ) {
        self.t += 1;
        for (i, (p, g)) in params.zip(grads).enumerate() {
            check_shapes(p, g, i);
            let dir = self
                .moments
                .direction(i, g, self.t, self.beta1, self.beta2, self.eps);
            p.axpy(-lr, &dir);
        }
    }

    fn steps(&self) -> usize {
        self.t
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "adam".into(),
            t: self.t,
            scalars: vec![self.beta1, self.beta2, self.eps],
            tensors: moments_to_interleaved(&self.moments),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) {
        state.expect_kind("adam");
        self.t = state.t;
        self.beta1 = state.scalars[0];
        self.beta2 = state.scalars[1];
        self.eps = state.scalars[2];
        self.moments = moments_from_interleaved(&state.tensors);
    }
}

/// AdamW (Loshchilov & Hutter): Adam with *decoupled* weight decay.
#[derive(Clone, Debug)]
pub struct AdamW {
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Decoupled weight-decay coefficient λ.
    pub weight_decay: f64,
    moments: Moments,
    t: usize,
}

impl AdamW {
    /// Standard betas with the given decay coefficient.
    pub fn new(weight_decay: f64) -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            moments: Moments::new(),
            t: 0,
        }
    }
}

impl Optimizer for AdamW {
    fn step<'a>(
        &mut self,
        params: impl Iterator<Item = &'a mut Tensor>,
        grads: &[Tensor],
        lr: f64,
    ) {
        self.t += 1;
        for (i, (p, g)) in params.zip(grads).enumerate() {
            check_shapes(p, g, i);
            let dir = self
                .moments
                .direction(i, g, self.t, self.beta1, self.beta2, self.eps);
            // Decoupled decay: w ← w − lr·λ·w, independent of the gradient.
            if self.weight_decay != 0.0 {
                let wd = self.weight_decay;
                p.map_in_place(|w| w * (1.0 - lr * wd));
            }
            p.axpy(-lr, &dir);
        }
    }

    fn steps(&self) -> usize {
        self.t
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "adamw".into(),
            t: self.t,
            scalars: vec![self.beta1, self.beta2, self.eps, self.weight_decay],
            tensors: moments_to_interleaved(&self.moments),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) {
        state.expect_kind("adamw");
        self.t = state.t;
        self.beta1 = state.scalars[0];
        self.beta2 = state.scalars[1];
        self.eps = state.scalars[2];
        self.weight_decay = state.scalars[3];
        self.moments = moments_from_interleaved(&state.tensors);
    }
}

/// LAMB (You et al.): AdamW direction rescaled per layer by the trust
/// ratio `‖w‖ / ‖r‖`, enabling the very large batch sizes of multi-GPU
/// data-parallel training (§5.2 of the paper uses NVIDIA's FusedLAMB).
#[derive(Clone, Debug)]
pub struct Lamb {
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Weight-decay coefficient λ added to the update direction.
    pub weight_decay: f64,
    /// Upper clamp on the trust ratio (10 in the reference implementation).
    pub max_trust: f64,
    moments: Moments,
    t: usize,
}

impl Lamb {
    /// Standard betas with the given decay coefficient.
    pub fn new(weight_decay: f64) -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
            weight_decay,
            max_trust: 10.0,
            moments: Moments::new(),
            t: 0,
        }
    }
}

impl Optimizer for Lamb {
    fn step<'a>(
        &mut self,
        params: impl Iterator<Item = &'a mut Tensor>,
        grads: &[Tensor],
        lr: f64,
    ) {
        self.t += 1;
        for (i, (p, g)) in params.zip(grads).enumerate() {
            check_shapes(p, g, i);
            let mut r = self
                .moments
                .direction(i, g, self.t, self.beta1, self.beta2, self.eps);
            if self.weight_decay != 0.0 {
                r.axpy(self.weight_decay, p);
            }
            let w_norm = p.norm_l2();
            let r_norm = r.norm_l2();
            let trust = if w_norm > 0.0 && r_norm > 0.0 {
                (w_norm / r_norm).min(self.max_trust)
            } else {
                1.0
            };
            p.axpy(-lr * trust, &r);
        }
    }

    fn steps(&self) -> usize {
        self.t
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "lamb".into(),
            t: self.t,
            scalars: vec![
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
                self.max_trust,
            ],
            tensors: moments_to_interleaved(&self.moments),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) {
        state.expect_kind("lamb");
        self.t = state.t;
        self.beta1 = state.scalars[0];
        self.beta2 = state.scalars[1];
        self.eps = state.scalars[2];
        self.weight_decay = state.scalars[3];
        self.max_trust = state.scalars[4];
        self.moments = moments_from_interleaved(&state.tensors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = ½‖w − target‖² with the given optimizer.
    fn converges_on_quadratic(opt: &mut dyn FnMut(&mut Vec<Tensor>, &[Tensor])) -> f64 {
        let target = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let mut params = vec![Tensor::zeros(1, 3)];
        for _ in 0..400 {
            let grad = params[0].sub(&target);
            opt(&mut params, &[grad]);
        }
        params[0].max_abs_diff(&target)
    }

    #[test]
    fn sgd_converges() {
        let mut o = Sgd::new(0.0);
        let err = converges_on_quadratic(&mut |p, g| o.step(p.iter_mut(), g, 0.1));
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut o = Sgd::new(0.9);
        let err = converges_on_quadratic(&mut |p, g| o.step(p.iter_mut(), g, 0.02));
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn adam_converges() {
        let mut o = Adam::new();
        let err = converges_on_quadratic(&mut |p, g| o.step(p.iter_mut(), g, 0.05));
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn adamw_converges() {
        let mut o = AdamW::new(0.0);
        let err = converges_on_quadratic(&mut |p, g| o.step(p.iter_mut(), g, 0.05));
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn lamb_converges() {
        let mut o = Lamb::new(0.0);
        let err = converges_on_quadratic(&mut |p, g| o.step(p.iter_mut(), g, 0.05));
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the first Adam step is ≈ lr regardless of
        // gradient magnitude.
        for &scale in &[1e-4, 1.0, 1e4] {
            let mut o = Adam::new();
            let mut p = [Tensor::zeros(1, 1)];
            let g = vec![Tensor::scalar(scale)];
            o.step(p.iter_mut(), &g, 0.01);
            assert!(
                (p[0].item().abs() - 0.01).abs() < 1e-5,
                "scale {scale}: step {}",
                p[0].item()
            );
        }
    }

    #[test]
    fn adamw_decay_is_decoupled() {
        // Zero gradient: AdamW still shrinks weights, Adam does not.
        let mut aw = AdamW::new(0.1);
        let mut p = [Tensor::scalar(1.0)];
        let g = vec![Tensor::scalar(0.0)];
        aw.step(p.iter_mut(), &g, 0.5);
        assert!((p[0].item() - 0.95).abs() < 1e-12);

        let mut a = Adam::new();
        let mut p2 = [Tensor::scalar(1.0)];
        a.step(p2.iter_mut(), &g, 0.5);
        assert_eq!(p2[0].item(), 1.0);
    }

    #[test]
    fn lamb_update_is_invariant_to_gradient_scale() {
        // The trust ratio normalizes the direction by its own norm, so
        // scaling all gradients leaves the step (nearly) unchanged.
        let run = |gscale: f64| {
            let mut o = Lamb::new(0.0);
            let mut p = [Tensor::from_vec(1, 2, vec![3.0, 4.0])];
            let g = vec![Tensor::from_vec(1, 2, vec![1.0 * gscale, 2.0 * gscale])];
            o.step(p.iter_mut(), &g, 0.1);
            p[0].clone()
        };
        let a = run(1.0);
        let b = run(1000.0);
        assert!(
            a.allclose(&b, 1e-6),
            "LAMB not scale invariant: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn lamb_trust_ratio_is_clamped() {
        // Tiny direction norm would give a huge trust ratio; the clamp
        // bounds the step size.
        let mut o = Lamb::new(0.0);
        let mut p = [Tensor::from_vec(1, 2, vec![1e6, 1e6])];
        let g = vec![Tensor::from_vec(1, 2, vec![1e-12, 1e-12])];
        let before = p[0].clone();
        o.step(p.iter_mut(), &g, 0.1);
        let moved = p[0].max_abs_diff(&before);
        // Step ≤ lr · max_trust · ‖direction‖∞ and direction ≤ ~1.
        assert!(moved <= 0.1 * 10.0 * 1.5, "moved {moved}");
    }

    #[test]
    fn clip_grad_norm_rescales_only_when_needed() {
        let mut grads = vec![Tensor::from_vec(1, 2, vec![3.0, 4.0])]; // norm 5
        let pre = clip_grad_norm(&mut grads, 2.5);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((grads[0].norm_l2() - 2.5).abs() < 1e-12);
        // Direction preserved.
        assert!((grads[0].get(0, 0) / grads[0].get(0, 1) - 0.75).abs() < 1e-12);
        // Below the limit: untouched.
        let mut small = vec![Tensor::from_vec(1, 2, vec![0.3, 0.4])];
        let pre = clip_grad_norm(&mut small, 2.5);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(small[0].as_slice(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_grad_norm_spans_multiple_tensors() {
        let mut grads = vec![Tensor::full(1, 1, 3.0), Tensor::full(1, 1, 4.0)];
        clip_grad_norm(&mut grads, 1.0);
        let joint = (grads[0].item().powi(2) + grads[1].item().powi(2)).sqrt();
        assert!((joint - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steps_counter_advances() {
        let mut o = Adam::new();
        let mut p = [Tensor::scalar(0.0)];
        for i in 1..=5 {
            o.step(p.iter_mut(), &[Tensor::scalar(1.0)], 0.01);
            assert_eq!(o.steps(), i);
        }
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn mismatched_gradient_shape_panics() {
        let mut o = Sgd::new(0.0);
        let mut p = [Tensor::zeros(2, 2)];
        o.step(p.iter_mut(), &[Tensor::zeros(1, 4)], 0.1);
    }

    /// Run `k` noisy steps, snapshot, run `k` more; then restore the
    /// snapshot into a *fresh* optimizer and replay the last `k` steps.
    /// Both trajectories must agree bitwise.
    fn roundtrip_resumes_bitwise<O: Optimizer + Clone>(make: impl Fn() -> O) {
        let grads: Vec<Tensor> = (0..20)
            .map(|i| Tensor::from_vec(1, 3, vec![(i as f64).sin(), 0.3 - i as f64 * 0.05, 1.0]))
            .collect();
        let mut p = vec![Tensor::from_vec(1, 3, vec![0.5, -0.5, 2.0])];
        let mut opt = make();
        for g in &grads[..10] {
            opt.step(p.iter_mut(), std::slice::from_ref(g), 0.02);
        }
        let snap_params = p.clone();
        let snap = opt.export_state();
        // Continue the original.
        for g in &grads[10..] {
            opt.step(p.iter_mut(), std::slice::from_ref(g), 0.02);
        }
        // Resume a fresh optimizer from the snapshot.
        let mut opt2 = make();
        opt2.import_state(&snap);
        assert_eq!(opt2.steps(), 10);
        let mut p2 = snap_params;
        for g in &grads[10..] {
            opt2.step(p2.iter_mut(), std::slice::from_ref(g), 0.02);
        }
        assert_eq!(
            p[0].as_slice(),
            p2[0].as_slice(),
            "resumed trajectory diverged"
        );
    }

    #[test]
    fn state_roundtrip_is_bitwise_for_all_optimizers() {
        roundtrip_resumes_bitwise(|| Sgd::new(0.9));
        roundtrip_resumes_bitwise(Adam::new);
        roundtrip_resumes_bitwise(|| AdamW::new(0.01));
        roundtrip_resumes_bitwise(|| Lamb::new(0.01));
    }

    #[test]
    fn exported_state_carries_kind_and_hyperparameters() {
        let mut o = Lamb::new(0.02);
        let mut p = [Tensor::scalar(1.0)];
        o.step(p.iter_mut(), &[Tensor::scalar(0.5)], 0.1);
        let s = o.export_state();
        assert_eq!(s.kind, "lamb");
        assert_eq!(s.t, 1);
        assert_eq!(s.scalars, vec![0.9, 0.999, 1e-6, 0.02, 10.0]);
        assert_eq!(s.tensors.len(), 2); // one parameter → m + v
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn importing_wrong_kind_panics() {
        let snap = Adam::new().export_state();
        Sgd::new(0.0).import_state(&snap);
    }
}
