//! Property-based validation of the autodiff engine against central finite
//! differences, on randomly generated MLP-like computations — the same
//! composition pattern SDNet uses (matmul + bias broadcast + tanh/GELU),
//! including the second-order derivatives needed for the PDE loss.

use crate::{Graph, Var};
use mf_tensor::Tensor;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A tiny 2-layer network: f(x) = sum(tanh(x·W1 + b1) · W2).
struct TinyNet {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
}

impl TinyNet {
    fn random(seed: u64, din: usize, hidden: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rand_t =
            |r: usize, c: usize| Tensor::from_fn(r, c, |_, _| rng.gen_range(-0.8..0.8));
        Self {
            w1: rand_t(din, hidden),
            b1: rand_t(1, hidden),
            w2: rand_t(hidden, 1),
        }
    }

    /// Forward pass on the graph; returns (scalar output, x leaf).
    fn forward(&self, g: &mut Graph, x: &Tensor, act: fn(&mut Graph, Var) -> Var) -> (Var, Var) {
        let xv = g.leaf(x.clone());
        let w1 = g.constant(self.w1.clone());
        let b1 = g.constant(self.b1.clone());
        let w2 = g.constant(self.w2.clone());
        let h = g.matmul(xv, w1);
        let q = x.rows();
        let b1b = g.broadcast_rows(b1, q);
        let h = g.add(h, b1b);
        let h = act(g, h);
        let out = g.matmul(h, w2);
        let s = g.sum(out);
        (s, xv)
    }
}

fn eval_scalar(net: &TinyNet, x: &Tensor, act: fn(&mut Graph, Var) -> Var) -> f64 {
    let mut g = Graph::new();
    let (s, _) = net.forward(&mut g, x, act);
    g.value(s).item()
}

fn act_tanh(g: &mut Graph, v: Var) -> Var {
    g.tanh(v)
}

fn act_gelu(g: &mut Graph, v: Var) -> Var {
    g.gelu(v)
}

fn check_first_order(seed: u64, act: fn(&mut Graph, Var) -> Var) {
    let net = TinyNet::random(seed, 2, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
    let x = Tensor::from_fn(3, 2, |_, _| rng.gen_range(-1.0..1.0));

    let mut g = Graph::new();
    let (s, xv) = net.forward(&mut g, &x, act);
    let dx = g.grad(s, &[xv])[0];
    let analytic = g.value(dx).clone();

    let h = 1e-5;
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + h);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - h);
            let numeric = (eval_scalar(&net, &xp, act) - eval_scalar(&net, &xm, act)) / (2.0 * h);
            let a = analytic.get(r, c);
            assert!(
                (a - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "seed {seed} d/dx[{r},{c}]: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn check_second_order(seed: u64, act: fn(&mut Graph, Var) -> Var) {
    let net = TinyNet::random(seed, 2, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1234);
    let x = Tensor::from_fn(2, 2, |_, _| rng.gen_range(-1.0..1.0));

    // Analytic: column c of grad, summed, differentiated again.
    let mut g = Graph::new();
    let (s, xv) = net.forward(&mut g, &x, act);
    let dx = g.grad(s, &[xv])[0];

    for c in 0..2 {
        let col = g.slice_cols(dx, c, 1);
        let sc = g.sum(col);
        let d2 = g.grad(sc, &[xv])[0];
        let analytic = g.value(d2).clone();

        // Numeric second derivative of f via finite difference of the
        // analytic first derivative (more stable than double FD).
        let h = 1e-5;
        for r in 0..x.rows() {
            for cc in 0..x.cols() {
                let fd = {
                    let grad_at = |xx: &Tensor| -> f64 {
                        let mut gg = Graph::new();
                        let (ss, xvv) = net.forward(&mut gg, xx, act);
                        let dxx = gg.grad(ss, &[xvv])[0];
                        // sum over rows of column c of the gradient
                        gg.value(dxx).col(c).iter().sum()
                    };
                    let mut xp = x.clone();
                    xp.set(r, cc, x.get(r, cc) + h);
                    let mut xm = x.clone();
                    xm.set(r, cc, x.get(r, cc) - h);
                    (grad_at(&xp) - grad_at(&xm)) / (2.0 * h)
                };
                let a = analytic.get(r, cc);
                assert!(
                    (a - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "seed {seed} d²/dx² col {c} [{r},{cc}]: analytic {a} vs numeric {fd}"
                );
            }
        }
    }
}

#[test]
fn first_order_matches_finite_difference_tanh() {
    for seed in 0..4 {
        check_first_order(seed, act_tanh);
    }
}

#[test]
fn first_order_matches_finite_difference_gelu() {
    for seed in 10..13 {
        check_first_order(seed, act_gelu);
    }
}

#[test]
fn second_order_matches_finite_difference_tanh() {
    for seed in 0..3 {
        check_second_order(seed, act_tanh);
    }
}

#[test]
fn second_order_matches_finite_difference_gelu() {
    check_second_order(42, act_gelu);
}

#[test]
fn laplacian_of_harmonic_polynomial_is_zero() {
    // u(x,y) = x² - y² is harmonic: u_xx + u_yy = 0. Build it on the graph
    // and verify the double-backward Laplacian is exactly zero — the same
    // code path as the physics-informed loss.
    let mut g = Graph::new();
    let pts = Tensor::from_fn(5, 2, |r, c| {
        0.1 * (r as f64 + 1.0) * if c == 0 { 1.0 } else { -0.7 }
    });
    let x = g.leaf(pts);
    let xc = g.slice_cols(x, 0, 1);
    let yc = g.slice_cols(x, 1, 1);
    let x2 = g.mul(xc, xc);
    let y2 = g.mul(yc, yc);
    let u = g.sub(x2, y2);

    let su = g.sum(u);
    let du = g.grad(su, &[x])[0];
    let ux = g.slice_cols(du, 0, 1);
    let uy = g.slice_cols(du, 1, 1);
    let sux = g.sum(ux);
    let duxx = g.grad(sux, &[x])[0];
    let suy = g.sum(uy);
    let duyy = g.grad(suy, &[x])[0];
    let uxx = g.slice_cols(duxx, 0, 1);
    let uyy = g.slice_cols(duyy, 1, 1);
    let lap = g.add(uxx, uyy);
    assert!(
        g.value(lap).norm_linf() < 1e-12,
        "Laplacian of harmonic fn must vanish"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_of_sum_of_linear_is_constant(vals in prop::collection::vec(-5.0f64..5.0, 4), k in -3.0f64..3.0) {
        // f = k * sum(x) ⇒ df/dx = k everywhere, regardless of x.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(2, 2, vals));
        let s = g.sum(x);
        let f = g.scale(s, k);
        let d = g.grad(f, &[x])[0];
        prop_assert!(g.value(d).allclose(&Tensor::full(2, 2, k), 1e-12));
    }

    #[test]
    fn product_rule_holds(a in -2.0f64..2.0, b in -2.0f64..2.0) {
        // d(ab)/da = b, d(ab)/db = a.
        let mut g = Graph::new();
        let av = g.leaf(Tensor::scalar(a));
        let bv = g.leaf(Tensor::scalar(b));
        let p = g.mul(av, bv);
        let grads = g.grad(p, &[av, bv]);
        prop_assert!((g.value(grads[0]).item() - b).abs() < 1e-12);
        prop_assert!((g.value(grads[1]).item() - a).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_through_scale_and_tanh(x0 in -1.5f64..1.5, k in 0.1f64..2.0) {
        // f = tanh(kx) ⇒ f' = k(1 - tanh²(kx)).
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(x0));
        let kx = g.scale(x, k);
        let y = g.tanh(kx);
        let d = g.grad(y, &[x])[0];
        let t = (k * x0).tanh();
        prop_assert!((g.value(d).item() - k * (1.0 - t * t)).abs() < 1e-10);
    }

    #[test]
    fn gradient_is_linear_in_seed_scale(x0 in -2.0f64..2.0, alpha in -3.0f64..3.0) {
        // grad(alpha * f) = alpha * grad(f).
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(x0));
        let f = g.mul(x, x);
        let d1 = g.grad(f, &[x])[0];
        let af = g.scale(f, alpha);
        let d2 = g.grad(af, &[x])[0];
        prop_assert!((g.value(d2).item() - alpha * g.value(d1).item()).abs() < 1e-10);
    }
}
