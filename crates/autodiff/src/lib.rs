#![warn(missing_docs)]

//! Tensor-valued reverse-mode automatic differentiation with
//! **differentiable vector-Jacobian products**.
//!
//! Physics-informed training needs the Laplacian `∂²u/∂x² + ∂²u/∂y²` of the
//! network output with respect to its *inputs* inside a loss that is then
//! differentiated with respect to the *weights* — three chained backward
//! passes (§5.2 of the paper). PyTorch supports this via
//! `autograd.grad(..., create_graph=True)`; this crate reproduces the same
//! semantics from scratch:
//!
//! * computation is recorded on an arena [`Graph`] of tensor-valued nodes,
//! * [`Graph::grad`] walks the graph in reverse and **emits new graph
//!   nodes** for every adjoint, so gradients are themselves differentiable
//!   to arbitrary order,
//! * every primitive's VJP is expressed in terms of the same primitive set,
//!   which makes the rule set closed under differentiation.
//!
//! The arena also meters the bytes held by node values
//! ([`Graph::bytes_allocated`]), which is how the repository reproduces the
//! autograd-memory measurements of Table 3.
//!
//! # Example
//!
//! ```
//! use mf_autodiff::Graph;
//! use mf_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(3, 1, vec![0.5, 1.0, 2.0]));
//! let y = g.mul(x, x); // y = x²  (per element)
//! let s = g.sum(y);
//! let dx = g.grad(s, &[x])[0]; // dy/dx = 2x
//! assert!(g.value(dx).allclose(&Tensor::from_vec(3, 1, vec![1.0, 2.0, 4.0]), 1e-12));
//! // Second derivative: differentiate the gradient again.
//! let s2 = g.sum(dx);
//! let dxx = g.grad(s2, &[x])[0]; // d²y/dx² = 2
//! assert!(g.value(dxx).allclose(&Tensor::full(3, 1, 2.0), 1e-12));
//! ```

mod backward;
mod graph;
mod ops;

pub use graph::{Graph, GraphStats, Op, Var};

#[cfg(test)]
mod adjoint_tests;
#[cfg(test)]
mod finite_diff_tests;
