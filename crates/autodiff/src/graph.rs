//! The arena graph: node storage, primitive definitions, eager evaluation.
//!
//! # Memory model
//!
//! The graph owns a [`BufferPool`]: in the default *lean* mode every node
//! value is acquired from the pool and every buffer is returned to it on
//! [`Graph::clear`], so a steady-state training step (same shapes every
//! step) performs near-zero heap allocation after the first warm-up step.
//! [`Graph::new_legacy`] disables pooling and the fused backward kernels,
//! reproducing the original allocate-per-node behaviour for before/after
//! comparisons (`repro_table3`).
//!
//! With [`Graph::set_checkpointing`] enabled, [`Graph::evict_dead_values`]
//! releases the values of nodes whose VJPs never read them (pure structural
//! ops such as `Add`, slices, broadcasts); if a later operation does need an
//! evicted value it is recomputed on demand from its (never-evicted) leaf
//! ancestors — recompute-instead-of-retain checkpointing. All kernels are
//! deterministic, so a recomputed value is bitwise identical to the evicted
//! one.

use mf_tensor::Layout;
use mf_tensor::{BufferPool, PoolStats, Tensor};

/// Handle to a node in a [`Graph`].
///
/// `Var`s are plain indices; they are only meaningful together with the
/// graph that created them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// A primitive operation recorded on the graph.
///
/// Every operand is a [`Var`] pointing at an *earlier* node, so node index
/// order is a topological order — the backward pass exploits this.
#[derive(Clone, Debug)]
pub enum Op {
    /// Differentiable input (parameter, coordinates, …).
    Leaf,
    /// Non-differentiable constant (targets, masks, literals).
    Const,
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise (Hadamard) `a * b`.
    Mul(Var, Var),
    /// Elementwise `-a`.
    Neg(Var),
    /// `a * s` for a compile-time scalar.
    Scale(Var, f64),
    /// `a + s` for a compile-time scalar.
    AddScalar(Var, f64),
    /// `op_a(a) · op_b(b)` dense matrix product.
    MatMul(Var, Layout, Var, Layout),
    /// Matrix transpose.
    Transpose(Var),
    /// Sum of all elements → `1×1`.
    SumAll(Var),
    /// Mean of all elements → `1×1`.
    MeanAll(Var),
    /// Sum over rows: `[q,d] → [1,d]`.
    SumAxis0(Var),
    /// Broadcast a row: `[1,d] → [q,d]`.
    BroadcastRows(Var, usize),
    /// Broadcast a scalar: `[1,1] → [r,c]`.
    BroadcastScalar(Var, usize, usize),
    /// Repeat each row `q` times: `[B,d] → [B·q,d]` (input-split broadcast).
    RepeatRows(Var, usize),
    /// Sum consecutive groups of `q` rows: `[B·q,d] → [B,d]`.
    SumGroups(Var, usize),
    /// Metadata reshape.
    Reshape(Var, usize, usize),
    /// Columns `[start, start+len)`.
    SliceCols(Var, usize, usize),
    /// Embed as columns `[start, …)` of a width-`total` zero matrix.
    PadCols(Var, usize, usize),
    /// Rows `[start, start+len)`.
    SliceRows(Var, usize, usize),
    /// Embed as rows `[start, …)` of a height-`total` zero matrix.
    PadRows(Var, usize, usize),
    /// `[a | b]` horizontal concatenation.
    ConcatCols(Var, Var),
    /// `[a; b]` vertical concatenation.
    ConcatRows(Var, Var),
    /// Circular 1-D unfold (im2col): `(channels, kernel)`.
    Unfold1d(Var, usize, usize),
    /// Adjoint of unfold: `(batch, channels, kernel)`.
    Fold1d(Var, usize, usize, usize),
    /// Elementwise hyperbolic tangent.
    Tanh(Var),
    /// Elementwise exponential.
    Exp(Var),
    /// Elementwise sine.
    Sin(Var),
    /// Elementwise cosine.
    Cos(Var),
    /// Fused GELU (tanh approximation). One node instead of the ~9 a
    /// composed implementation needs, which matters because activation
    /// tensors dominate the autograd graph's memory (Table 3).
    Gelu(Var),
    /// N-ary gradient accumulator: elementwise sum of all inputs.
    ///
    /// Emitted by the lean backward pass instead of a chain of binary
    /// `Add` nodes: when a node's adjoint receives its `k`-th contribution
    /// the accumulator's buffer is extended in place (axpy-style) and
    /// re-pushed with the longer input list, so `k` contributions cost one
    /// buffer instead of `k − 1` intermediates. The VJP distributes the
    /// incoming gradient to every input in order, reproducing the
    /// nested-`Add` adjoints bit for bit.
    AddAcc(Vec<Var>),
    /// Fused bias broadcast-add `x ⊕ b`: `[q,d] + [1,d] → [q,d]`,
    /// replacing the `BroadcastRows` + `Add` pair in layer forwards.
    AddBias(Var, Var),
    /// Fused tanh backward `g · (1 − y²)` for `y = tanh(x)`; inputs `(g, y)`.
    TanhVjp(Var, Var),
    /// Elementwise `1 − y²` (the sech² factor of the tanh derivative).
    OneMinusSq(Var),
    /// Fused GELU pre-activation `√(2/π)·(x + c·x³)`; inputs `(x, x³)`.
    GeluInner(Var, Var),
    /// Fused GELU inner derivative `√(2/π)·(1 + 3c·x²)`; input `x²`.
    GeluDu(Var),
    /// Elementwise `(t + 1) / 2`.
    HalfOnePlus(Var),
}

pub(crate) struct Node {
    pub op: Op,
    /// `None` when the value was checkpoint-evicted (or the node is a
    /// hollowed-out accumulator superseded by a longer one).
    pub value: Option<Tensor>,
    /// Output shape, kept as metadata so shape queries (and therefore the
    /// whole backward pass structure) never need the possibly-evicted value.
    pub rows: usize,
    pub cols: usize,
    pub requires_grad: bool,
}

/// Aggregate statistics of a graph, used by the Table-3 memory experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GraphStats {
    /// Number of nodes recorded.
    pub nodes: usize,
    /// Bytes held by node value buffers (the "autograd graph" footprint).
    pub bytes: usize,
}

/// An eager tape of tensor operations supporting repeated, differentiable
/// backward passes.
///
/// Typical lifecycle: build leaves for parameters and inputs, run a forward
/// computation, call [`Graph::grad`] one or more times (each emits adjoint
/// nodes into the same graph), read gradients with [`Graph::value`], then
/// [`Graph::clear`] the graph (recycling every buffer into the pool) before
/// the next training step.
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pool: BufferPool,
    /// Pool-recycled buffers + fused backward kernels (default). `false`
    /// reproduces the original allocate-per-node tape for benchmarking.
    lean: bool,
    /// Opt-in checkpointing: [`Graph::evict_dead_values`] is a no-op
    /// unless set.
    ckpt: bool,
    /// Capacity bytes of all live node values.
    live_bytes: usize,
    /// High-water mark of `live_bytes` since the last [`Graph::clear`].
    peak_bytes: usize,
    /// Buffers obtained from the heap instead of the pool: pool misses,
    /// legacy-mode allocations, and adopted external buffers
    /// ([`Graph::leaf`] / [`Graph::constant`]).
    heap_allocs: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty graph in lean (pooled, fused-backward) mode.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            pool: BufferPool::new(),
            lean: true,
            ckpt: false,
            live_bytes: 0,
            peak_bytes: 0,
            heap_allocs: 0,
        }
    }

    /// Empty graph with pooling and fused backward kernels disabled: every
    /// node value is a fresh exact-size heap allocation and the backward
    /// pass emits the original unfused VJP chains. Used by the memory
    /// benchmarks as the "before" baseline and by the equivalence proptests.
    pub fn new_legacy() -> Self {
        Self {
            lean: false,
            ..Self::new()
        }
    }

    /// Whether this graph runs in lean (pooled + fused) mode.
    pub fn is_lean(&self) -> bool {
        self.lean
    }

    /// Enable or disable checkpointed segments: when enabled,
    /// [`Graph::evict_dead_values`] frees values the backward pass can
    /// recompute on demand.
    pub fn set_checkpointing(&mut self, on: bool) {
        self.ckpt = on;
    }

    /// Whether checkpoint eviction is enabled.
    pub fn checkpointing(&self) -> bool {
        self.ckpt
    }

    /// Drop all nodes and recycle their buffers into the pool, starting a
    /// fresh tape. Pool contents survive, so the next identically-shaped
    /// step is served entirely from recycled memory.
    pub fn clear(&mut self) {
        for node in self.nodes.drain(..) {
            if let Some(v) = node.value {
                if self.lean {
                    self.pool.release(v);
                }
            }
        }
        self.live_bytes = 0;
        self.peak_bytes = 0;
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Capacity bytes held by all live node value buffers — what the heap
    /// allocator actually sees, including gradient (adjoint) nodes, which
    /// are ordinary nodes on this tape.
    pub fn bytes_allocated(&self) -> usize {
        self.live_bytes
    }

    /// High-water mark of [`Graph::bytes_allocated`] since the last
    /// [`Graph::clear`].
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Cumulative counters of the owned buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Bytes parked in the pool's freelists (recycled, reusable).
    pub fn pool_held_bytes(&self) -> usize {
        self.pool.held_bytes()
    }

    /// Buffers this graph obtained from the heap rather than the pool
    /// (pool misses, legacy-mode allocations, adopted external buffers).
    pub fn heap_allocs(&self) -> u64 {
        self.heap_allocs
    }

    /// Node and byte counts in one call.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.len(),
            bytes: self.bytes_allocated(),
        }
    }

    /// The computed value of a variable.
    ///
    /// Panics if the value was checkpoint-evicted; internal consumers
    /// rematerialize via `Graph::ensure_live` first.
    pub fn value(&self, v: Var) -> &Tensor {
        self.nodes[v.0].value.as_ref().unwrap_or_else(|| {
            panic!(
                "value of node {} was checkpoint-evicted; call an op on it (which \
                 rematerializes) or read it before evict_dead_values()",
                v.0
            )
        })
    }

    /// Output shape of a variable, from metadata (works even when the
    /// value is evicted).
    pub fn shape_of(&self, v: Var) -> (usize, usize) {
        let n = &self.nodes[v.0];
        (n.rows, n.cols)
    }

    /// Whether gradients flow through this variable.
    pub fn requires_grad(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The operation that produced this variable.
    pub fn op(&self, v: Var) -> &Op {
        &self.nodes[v.0].op
    }

    /// Record a differentiable leaf (parameter or input), adopting an
    /// externally-allocated buffer.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.heap_allocs += 1;
        self.push(Op::Leaf, value, true)
    }

    /// Record a non-differentiable constant, adopting an
    /// externally-allocated buffer.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.heap_allocs += 1;
        self.push(Op::Const, value, false)
    }

    /// Record a differentiable leaf by copying `t` into a pooled buffer
    /// (the allocation-lean alternative to `leaf(t.clone())`).
    pub fn leaf_from(&mut self, t: &Tensor) -> Var {
        let v = self.pooled_copy(t);
        self.push(Op::Leaf, v, true)
    }

    /// Record a constant by copying `t` into a pooled buffer
    /// (the allocation-lean alternative to `constant(t.clone())`).
    pub fn constant_from(&mut self, t: &Tensor) -> Var {
        let v = self.pooled_copy(t);
        self.push(Op::Const, v, false)
    }

    /// Convenience: a `1×1` constant (pool-backed).
    pub fn constant_scalar(&mut self, v: f64) -> Var {
        let mut t = self.alloc(1, 1);
        t.set(0, 0, v);
        self.push(Op::Const, t, false)
    }

    fn pooled_copy(&mut self, t: &Tensor) -> Tensor {
        let (r, c) = t.shape();
        let mut out = self.alloc(r, c);
        t.copy_into(&mut out);
        out
    }

    /// A zero-filled `rows×cols` tensor: pool-recycled in lean mode, a
    /// fresh exact-size heap allocation otherwise.
    pub(crate) fn alloc(&mut self, rows: usize, cols: usize) -> Tensor {
        if self.lean {
            let before = self.pool.stats().misses;
            let t = self.pool.acquire(rows, cols);
            if self.pool.stats().misses > before {
                self.heap_allocs += 1;
            }
            t
        } else {
            self.heap_allocs += 1;
            Tensor::zeros(rows, cols)
        }
    }

    pub(crate) fn push(&mut self, op: Op, value: Tensor, requires_grad: bool) -> Var {
        let (rows, cols) = value.shape();
        self.live_bytes += value.capacity_bytes();
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
        self.nodes.push(Node {
            op,
            value: Some(value),
            rows,
            cols,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn push_op(&mut self, op: Op, value: Tensor) -> Var {
        let rg = op_inputs(&op).iter().any(|v| self.nodes[v.0].requires_grad);
        self.push(op, value, rg)
    }

    /// Remove and return a node's value (used when extending an `AddAcc`
    /// accumulator in place: the hollowed node stays on the tape but is
    /// referenced by nothing).
    pub(crate) fn take_value(&mut self, v: Var) -> Tensor {
        let t = self.nodes[v.0]
            .value
            .take()
            .expect("take_value: node already hollow");
        self.live_bytes -= t.capacity_bytes();
        t
    }

    /// Rematerialize `v` (and any evicted ancestors, in topological order)
    /// if its value was checkpoint-evicted. Deterministic kernels make the
    /// recomputed value bitwise identical to the evicted one.
    pub(crate) fn ensure_live(&mut self, v: Var) {
        if self.nodes[v.0].value.is_some() {
            return;
        }
        let mut dead: Vec<usize> = Vec::new();
        let mut stack = vec![v.0];
        while let Some(i) = stack.pop() {
            if self.nodes[i].value.is_some() || dead.contains(&i) {
                continue;
            }
            dead.push(i);
            for inp in op_inputs(&self.nodes[i].op) {
                if self.nodes[inp.0].value.is_none() {
                    stack.push(inp.0);
                }
            }
        }
        dead.sort_unstable();
        for i in dead {
            let op = self.nodes[i].op.clone();
            let val = self.eval_live(&op);
            self.live_bytes += val.capacity_bytes();
            if self.live_bytes > self.peak_bytes {
                self.peak_bytes = self.live_bytes;
            }
            self.nodes[i].value = Some(val);
        }
    }

    /// Release the values of nodes that no future backward pass reads:
    /// everything except leaves/constants, `Tanh`/`Exp` outputs (their
    /// VJPs read their own output), inputs of ops whose VJPs read input
    /// values (`Mul`, `MatMul`, `Sin`, `Cos`, `Gelu`, `TanhVjp`,
    /// `OneMinusSq`), and the explicitly `protect`ed variables.
    ///
    /// No-op unless checkpointing is enabled ([`Graph::set_checkpointing`]).
    /// Evicting is always safe — a value that does turn out to be needed is
    /// recomputed bitwise-identically — the rule above just avoids evicting
    /// what is certain to be recomputed.
    pub fn evict_dead_values(&mut self, protect: &[Var]) {
        if !self.ckpt {
            return;
        }
        let n = self.nodes.len();
        let mut keep = vec![false; n];
        for node in &self.nodes {
            match node.op {
                Op::Mul(..)
                | Op::MatMul(..)
                | Op::Sin(..)
                | Op::Cos(..)
                | Op::Gelu(..)
                | Op::TanhVjp(..)
                | Op::OneMinusSq(..) => {
                    for v in op_inputs(&node.op) {
                        keep[v.0] = true;
                    }
                }
                _ => {}
            }
        }
        for p in protect {
            keep[p.0] = true;
        }
        for (i, kept) in keep.iter().enumerate().take(n) {
            if *kept
                || matches!(
                    self.nodes[i].op,
                    Op::Leaf | Op::Const | Op::Tanh(_) | Op::Exp(_)
                )
            {
                continue;
            }
            if let Some(val) = self.nodes[i].value.take() {
                self.live_bytes -= val.capacity_bytes();
                if self.lean {
                    self.pool.release(val);
                }
            }
        }
    }
}

/// The input variables of an operation, in a fixed small buffer.
pub(crate) fn op_inputs(op: &Op) -> Vec<Var> {
    use Op::*;
    match op {
        Leaf | Const => vec![],
        AddAcc(inputs) => inputs.clone(),
        Add(a, b)
        | Sub(a, b)
        | Mul(a, b)
        | MatMul(a, _, b, _)
        | ConcatCols(a, b)
        | ConcatRows(a, b)
        | AddBias(a, b)
        | TanhVjp(a, b)
        | GeluInner(a, b) => vec![*a, *b],
        Neg(a)
        | Scale(a, _)
        | AddScalar(a, _)
        | Transpose(a)
        | SumAll(a)
        | MeanAll(a)
        | SumAxis0(a)
        | BroadcastRows(a, _)
        | BroadcastScalar(a, _, _)
        | RepeatRows(a, _)
        | SumGroups(a, _)
        | Reshape(a, _, _)
        | SliceCols(a, _, _)
        | PadCols(a, _, _)
        | SliceRows(a, _, _)
        | PadRows(a, _, _)
        | Unfold1d(a, _, _)
        | Fold1d(a, _, _, _)
        | Tanh(a)
        | Exp(a)
        | Gelu(a)
        | Sin(a)
        | Cos(a)
        | OneMinusSq(a)
        | GeluDu(a)
        | HalfOnePlus(a) => vec![*a],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_and_constants() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(2, 2));
        let c = g.constant(Tensor::zeros(2, 2));
        assert!(g.requires_grad(a));
        assert!(!g.requires_grad(c));
        assert_eq!(g.len(), 2);
        assert_eq!(g.bytes_allocated(), 2 * 4 * 8);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(2, 2));
        let c = g.constant(Tensor::ones(2, 2));
        let s1 = g.add(c, c);
        let s2 = g.add(a, c);
        assert!(!g.requires_grad(s1));
        assert!(g.requires_grad(s2));
    }

    #[test]
    fn clear_resets() {
        let mut g = Graph::new();
        let _ = g.leaf(Tensor::ones(4, 4));
        assert!(!g.is_empty());
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.stats(), GraphStats::default());
    }

    #[test]
    fn stats_track_bytes() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(8, 8));
        let _ = g.mul(a, a);
        let s = g.stats();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.bytes, 2 * 64 * 8);
    }

    #[test]
    fn clear_recycles_buffers_into_pool() {
        let mut g = Graph::new();
        let a = g.leaf_from(&Tensor::ones(8, 8));
        let _ = g.mul(a, a);
        let misses_first = g.pool_stats().misses;
        assert!(misses_first >= 2);
        g.clear();
        assert!(g.pool_held_bytes() >= 2 * 64 * 8);
        // The identical second build is served entirely from the pool.
        let a = g.leaf_from(&Tensor::ones(8, 8));
        let _ = g.mul(a, a);
        assert_eq!(g.pool_stats().misses, misses_first);
        assert_eq!(g.pool_stats().hits, 2);
    }

    #[test]
    fn peak_bytes_is_high_water_mark() {
        let mut g = Graph::new();
        let a = g.leaf_from(&Tensor::ones(8, 8));
        let m = g.mul(a, a);
        let _ = g.sum(m);
        let peak = g.peak_bytes();
        assert!(peak >= g.bytes_allocated());
        assert!(peak >= 2 * 64 * 8);
        g.clear();
        assert_eq!(g.peak_bytes(), 0);
    }

    #[test]
    fn legacy_and_lean_forward_values_agree_bitwise() {
        let build = |g: &mut Graph| {
            let x = g.leaf(Tensor::from_fn(3, 4, |r, c| ((r * 4 + c) as f64).sin()));
            let w = g.leaf(Tensor::from_fn(2, 4, |r, c| ((r + c) as f64 * 0.3).cos()));
            let y = g.matmul_layout(x, Layout::Normal, w, Layout::Transposed);
            let t = g.tanh(y);
            g.mean(t)
        };
        let mut lean = Graph::new();
        let mut legacy = Graph::new_legacy();
        let a = build(&mut lean);
        let b = build(&mut legacy);
        for (x, y) in lean
            .value(a)
            .as_slice()
            .iter()
            .zip(legacy.value(b).as_slice())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn eviction_and_remat_are_bitwise_identical() {
        let mut g = Graph::new();
        g.set_checkpointing(true);
        let x = g.leaf(Tensor::from_fn(2, 3, |r, c| {
            (r as f64 + 1.3) * (c as f64 - 0.7)
        }));
        let s = g.scale(x, 1.7);
        let a = g.add_scalar(s, 0.25);
        let before = g.value(a).clone();
        g.evict_dead_values(&[]);
        assert!(
            g.nodes[a.0].value.is_none(),
            "Add-scalar output should evict"
        );
        assert_eq!(g.shape_of(a), (2, 3));
        // Consuming the evicted var rematerializes it (and its ancestors).
        let t = g.tanh(a);
        assert_eq!(g.shape_of(t), (2, 3));
        for (x, y) in g.value(a).as_slice().iter().zip(before.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn evict_protects_requested_vars() {
        let mut g = Graph::new();
        g.set_checkpointing(true);
        let x = g.leaf(Tensor::ones(2, 2));
        let s = g.scale(x, 2.0);
        g.evict_dead_values(&[s]);
        assert!(g.nodes[s.0].value.is_some());
    }

    #[test]
    fn evict_is_noop_without_checkpointing() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(2, 2));
        let s = g.scale(x, 2.0);
        g.evict_dead_values(&[]);
        assert!(g.nodes[s.0].value.is_some());
    }

    #[test]
    fn heap_allocs_stop_after_warmup() {
        let mut g = Graph::new();
        for step in 0..3 {
            let x = g.leaf_from(&Tensor::ones(4, 4));
            let y = g.mul(x, x);
            let _ = g.sum(y);
            if step == 0 {
                assert!(g.heap_allocs() > 0);
            }
            let after_warmup = g.heap_allocs();
            g.clear();
            if step > 0 {
                assert_eq!(g.heap_allocs(), after_warmup);
            }
        }
        let before = g.heap_allocs();
        let x = g.leaf_from(&Tensor::ones(4, 4));
        let y = g.mul(x, x);
        let _ = g.sum(y);
        assert_eq!(
            g.heap_allocs(),
            before,
            "steady-state step must not allocate"
        );
    }
}
