//! The arena graph: node storage, primitive definitions, eager evaluation.

use mf_tensor::Layout;
use mf_tensor::Tensor;

/// Handle to a node in a [`Graph`].
///
/// `Var`s are plain indices; they are only meaningful together with the
/// graph that created them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// A primitive operation recorded on the graph.
///
/// Every operand is a [`Var`] pointing at an *earlier* node, so node index
/// order is a topological order — the backward pass exploits this.
#[derive(Clone, Debug)]
pub enum Op {
    /// Differentiable input (parameter, coordinates, …).
    Leaf,
    /// Non-differentiable constant (targets, masks, literals).
    Const,
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise (Hadamard) `a * b`.
    Mul(Var, Var),
    /// Elementwise `-a`.
    Neg(Var),
    /// `a * s` for a compile-time scalar.
    Scale(Var, f64),
    /// `a + s` for a compile-time scalar.
    AddScalar(Var, f64),
    /// `op_a(a) · op_b(b)` dense matrix product.
    MatMul(Var, Layout, Var, Layout),
    /// Matrix transpose.
    Transpose(Var),
    /// Sum of all elements → `1×1`.
    SumAll(Var),
    /// Mean of all elements → `1×1`.
    MeanAll(Var),
    /// Sum over rows: `[q,d] → [1,d]`.
    SumAxis0(Var),
    /// Broadcast a row: `[1,d] → [q,d]`.
    BroadcastRows(Var, usize),
    /// Broadcast a scalar: `[1,1] → [r,c]`.
    BroadcastScalar(Var, usize, usize),
    /// Repeat each row `q` times: `[B,d] → [B·q,d]` (input-split broadcast).
    RepeatRows(Var, usize),
    /// Sum consecutive groups of `q` rows: `[B·q,d] → [B,d]`.
    SumGroups(Var, usize),
    /// Metadata reshape.
    Reshape(Var, usize, usize),
    /// Columns `[start, start+len)`.
    SliceCols(Var, usize, usize),
    /// Embed as columns `[start, …)` of a width-`total` zero matrix.
    PadCols(Var, usize, usize),
    /// Rows `[start, start+len)`.
    SliceRows(Var, usize, usize),
    /// Embed as rows `[start, …)` of a height-`total` zero matrix.
    PadRows(Var, usize, usize),
    /// `[a | b]` horizontal concatenation.
    ConcatCols(Var, Var),
    /// `[a; b]` vertical concatenation.
    ConcatRows(Var, Var),
    /// Circular 1-D unfold (im2col): `(channels, kernel)`.
    Unfold1d(Var, usize, usize),
    /// Adjoint of unfold: `(batch, channels, kernel)`.
    Fold1d(Var, usize, usize, usize),
    /// Elementwise hyperbolic tangent.
    Tanh(Var),
    /// Elementwise exponential.
    Exp(Var),
    /// Elementwise sine.
    Sin(Var),
    /// Elementwise cosine.
    Cos(Var),
    /// Fused GELU (tanh approximation). One node instead of the ~9 a
    /// composed implementation needs, which matters because activation
    /// tensors dominate the autograd graph's memory (Table 3).
    Gelu(Var),
}

pub(crate) struct Node {
    pub op: Op,
    pub value: Tensor,
    pub requires_grad: bool,
}

/// Aggregate statistics of a graph, used by the Table-3 memory experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GraphStats {
    /// Number of nodes recorded.
    pub nodes: usize,
    /// Bytes held by node value buffers (the "autograd graph" footprint).
    pub bytes: usize,
}

/// An eager tape of tensor operations supporting repeated, differentiable
/// backward passes.
///
/// Typical lifecycle: build leaves for parameters and inputs, run a forward
/// computation, call [`Graph::grad`] one or more times (each emits adjoint
/// nodes into the same graph), read gradients with [`Graph::value`], then
/// drop or [`Graph::clear`] the graph before the next training step.
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Drop all nodes (start a fresh tape while keeping the allocation).
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Bytes held by all node value buffers.
    pub fn bytes_allocated(&self) -> usize {
        self.nodes.iter().map(|n| n.value.nbytes()).sum()
    }

    /// Node and byte counts in one call.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.len(),
            bytes: self.bytes_allocated(),
        }
    }

    /// The computed value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Whether gradients flow through this variable.
    pub fn requires_grad(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The operation that produced this variable.
    pub fn op(&self, v: Var) -> &Op {
        &self.nodes[v.0].op
    }

    /// Record a differentiable leaf (parameter or input).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value, true)
    }

    /// Record a non-differentiable constant.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(Op::Const, value, false)
    }

    /// Convenience: a `1×1` constant.
    pub fn constant_scalar(&mut self, v: f64) -> Var {
        self.constant(Tensor::scalar(v))
    }

    pub(crate) fn push(&mut self, op: Op, value: Tensor, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            op,
            value,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn push_op(&mut self, op: Op, value: Tensor) -> Var {
        let rg = op_inputs(&op).iter().any(|v| self.nodes[v.0].requires_grad);
        self.push(op, value, rg)
    }
}

/// The input variables of an operation, in a fixed small buffer.
pub(crate) fn op_inputs(op: &Op) -> Vec<Var> {
    use Op::*;
    match *op {
        Leaf | Const => vec![],
        Add(a, b)
        | Sub(a, b)
        | Mul(a, b)
        | MatMul(a, _, b, _)
        | ConcatCols(a, b)
        | ConcatRows(a, b) => vec![a, b],
        Neg(a)
        | Scale(a, _)
        | AddScalar(a, _)
        | Transpose(a)
        | SumAll(a)
        | MeanAll(a)
        | SumAxis0(a)
        | BroadcastRows(a, _)
        | BroadcastScalar(a, _, _)
        | RepeatRows(a, _)
        | SumGroups(a, _)
        | Reshape(a, _, _)
        | SliceCols(a, _, _)
        | PadCols(a, _, _)
        | SliceRows(a, _, _)
        | PadRows(a, _, _)
        | Unfold1d(a, _, _)
        | Fold1d(a, _, _, _)
        | Tanh(a)
        | Exp(a)
        | Gelu(a)
        | Sin(a)
        | Cos(a) => vec![a],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_and_constants() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(2, 2));
        let c = g.constant(Tensor::zeros(2, 2));
        assert!(g.requires_grad(a));
        assert!(!g.requires_grad(c));
        assert_eq!(g.len(), 2);
        assert_eq!(g.bytes_allocated(), 2 * 4 * 8);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(2, 2));
        let c = g.constant(Tensor::ones(2, 2));
        let s1 = g.add(c, c);
        let s2 = g.add(a, c);
        assert!(!g.requires_grad(s1));
        assert!(g.requires_grad(s2));
    }

    #[test]
    fn clear_resets() {
        let mut g = Graph::new();
        let _ = g.leaf(Tensor::ones(4, 4));
        assert!(!g.is_empty());
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.stats(), GraphStats::default());
    }

    #[test]
    fn stats_track_bytes() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(8, 8));
        let _ = g.mul(a, a);
        let s = g.stats();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.bytes, 2 * 64 * 8);
    }
}
