//! Systematic VJP verification: every primitive's gradient is checked
//! against central finite differences through a generic harness.
//!
//! For an operation `y = f(x)` and a random weight tensor `w`, the scalar
//! `L = Σ w ⊙ f(x)` has gradient `∂L/∂x = Jᵀw`; the harness compares the
//! graph's gradient with `(L(x+he) − L(x−he)) / 2h` for every coordinate.
//! This pins down the adjoint of each rule individually, complementing the
//! end-to-end network tests in `finite_diff_tests`.

use crate::{Graph, Var};
use mf_tensor::{Layout, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random(rng: &mut impl Rng, r: usize, c: usize) -> Tensor {
    Tensor::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// Check `d(Σ w⊙f(x))/dx` against finite differences.
fn check_unary(
    name: &str,
    shape: (usize, usize),
    seed: u64,
    build: impl Fn(&mut Graph, Var) -> Var,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x0 = random(&mut rng, shape.0, shape.1);

    let eval = |x: &Tensor| -> (f64, Option<Tensor>, (usize, usize)) {
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = build(&mut g, xv);
        let (yr, yc) = g.value(y).shape();
        // Deterministic weights from the output shape.
        let w = Tensor::from_fn(yr, yc, |r, c| ((r * 31 + c * 7) as f64 * 0.37).sin() + 0.1);
        let wv = g.constant(w);
        let p = g.mul(y, wv);
        let l = g.sum(p);
        let lv = g.value(l).item();
        let grad = g.grad(l, &[xv])[0];
        (lv, Some(g.value(grad).clone()), (yr, yc))
    };

    let (_, grad, _) = eval(&x0);
    let grad = grad.unwrap();
    let h = 1e-6;
    for r in 0..shape.0 {
        for c in 0..shape.1 {
            let mut xp = x0.clone();
            xp.set(r, c, x0.get(r, c) + h);
            let mut xm = x0.clone();
            xm.set(r, c, x0.get(r, c) - h);
            let fd = (eval(&xp).0 - eval(&xm).0) / (2.0 * h);
            let an = grad.get(r, c);
            assert!(
                (an - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "{name}: d/dx[{r},{c}] analytic {an} vs numeric {fd}"
            );
        }
    }
}

/// Check both operand gradients of a binary op.
fn check_binary(
    name: &str,
    sa: (usize, usize),
    sb: (usize, usize),
    seed: u64,
    build: impl Fn(&mut Graph, Var, Var) -> Var,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a0 = random(&mut rng, sa.0, sa.1);
    let b0 = random(&mut rng, sb.0, sb.1);

    let eval = |a: &Tensor, b: &Tensor| -> (f64, Tensor, Tensor) {
        let mut g = Graph::new();
        let av = g.leaf(a.clone());
        let bv = g.leaf(b.clone());
        let y = build(&mut g, av, bv);
        let (yr, yc) = g.value(y).shape();
        let w = Tensor::from_fn(yr, yc, |r, c| ((r * 13 + c * 5) as f64 * 0.53).cos() + 0.2);
        let wv = g.constant(w);
        let p = g.mul(y, wv);
        let l = g.sum(p);
        let lv = g.value(l).item();
        let grads = g.grad(l, &[av, bv]);
        (lv, g.value(grads[0]).clone(), g.value(grads[1]).clone())
    };

    let (_, ga, gb) = eval(&a0, &b0);
    let h = 1e-6;
    for r in 0..sa.0 {
        for c in 0..sa.1 {
            let mut ap = a0.clone();
            ap.set(r, c, a0.get(r, c) + h);
            let mut am = a0.clone();
            am.set(r, c, a0.get(r, c) - h);
            let fd = (eval(&ap, &b0).0 - eval(&am, &b0).0) / (2.0 * h);
            let an = ga.get(r, c);
            assert!(
                (an - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "{name}: dA[{r},{c}] analytic {an} vs numeric {fd}"
            );
        }
    }
    for r in 0..sb.0 {
        for c in 0..sb.1 {
            let mut bp = b0.clone();
            bp.set(r, c, b0.get(r, c) + h);
            let mut bm = b0.clone();
            bm.set(r, c, b0.get(r, c) - h);
            let fd = (eval(&a0, &bp).0 - eval(&a0, &bm).0) / (2.0 * h);
            let an = gb.get(r, c);
            assert!(
                (an - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "{name}: dB[{r},{c}] analytic {an} vs numeric {fd}"
            );
        }
    }
}

#[test]
fn adjoint_add() {
    check_binary("add", (3, 4), (3, 4), 1, |g, a, b| g.add(a, b));
}

#[test]
fn adjoint_sub() {
    check_binary("sub", (3, 4), (3, 4), 2, |g, a, b| g.sub(a, b));
}

#[test]
fn adjoint_mul() {
    check_binary("mul", (3, 4), (3, 4), 3, |g, a, b| g.mul(a, b));
}

#[test]
fn adjoint_neg() {
    check_unary("neg", (3, 4), 4, |g, x| g.neg(x));
}

#[test]
fn adjoint_scale() {
    check_unary("scale", (3, 4), 5, |g, x| g.scale(x, -2.3));
}

#[test]
fn adjoint_add_scalar() {
    check_unary("add_scalar", (3, 4), 6, |g, x| g.add_scalar(x, 7.7));
}

#[test]
fn adjoint_matmul_nn() {
    check_binary("matmul NN", (3, 4), (4, 2), 7, |g, a, b| g.matmul(a, b));
}

#[test]
fn adjoint_matmul_tn() {
    check_binary("matmul TN", (4, 3), (4, 2), 8, |g, a, b| {
        g.matmul_layout(a, Layout::Transposed, b, Layout::Normal)
    });
}

#[test]
fn adjoint_matmul_nt() {
    check_binary("matmul NT", (3, 4), (2, 4), 9, |g, a, b| {
        g.matmul_layout(a, Layout::Normal, b, Layout::Transposed)
    });
}

#[test]
fn adjoint_matmul_tt() {
    check_binary("matmul TT", (4, 3), (2, 4), 10, |g, a, b| {
        g.matmul_layout(a, Layout::Transposed, b, Layout::Transposed)
    });
}

#[test]
fn adjoint_transpose() {
    check_unary("transpose", (3, 5), 11, |g, x| g.transpose(x));
}

#[test]
fn adjoint_sum() {
    check_unary("sum", (3, 4), 12, |g, x| g.sum(x));
}

#[test]
fn adjoint_mean() {
    check_unary("mean", (3, 4), 13, |g, x| g.mean(x));
}

#[test]
fn adjoint_sum_axis0() {
    check_unary("sum_axis0", (5, 3), 14, |g, x| g.sum_axis0(x));
}

#[test]
fn adjoint_broadcast_rows() {
    check_unary("broadcast_rows", (1, 4), 15, |g, x| g.broadcast_rows(x, 6));
}

#[test]
fn adjoint_broadcast_scalar() {
    check_unary("broadcast_scalar", (1, 1), 16, |g, x| {
        g.broadcast_scalar(x, 3, 5)
    });
}

#[test]
fn adjoint_repeat_rows() {
    check_unary("repeat_rows", (3, 2), 17, |g, x| g.repeat_rows(x, 4));
}

#[test]
fn adjoint_sum_groups() {
    check_unary("sum_groups", (8, 3), 18, |g, x| g.sum_groups(x, 4));
}

#[test]
fn adjoint_reshape() {
    check_unary("reshape", (3, 4), 19, |g, x| g.reshape(x, 2, 6));
}

#[test]
fn adjoint_slice_cols() {
    check_unary("slice_cols", (3, 6), 20, |g, x| g.slice_cols(x, 1, 3));
}

#[test]
fn adjoint_pad_cols() {
    check_unary("pad_cols", (3, 2), 21, |g, x| g.pad_cols(x, 2, 7));
}

#[test]
fn adjoint_slice_rows() {
    check_unary("slice_rows", (6, 3), 22, |g, x| g.slice_rows(x, 2, 3));
}

#[test]
fn adjoint_pad_rows() {
    check_unary("pad_rows", (2, 3), 23, |g, x| g.pad_rows(x, 1, 6));
}

#[test]
fn adjoint_concat_cols() {
    check_binary("concat_cols", (3, 2), (3, 4), 24, |g, a, b| {
        g.concat_cols(a, b)
    });
}

#[test]
fn adjoint_concat_rows() {
    check_binary("concat_rows", (2, 3), (4, 3), 25, |g, a, b| {
        g.concat_rows(a, b)
    });
}

#[test]
fn adjoint_unfold1d() {
    // Two signals, 6 positions × 2 channels, kernel 3.
    check_unary("unfold1d", (2, 12), 26, |g, x| g.unfold1d(x, 2, 3));
}

#[test]
fn adjoint_fold1d() {
    // Input shaped like an unfold output: B·L = 6 rows, k·C = 6 cols.
    check_unary("fold1d", (6, 6), 27, |g, x| g.fold1d(x, 2, 2, 3));
}

#[test]
fn adjoint_tanh() {
    check_unary("tanh", (3, 4), 28, |g, x| g.tanh(x));
}

#[test]
fn adjoint_exp() {
    check_unary("exp", (3, 4), 29, |g, x| g.exp(x));
}

#[test]
fn adjoint_sin() {
    check_unary("sin", (3, 4), 32, |g, x| g.sin(x));
}

#[test]
fn adjoint_cos() {
    check_unary("cos", (3, 4), 33, |g, x| g.cos(x));
}

#[test]
fn second_order_sin_is_negative_sin() {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::row_vector(&[0.3, -1.1, 2.2]));
    let y = g.sin(x);
    let l = g.sum(y);
    let d1 = g.grad(l, &[x])[0];
    let s1 = g.sum(d1);
    let d2 = g.grad(s1, &[x])[0];
    let expect = Tensor::row_vector(&[-(0.3f64).sin(), -(-1.1f64).sin(), -(2.2f64).sin()]);
    assert!(g.value(d2).allclose(&expect, 1e-12));
}

#[test]
fn adjoint_gelu() {
    check_unary("gelu", (3, 4), 30, |g, x| g.gelu(x));
}

#[test]
fn adjoint_square_composition() {
    check_unary("square∘tanh", (3, 3), 31, |g, x| {
        let t = g.tanh(x);
        g.square(t)
    });
}

#[test]
fn second_order_gelu_matches_fd_of_gradient() {
    // d²/dx² of Σ gelu(x): differentiate the analytic gradient by finite
    // differences and compare with grad-of-grad.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let x0 = random(&mut rng, 2, 3);
    let grad_at = |x: &Tensor| -> Tensor {
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let y = g.gelu(xv);
        let l = g.sum(y);
        let d = g.grad(l, &[xv])[0];
        g.value(d).clone()
    };
    // Analytic second derivative (diagonal since gelu is elementwise).
    let mut g = Graph::new();
    let xv = g.leaf(x0.clone());
    let y = g.gelu(xv);
    let l = g.sum(y);
    let d1 = g.grad(l, &[xv])[0];
    let s1 = g.sum(d1);
    let d2 = g.grad(s1, &[xv])[0];
    let analytic = g.value(d2).clone();

    let h = 1e-5;
    for r in 0..2 {
        for c in 0..3 {
            let mut xp = x0.clone();
            xp.set(r, c, x0.get(r, c) + h);
            let mut xm = x0.clone();
            xm.set(r, c, x0.get(r, c) - h);
            let fd = (grad_at(&xp).get(r, c) - grad_at(&xm).get(r, c)) / (2.0 * h);
            let an = analytic.get(r, c);
            assert!(
                (an - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "gelu''[{r},{c}]: {an} vs {fd}"
            );
        }
    }
}

#[test]
fn second_order_through_matmul_chain() {
    // f(x) = Σ (xW)², W const ⇒ ∇f = 2 xWWᵀ, ∇²(e_k direction) constant.
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let w = random(&mut rng, 3, 4);
    let x0 = random(&mut rng, 2, 3);
    let mut g = Graph::new();
    let xv = g.leaf(x0.clone());
    let wv = g.constant(w.clone());
    let y = g.matmul(xv, wv);
    let sq = g.mul(y, y);
    let l = g.sum(sq);
    let d1 = g.grad(l, &[xv])[0];
    // Analytic: 2 x W Wᵀ.
    let expect = x0.matmul(&w).matmul(&w.transpose()).scale(2.0);
    assert!(g.value(d1).allclose(&expect, 1e-10));
    // Second derivative of Σ∇f w.r.t. x: constant = 2·(column sums of WWᵀ)
    // broadcast to rows.
    let s1 = g.sum(d1);
    let d2 = g.grad(s1, &[xv])[0];
    let wwt = w.matmul(&w.transpose());
    let col_sums = wwt.sum_axis0().scale(2.0);
    let expect2 = col_sums.repeat_rows(2);
    assert!(g.value(d2).allclose(&expect2, 1e-10));
}
