//! Eager primitive operations recorded on the graph.
//!
//! Each method computes the value immediately with `mf-tensor` kernels and
//! records the [`Op`] so the backward pass can differentiate it later.
//!
//! All values flow through a single evaluator ([`Graph::eval_live`]) that
//! writes into pool-recycled buffers in lean mode: eager execution and
//! checkpoint rematerialization share the exact same kernel calls, so a
//! recomputed value is bitwise identical to the original.

use crate::graph::{op_inputs, Graph, Op, Var};
use mf_tensor::{fold1d_circular_into, gemm_into, unfold1d_circular_into, Layout, Tensor};

/// Constant `√(2/π)` of the GELU tanh approximation.
pub(crate) const GELU_SQRT_2_OVER_PI: f64 = 0.797_884_560_802_865_4;
/// Cubic coefficient of the GELU tanh approximation.
pub(crate) const GELU_C: f64 = 0.044715;

/// Scalar GELU (tanh approximation).
#[inline]
pub(crate) fn gelu_scalar(x: f64) -> f64 {
    0.5 * x * (1.0 + (GELU_SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

impl Graph {
    /// Rematerialize evicted inputs, then evaluate `op` into a fresh
    /// (pooled) buffer.
    fn eval(&mut self, op: &Op) -> Tensor {
        if self.checkpointing() {
            for v in op_inputs(op) {
                self.ensure_live(v);
            }
        }
        self.eval_live(op)
    }

    /// Evaluate `op` assuming every input value is live. The single source
    /// of truth for primitive semantics — eager ops and checkpoint
    /// rematerialization both land here.
    pub(crate) fn eval_live(&mut self, op: &Op) -> Tensor {
        match *op {
            Op::Leaf | Op::Const => {
                unreachable!("leaves and constants are never re-evaluated")
            }
            Op::Add(a, b) => {
                let mut out = self.alloc_like(a);
                self.value(a).add_into(self.value(b), &mut out);
                out
            }
            Op::Sub(a, b) => {
                let mut out = self.alloc_like(a);
                self.value(a).sub_into(self.value(b), &mut out);
                out
            }
            Op::Mul(a, b) => {
                let mut out = self.alloc_like(a);
                self.value(a).mul_into(self.value(b), &mut out);
                out
            }
            Op::Neg(a) => {
                let mut out = self.alloc_like(a);
                self.value(a).scale_into(-1.0, &mut out);
                out
            }
            Op::Scale(a, s) => {
                let mut out = self.alloc_like(a);
                self.value(a).scale_into(s, &mut out);
                out
            }
            Op::AddScalar(a, s) => {
                let mut out = self.alloc_like(a);
                self.value(a).add_scalar_into(s, &mut out);
                out
            }
            Op::MatMul(a, la, b, lb) => {
                let (ar, ac) = self.shape_of(a);
                let (br, bc) = self.shape_of(b);
                let m = match la {
                    Layout::Normal => ar,
                    Layout::Transposed => ac,
                };
                let n = match lb {
                    Layout::Normal => bc,
                    Layout::Transposed => br,
                };
                // gemm_into accumulates into the zeroed output, which is
                // exactly what the allocating gemm does internally.
                let mut out = self.alloc(m, n);
                gemm_into(self.value(a), la, self.value(b), lb, &mut out);
                out
            }
            Op::Transpose(a) => {
                let (r, c) = self.shape_of(a);
                let mut out = self.alloc(c, r);
                self.value(a).transpose_into(&mut out);
                out
            }
            Op::SumAll(a) => {
                let s = self.value(a).sum();
                let mut out = self.alloc(1, 1);
                out.set(0, 0, s);
                out
            }
            Op::MeanAll(a) => {
                let s = self.value(a).mean();
                let mut out = self.alloc(1, 1);
                out.set(0, 0, s);
                out
            }
            Op::SumAxis0(a) => {
                let c = self.shape_of(a).1;
                let mut out = self.alloc(1, c);
                self.value(a).sum_axis0_into(&mut out);
                out
            }
            Op::BroadcastRows(a, q) | Op::RepeatRows(a, q) => {
                let (b, d) = self.shape_of(a);
                let mut out = self.alloc(b * q, d);
                self.value(a).repeat_rows_into(q, &mut out);
                out
            }
            Op::BroadcastScalar(a, r, c) => {
                let s = self.value(a).item();
                let mut out = self.alloc(r, c);
                out.as_mut_slice().fill(s);
                out
            }
            Op::SumGroups(a, q) => {
                let (bq, d) = self.shape_of(a);
                let mut out = self.alloc(bq / q, d);
                self.value(a).sum_groups_into(q, &mut out);
                out
            }
            Op::Reshape(a, rows, cols) => {
                let mut out = self.alloc(rows, cols);
                self.value(a).copy_into(&mut out);
                out
            }
            Op::SliceCols(a, start, len) => {
                let r = self.shape_of(a).0;
                let mut out = self.alloc(r, len);
                self.value(a).slice_cols_into(start, len, &mut out);
                out
            }
            Op::PadCols(a, start, total) => {
                let r = self.shape_of(a).0;
                let mut out = self.alloc(r, total);
                self.value(a).pad_cols_into(start, total, &mut out);
                out
            }
            Op::SliceRows(a, start, len) => {
                let c = self.shape_of(a).1;
                let mut out = self.alloc(len, c);
                self.value(a).slice_rows_into(start, len, &mut out);
                out
            }
            Op::PadRows(a, start, total) => {
                let c = self.shape_of(a).1;
                let mut out = self.alloc(total, c);
                self.value(a).pad_rows_into(start, total, &mut out);
                out
            }
            Op::ConcatCols(a, b) => {
                let (r, ca) = self.shape_of(a);
                let cb = self.shape_of(b).1;
                let mut out = self.alloc(r, ca + cb);
                self.value(a).concat_cols_into(self.value(b), &mut out);
                out
            }
            Op::ConcatRows(a, b) => {
                let (ra, c) = self.shape_of(a);
                let rb = self.shape_of(b).0;
                let mut out = self.alloc(ra + rb, c);
                self.value(a).concat_rows_into(self.value(b), &mut out);
                out
            }
            Op::Unfold1d(a, channels, k) => {
                let (b, width) = self.shape_of(a);
                let len = width / channels;
                let mut out = self.alloc(b * len, k * channels);
                unfold1d_circular_into(self.value(a), channels, k, &mut out);
                out
            }
            Op::Fold1d(a, b, channels, k) => {
                let rows = self.shape_of(a).0;
                let len = rows / b;
                let mut out = self.alloc(b, len * channels);
                fold1d_circular_into(self.value(a), b, channels, k, &mut out);
                out
            }
            Op::Tanh(a) => {
                let mut out = self.alloc_like(a);
                self.value(a).map_into(&mut out, f64::tanh);
                out
            }
            Op::Exp(a) => {
                let mut out = self.alloc_like(a);
                self.value(a).map_into(&mut out, f64::exp);
                out
            }
            Op::Sin(a) => {
                let mut out = self.alloc_like(a);
                self.value(a).map_into(&mut out, f64::sin);
                out
            }
            Op::Cos(a) => {
                let mut out = self.alloc_like(a);
                self.value(a).map_into(&mut out, f64::cos);
                out
            }
            Op::Gelu(a) => {
                let mut out = self.alloc_like(a);
                self.value(a).map_into(&mut out, gelu_scalar);
                out
            }
            Op::AddAcc(ref inputs) => {
                // Incremental accumulation: copy the first contribution and
                // add_assign the rest, matching both the zip-add of the
                // two-input case and the in-place extension path bitwise.
                let first = inputs[0];
                let mut out = self.alloc_like(first);
                self.value(first).copy_into(&mut out);
                for &inp in &inputs[1..] {
                    out.add_assign(self.value(inp));
                }
                out
            }
            Op::AddBias(x, b) => {
                let mut out = self.alloc_like(x);
                self.value(x)
                    .broadcast_row_add_into(self.value(b), &mut out);
                out
            }
            Op::TanhVjp(gv, y) => {
                let mut out = self.alloc_like(gv);
                self.value(gv)
                    .zip_map_into(self.value(y), &mut out, |g, t| g * (1.0 - t * t));
                out
            }
            Op::OneMinusSq(y) => {
                let mut out = self.alloc_like(y);
                self.value(y).map_into(&mut out, |t| 1.0 - t * t);
                out
            }
            Op::GeluInner(x, x3) => {
                let mut out = self.alloc_like(x);
                self.value(x)
                    .zip_map_into(self.value(x3), &mut out, |a, c| {
                        (a + c * GELU_C) * GELU_SQRT_2_OVER_PI
                    });
                out
            }
            Op::GeluDu(x2) => {
                let mut out = self.alloc_like(x2);
                self.value(x2).map_into(&mut out, |a| {
                    (a * (3.0 * GELU_C) + 1.0) * GELU_SQRT_2_OVER_PI
                });
                out
            }
            Op::HalfOnePlus(t) => {
                let mut out = self.alloc_like(t);
                self.value(t).map_into(&mut out, |a| (a + 1.0) * 0.5);
                out
            }
        }
    }

    fn alloc_like(&mut self, a: Var) -> Tensor {
        let (r, c) = self.shape_of(a);
        self.alloc(r, c)
    }

    fn record(&mut self, op: Op) -> Var {
        let v = self.eval(&op);
        self.push_op(op, v)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Sub(a, b))
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::Mul(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.record(Op::Neg(a))
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        self.record(Op::Scale(a, s))
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        self.record(Op::AddScalar(a, s))
    }

    /// Elementwise square, recorded as `a * a`.
    pub fn square(&mut self, a: Var) -> Var {
        self.mul(a, a)
    }

    /// Dense matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.matmul_layout(a, Layout::Normal, b, Layout::Normal)
    }

    /// Dense matrix product with explicit operand layouts.
    pub fn matmul_layout(&mut self, a: Var, la: Layout, b: Var, lb: Layout) -> Var {
        self.record(Op::MatMul(a, la, b, lb))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        self.record(Op::Transpose(a))
    }

    /// Sum of all elements (`1×1` result).
    pub fn sum(&mut self, a: Var) -> Var {
        self.record(Op::SumAll(a))
    }

    /// Mean of all elements (`1×1` result).
    pub fn mean(&mut self, a: Var) -> Var {
        self.record(Op::MeanAll(a))
    }

    /// Sum over rows: `[q,d] → [1,d]`.
    pub fn sum_axis0(&mut self, a: Var) -> Var {
        self.record(Op::SumAxis0(a))
    }

    /// Broadcast a `1×d` row to `q×d`.
    pub fn broadcast_rows(&mut self, a: Var, q: usize) -> Var {
        assert_eq!(
            self.shape_of(a).0,
            1,
            "broadcast_rows: input must be a row vector"
        );
        self.record(Op::BroadcastRows(a, q))
    }

    /// Broadcast a `1×1` scalar to `r×c`.
    pub fn broadcast_scalar(&mut self, a: Var, r: usize, c: usize) -> Var {
        self.record(Op::BroadcastScalar(a, r, c))
    }

    /// Repeat each row `q` times consecutively: `[B,d] → [B·q,d]`.
    ///
    /// This is the broadcast in the paper's input-split layer (eq. 8): the
    /// per-boundary embedding is shared across that boundary's `q` query
    /// points.
    pub fn repeat_rows(&mut self, a: Var, q: usize) -> Var {
        self.record(Op::RepeatRows(a, q))
    }

    /// Sum consecutive groups of `q` rows: `[B·q,d] → [B,d]`.
    pub fn sum_groups(&mut self, a: Var, q: usize) -> Var {
        self.record(Op::SumGroups(a, q))
    }

    /// Metadata reshape.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        self.record(Op::Reshape(a, rows, cols))
    }

    /// Columns `[start, start+len)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        self.record(Op::SliceCols(a, start, len))
    }

    /// Embed as columns `[start, …)` of a width-`total` zero matrix.
    pub fn pad_cols(&mut self, a: Var, start: usize, total: usize) -> Var {
        self.record(Op::PadCols(a, start, total))
    }

    /// Rows `[start, start+len)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        self.record(Op::SliceRows(a, start, len))
    }

    /// Embed as rows `[start, …)` of a height-`total` zero matrix.
    pub fn pad_rows(&mut self, a: Var, start: usize, total: usize) -> Var {
        self.record(Op::PadRows(a, start, total))
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::ConcatCols(a, b))
    }

    /// Vertical concatenation `[a; b]`.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        self.record(Op::ConcatRows(a, b))
    }

    /// Circular 1-D unfold (im2col) of a position-major multi-channel signal.
    pub fn unfold1d(&mut self, a: Var, channels: usize, k: usize) -> Var {
        self.record(Op::Unfold1d(a, channels, k))
    }

    /// Adjoint of [`Graph::unfold1d`] (scatter-add of windows).
    pub fn fold1d(&mut self, a: Var, b: usize, channels: usize, k: usize) -> Var {
        self.record(Op::Fold1d(a, b, channels, k))
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.record(Op::Tanh(a))
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        self.record(Op::Exp(a))
    }

    /// Elementwise `sin`.
    pub fn sin(&mut self, a: Var) -> Var {
        self.record(Op::Sin(a))
    }

    /// Elementwise `cos`.
    pub fn cos(&mut self, a: Var) -> Var {
        self.record(Op::Cos(a))
    }

    /// Mean squared error between `pred` and `target` (usually a constant).
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    /// GELU activation (tanh approximation), recorded as a single fused
    /// node: `gelu(x) = 0.5 x (1 + tanh(√(2/π) (x + 0.044715 x³)))`.
    ///
    /// The VJP is emitted in terms of other differentiable primitives, so
    /// higher-order derivatives (the PDE loss) still work.
    pub fn gelu(&mut self, x: Var) -> Var {
        self.record(Op::Gelu(x))
    }

    /// Fused broadcast bias add: `x + broadcast_rows(b)` for `x: [q,d]`,
    /// `b: [1,d]`, in one node instead of a `BroadcastRows` + `Add` pair —
    /// the broadcasted bias matrix is never materialized.
    ///
    /// In legacy (non-lean) mode this falls back to the original two-node
    /// chain so allocation benchmarks compare against true `main` behaviour.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        assert_eq!(self.shape_of(b).0, 1, "add_bias: bias must be a row vector");
        assert_eq!(
            self.shape_of(x).1,
            self.shape_of(b).1,
            "add_bias: column mismatch"
        );
        if !self.is_lean() {
            let q = self.shape_of(x).0;
            let bb = self.broadcast_rows(b, q);
            return self.add(x, bb);
        }
        self.record(Op::AddBias(x, b))
    }

    /// Fused tanh backward `g · (1 − y²)` where `y = tanh(x)` (one node
    /// instead of the four-node `mul`/`neg`/`add_scalar`/`mul` chain).
    pub fn tanh_vjp(&mut self, g: Var, y: Var) -> Var {
        self.record(Op::TanhVjp(g, y))
    }

    /// Elementwise `1 − y²`, fused (the sech² factor of `d tanh`).
    pub fn one_minus_sq(&mut self, y: Var) -> Var {
        self.record(Op::OneMinusSq(y))
    }

    /// Fused GELU pre-activation `√(2/π) (x + c·x³)` from `x` and `x³`.
    pub fn gelu_inner(&mut self, x: Var, x3: Var) -> Var {
        self.record(Op::GeluInner(x, x3))
    }

    /// Fused GELU inner derivative `√(2/π) (1 + 3c·x²)` from `x²`.
    pub fn gelu_du(&mut self, x2: Var) -> Var {
        self.record(Op::GeluDu(x2))
    }

    /// Elementwise `(t + 1) / 2`, fused.
    pub fn half_one_plus(&mut self, t: Var) -> Var {
        self.record(Op::HalfOnePlus(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_tensor_kernels() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Tensor::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).as_slice(), &[1.5, 1.5, 3.5, 3.5]);
        let m = g.mean(c);
        assert_eq!(g.value(m).item(), 2.5);
    }

    #[test]
    fn gelu_matches_reference_values() {
        // Reference values from the tanh approximation itself, hand-checked
        // against PyTorch's F.gelu(x, approximate='tanh').
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[-2.0, -1.0, 0.0, 1.0, 2.0]));
        let y = g.gelu(x);
        let got = g.value(y).as_slice().to_vec();
        let expect = [-0.045402, -0.158808, 0.0, 0.841192, 1.954598];
        for (a, b) in got.iter().zip(expect) {
            assert!((a - b).abs() < 1e-5, "gelu mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn mse_of_equal_inputs_is_zero() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(3, 1));
        let t = g.constant(Tensor::ones(3, 1));
        let l = g.mse(a, t);
        assert_eq!(g.value(l).item(), 0.0);
    }

    #[test]
    fn slice_pad_concat_shapes() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_fn(2, 4, |r, c| (r * 4 + c) as f64));
        let s = g.slice_cols(a, 1, 2);
        assert_eq!(g.value(s).shape(), (2, 2));
        let p = g.pad_cols(s, 1, 4);
        assert_eq!(g.value(p).get(0, 0), 0.0);
        assert_eq!(g.value(p).get(0, 1), 1.0);
        let b = g.leaf(Tensor::ones(2, 1));
        let cc = g.concat_cols(a, b);
        assert_eq!(g.value(cc).shape(), (2, 5));
    }

    #[test]
    fn unfold_records_correct_value() {
        let mut g = Graph::new();
        let sig = g.leaf(Tensor::row_vector(&[0.0, 1.0, 2.0, 3.0]));
        let u = g.unfold1d(sig, 1, 3);
        assert_eq!(g.value(u).row(0), &[3.0, 0.0, 1.0]);
    }

    #[test]
    fn add_bias_matches_broadcast_add_in_both_modes() {
        let x_t = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let b_t = Tensor::row_vector(&[10.0, 20.0]);
        let via_fused = {
            let mut g = Graph::new();
            let x = g.leaf(x_t.clone());
            let b = g.leaf(b_t.clone());
            let y = g.add_bias(x, b);
            g.value(y).clone()
        };
        let via_legacy = {
            let mut g = Graph::new_legacy();
            let x = g.leaf(x_t.clone());
            let b = g.leaf(b_t.clone());
            let y = g.add_bias(x, b);
            g.value(y).clone()
        };
        assert_eq!(via_fused.as_slice(), &[10.0, 21.0, 12.0, 23.0, 14.0, 25.0]);
        assert_eq!(via_fused, via_legacy);
    }

    #[test]
    fn fused_elementwise_ops_match_their_chains() {
        let mut g = Graph::new();
        let y = g.leaf(Tensor::row_vector(&[-0.9, -0.2, 0.0, 0.4, 0.8]));
        let gv = g.leaf(Tensor::row_vector(&[1.0, -2.0, 0.5, 3.0, -0.1]));
        let tv = g.tanh_vjp(gv, y);
        let om = g.one_minus_sq(y);
        let ref_tv = g.mul(gv, om);
        for (a, b) in g
            .value(tv)
            .as_slice()
            .iter()
            .zip(g.value(ref_tv).as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let hop = g.half_one_plus(y);
        let one_plus = g.add_scalar(y, 1.0);
        let ref_hop = g.scale(one_plus, 0.5);
        for (a, b) in g
            .value(hop)
            .as_slice()
            .iter()
            .zip(g.value(ref_hop).as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
