//! Eager primitive operations recorded on the graph.
//!
//! Each method computes the value immediately with `mf-tensor` kernels and
//! records the [`Op`] so the backward pass can differentiate it later.

use crate::graph::{Graph, Op, Var};
use mf_tensor::{fold1d_circular, gemm, unfold1d_circular, Layout, Tensor};

/// Constant `√(2/π)` of the GELU tanh approximation.
pub(crate) const GELU_SQRT_2_OVER_PI: f64 = 0.797_884_560_802_865_4;
/// Cubic coefficient of the GELU tanh approximation.
pub(crate) const GELU_C: f64 = 0.044715;

/// Scalar GELU (tanh approximation).
#[inline]
pub(crate) fn gelu_scalar(x: f64) -> f64 {
    0.5 * x * (1.0 + (GELU_SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

impl Graph {
    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push_op(Op::Add(a, b), v)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push_op(Op::Sub(a, b), v)
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push_op(Op::Mul(a, b), v)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).scale(-1.0);
        self.push_op(Op::Neg(a), v)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.value(a).scale(s);
        self.push_op(Op::Scale(a, s), v)
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let v = self.value(a).add_scalar(s);
        self.push_op(Op::AddScalar(a, s), v)
    }

    /// Elementwise square, recorded as `a * a`.
    pub fn square(&mut self, a: Var) -> Var {
        self.mul(a, a)
    }

    /// Dense matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.matmul_layout(a, Layout::Normal, b, Layout::Normal)
    }

    /// Dense matrix product with explicit operand layouts.
    pub fn matmul_layout(&mut self, a: Var, la: Layout, b: Var, lb: Layout) -> Var {
        let v = gemm(self.value(a), la, self.value(b), lb);
        self.push_op(Op::MatMul(a, la, b, lb), v)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push_op(Op::Transpose(a), v)
    }

    /// Sum of all elements (`1×1` result).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push_op(Op::SumAll(a), v)
    }

    /// Mean of all elements (`1×1` result).
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        self.push_op(Op::MeanAll(a), v)
    }

    /// Sum over rows: `[q,d] → [1,d]`.
    pub fn sum_axis0(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_axis0();
        self.push_op(Op::SumAxis0(a), v)
    }

    /// Broadcast a `1×d` row to `q×d`.
    pub fn broadcast_rows(&mut self, a: Var, q: usize) -> Var {
        assert_eq!(
            self.value(a).rows(),
            1,
            "broadcast_rows: input must be a row vector"
        );
        let v = self.value(a).repeat_rows(q);
        self.push_op(Op::BroadcastRows(a, q), v)
    }

    /// Broadcast a `1×1` scalar to `r×c`.
    pub fn broadcast_scalar(&mut self, a: Var, r: usize, c: usize) -> Var {
        let s = self.value(a).item();
        self.push_op(Op::BroadcastScalar(a, r, c), Tensor::full(r, c, s))
    }

    /// Repeat each row `q` times consecutively: `[B,d] → [B·q,d]`.
    ///
    /// This is the broadcast in the paper's input-split layer (eq. 8): the
    /// per-boundary embedding is shared across that boundary's `q` query
    /// points.
    pub fn repeat_rows(&mut self, a: Var, q: usize) -> Var {
        let v = self.value(a).repeat_rows(q);
        self.push_op(Op::RepeatRows(a, q), v)
    }

    /// Sum consecutive groups of `q` rows: `[B·q,d] → [B,d]`.
    pub fn sum_groups(&mut self, a: Var, q: usize) -> Var {
        let v = self.value(a).sum_groups(q);
        self.push_op(Op::SumGroups(a, q), v)
    }

    /// Metadata reshape.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let v = self.value(a).reshape(rows, cols);
        self.push_op(Op::Reshape(a, rows, cols), v)
    }

    /// Columns `[start, start+len)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.value(a).slice_cols(start, len);
        self.push_op(Op::SliceCols(a, start, len), v)
    }

    /// Embed as columns `[start, …)` of a width-`total` zero matrix.
    pub fn pad_cols(&mut self, a: Var, start: usize, total: usize) -> Var {
        let v = self.value(a).pad_cols(start, total);
        self.push_op(Op::PadCols(a, start, total), v)
    }

    /// Rows `[start, start+len)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.value(a).slice_rows(start, len);
        self.push_op(Op::SliceRows(a, start, len), v)
    }

    /// Embed as rows `[start, …)` of a height-`total` zero matrix.
    pub fn pad_rows(&mut self, a: Var, start: usize, total: usize) -> Var {
        let v = self.value(a).pad_rows(start, total);
        self.push_op(Op::PadRows(a, start, total), v)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push_op(Op::ConcatCols(a, b), v)
    }

    /// Vertical concatenation `[a; b]`.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_rows(self.value(b));
        self.push_op(Op::ConcatRows(a, b), v)
    }

    /// Circular 1-D unfold (im2col) of a position-major multi-channel signal.
    pub fn unfold1d(&mut self, a: Var, channels: usize, k: usize) -> Var {
        let v = unfold1d_circular(self.value(a), channels, k);
        self.push_op(Op::Unfold1d(a, channels, k), v)
    }

    /// Adjoint of [`Graph::unfold1d`] (scatter-add of windows).
    pub fn fold1d(&mut self, a: Var, b: usize, channels: usize, k: usize) -> Var {
        let v = fold1d_circular(self.value(a), b, channels, k);
        self.push_op(Op::Fold1d(a, b, channels, k), v)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push_op(Op::Tanh(a), v)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::exp);
        self.push_op(Op::Exp(a), v)
    }

    /// Elementwise `sin`.
    pub fn sin(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::sin);
        self.push_op(Op::Sin(a), v)
    }

    /// Elementwise `cos`.
    pub fn cos(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::cos);
        self.push_op(Op::Cos(a), v)
    }

    /// Mean squared error between `pred` and `target` (usually a constant).
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    /// GELU activation (tanh approximation), recorded as a single fused
    /// node: `gelu(x) = 0.5 x (1 + tanh(√(2/π) (x + 0.044715 x³)))`.
    ///
    /// The VJP is emitted in terms of other differentiable primitives, so
    /// higher-order derivatives (the PDE loss) still work.
    pub fn gelu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(gelu_scalar);
        self.push_op(Op::Gelu(x), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_tensor_kernels() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Tensor::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).as_slice(), &[1.5, 1.5, 3.5, 3.5]);
        let m = g.mean(c);
        assert_eq!(g.value(m).item(), 2.5);
    }

    #[test]
    fn gelu_matches_reference_values() {
        // Reference values from the tanh approximation itself, hand-checked
        // against PyTorch's F.gelu(x, approximate='tanh').
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[-2.0, -1.0, 0.0, 1.0, 2.0]));
        let y = g.gelu(x);
        let got = g.value(y).as_slice().to_vec();
        let expect = [-0.045402, -0.158808, 0.0, 0.841192, 1.954598];
        for (a, b) in got.iter().zip(expect) {
            assert!((a - b).abs() < 1e-5, "gelu mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn mse_of_equal_inputs_is_zero() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::ones(3, 1));
        let t = g.constant(Tensor::ones(3, 1));
        let l = g.mse(a, t);
        assert_eq!(g.value(l).item(), 0.0);
    }

    #[test]
    fn slice_pad_concat_shapes() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_fn(2, 4, |r, c| (r * 4 + c) as f64));
        let s = g.slice_cols(a, 1, 2);
        assert_eq!(g.value(s).shape(), (2, 2));
        let p = g.pad_cols(s, 1, 4);
        assert_eq!(g.value(p).get(0, 0), 0.0);
        assert_eq!(g.value(p).get(0, 1), 1.0);
        let b = g.leaf(Tensor::ones(2, 1));
        let cc = g.concat_cols(a, b);
        assert_eq!(g.value(cc).shape(), (2, 5));
    }

    #[test]
    fn unfold_records_correct_value() {
        let mut g = Graph::new();
        let sig = g.leaf(Tensor::row_vector(&[0.0, 1.0, 2.0, 3.0]));
        let u = g.unfold1d(sig, 1, 3);
        assert_eq!(g.value(u).row(0), &[3.0, 0.0, 1.0]);
    }
}
