//! The differentiable backward pass.
//!
//! [`Graph::grad`] walks the tape in reverse topological order (node indices
//! are already topologically sorted because operands always precede their
//! consumers) and **emits new graph nodes** for every adjoint. The returned
//! gradients are ordinary [`Var`]s: summing one and calling `grad` again
//! yields second derivatives, which is exactly how the physics-informed loss
//! obtains `∂²u/∂x²` and then backpropagates it to the weights.
//!
//! In lean mode the adjoint bookkeeping is allocation-frugal: multiple
//! contributions to one adjoint accumulate in place into a single `AddAcc`
//! buffer (instead of an allocate-add-replace chain of binary `Add` nodes),
//! and the elementwise VJP chains of `Tanh`/`Gelu` are emitted as fused
//! kernels. Both transformations are value-preserving bit for bit: each
//! fused kernel performs the same floating-point operations in the same
//! per-element order as the chain it replaces, and duplicated contributions
//! are still delivered as separate accumulate calls so the accumulation
//! order is unchanged.

use crate::graph::{op_inputs, Graph, Op, Var};
use mf_tensor::Layout;

/// Adjoint slot: the accumulated gradient `Var`, plus whether this graph
/// owns it as an in-place-extensible `AddAcc` accumulator.
type Slot = Option<(Var, bool)>;

impl Graph {
    /// Reverse-mode gradients of a scalar `output` with respect to `wrt`.
    ///
    /// Returns one `Var` per entry of `wrt`, in order. Variables that the
    /// output does not depend on receive a zero constant of matching shape.
    ///
    /// Panics if `output` is not `1×1`.
    pub fn grad(&mut self, output: Var, wrt: &[Var]) -> Vec<Var> {
        assert_eq!(
            self.shape_of(output),
            (1, 1),
            "grad: output must be a scalar (got {:?}); reduce with sum()/mean() first",
            self.shape_of(output)
        );
        let n = output.0 + 1;

        // Mark ancestors of `output` that participate in differentiation.
        let mut needed = vec![false; n];
        if self.requires_grad(output) {
            let mut stack = vec![output.0];
            needed[output.0] = true;
            while let Some(i) = stack.pop() {
                for v in op_inputs(self.op(Var(i))) {
                    if self.requires_grad(v) && !needed[v.0] {
                        needed[v.0] = true;
                        stack.push(v.0);
                    }
                }
            }
        }

        let mut adjoint: Vec<Slot> = vec![None; n];
        if needed[output.0] {
            let mut one = self.alloc(1, 1);
            one.set(0, 0, 1.0);
            let seed = self.push(Op::Const, one, false);
            adjoint[output.0] = Some((seed, false));
        }

        for i in (0..n).rev() {
            if !needed[i] {
                continue;
            }
            let Some((g, _)) = adjoint[i] else { continue };
            self.propagate(Var(i), g, &needed, &mut adjoint);
        }

        wrt.iter()
            .map(|&w| match adjoint.get(w.0).copied().flatten() {
                Some((v, _)) => v,
                None => {
                    let (r, c) = self.shape_of(w);
                    let zero = self.alloc(r, c);
                    self.push(Op::Const, zero, false)
                }
            })
            .collect()
    }

    /// Emit VJP nodes for one graph node and accumulate them on its inputs.
    fn propagate(&mut self, node: Var, g: Var, needed: &[bool], adjoint: &mut [Slot]) {
        let op = self.op(node).clone();
        match op {
            Op::Leaf | Op::Const => {}
            Op::Add(a, b) => {
                self.accumulate(a, g, needed, adjoint);
                self.accumulate(b, g, needed, adjoint);
            }
            Op::AddAcc(inputs) => {
                // Distribute in input order; duplicated inputs receive
                // separate contributions, preserving accumulation order.
                for a in inputs {
                    self.accumulate(a, g, needed, adjoint);
                }
            }
            Op::Sub(a, b) => {
                self.accumulate(a, g, needed, adjoint);
                if self.wants(b, needed) {
                    let nb = self.neg(g);
                    self.accumulate(b, nb, needed, adjoint);
                }
            }
            Op::Mul(a, b) => {
                if self.wants(a, needed) {
                    let ga = self.mul(g, b);
                    self.accumulate(a, ga, needed, adjoint);
                }
                if self.wants(b, needed) {
                    let gb = self.mul(g, a);
                    self.accumulate(b, gb, needed, adjoint);
                }
            }
            Op::Neg(a) => {
                if self.wants(a, needed) {
                    let ga = self.neg(g);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::Scale(a, s) => {
                if self.wants(a, needed) {
                    let ga = self.scale(g, s);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::AddScalar(a, _) => self.accumulate(a, g, needed, adjoint),
            Op::MatMul(a, la, b, lb) => {
                use Layout::{Normal as N, Transposed as T};
                if self.wants(a, needed) {
                    let ga = match (la, lb) {
                        (N, N) => self.matmul_layout(g, N, b, T),
                        (T, N) => self.matmul_layout(b, N, g, T),
                        (N, T) => self.matmul_layout(g, N, b, N),
                        (T, T) => self.matmul_layout(b, T, g, T),
                    };
                    self.accumulate(a, ga, needed, adjoint);
                }
                if self.wants(b, needed) {
                    let gb = match (la, lb) {
                        (N, N) => self.matmul_layout(a, T, g, N),
                        (T, N) => self.matmul_layout(a, N, g, N),
                        (N, T) => self.matmul_layout(g, T, a, N),
                        (T, T) => self.matmul_layout(g, T, a, T),
                    };
                    self.accumulate(b, gb, needed, adjoint);
                }
            }
            Op::Transpose(a) => {
                if self.wants(a, needed) {
                    let ga = self.transpose(g);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::SumAll(a) => {
                if self.wants(a, needed) {
                    let (r, c) = self.shape_of(a);
                    let ga = self.broadcast_scalar(g, r, c);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::MeanAll(a) => {
                if self.wants(a, needed) {
                    let (r, c) = self.shape_of(a);
                    let bs = self.broadcast_scalar(g, r, c);
                    let ga = self.scale(bs, 1.0 / (r * c) as f64);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::SumAxis0(a) => {
                if self.wants(a, needed) {
                    let q = self.shape_of(a).0;
                    let ga = self.broadcast_rows(g, q);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::BroadcastRows(a, _) => {
                if self.wants(a, needed) {
                    let ga = self.sum_axis0(g);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::BroadcastScalar(a, _, _) => {
                if self.wants(a, needed) {
                    let ga = self.sum(g);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::RepeatRows(a, q) => {
                if self.wants(a, needed) {
                    let ga = self.sum_groups(g, q);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::SumGroups(a, q) => {
                if self.wants(a, needed) {
                    let ga = self.repeat_rows(g, q);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::Reshape(a, _, _) => {
                if self.wants(a, needed) {
                    let (r, c) = self.shape_of(a);
                    let ga = self.reshape(g, r, c);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::SliceCols(a, start, _len) => {
                if self.wants(a, needed) {
                    let total = self.shape_of(a).1;
                    let ga = self.pad_cols(g, start, total);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::PadCols(a, start, _total) => {
                if self.wants(a, needed) {
                    let len = self.shape_of(a).1;
                    let ga = self.slice_cols(g, start, len);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::SliceRows(a, start, _len) => {
                if self.wants(a, needed) {
                    let total = self.shape_of(a).0;
                    let ga = self.pad_rows(g, start, total);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::PadRows(a, start, _total) => {
                if self.wants(a, needed) {
                    let len = self.shape_of(a).0;
                    let ga = self.slice_rows(g, start, len);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::ConcatCols(a, b) => {
                let ca = self.shape_of(a).1;
                let cb = self.shape_of(b).1;
                if self.wants(a, needed) {
                    let ga = self.slice_cols(g, 0, ca);
                    self.accumulate(a, ga, needed, adjoint);
                }
                if self.wants(b, needed) {
                    let gb = self.slice_cols(g, ca, cb);
                    self.accumulate(b, gb, needed, adjoint);
                }
            }
            Op::ConcatRows(a, b) => {
                let ra = self.shape_of(a).0;
                let rb = self.shape_of(b).0;
                if self.wants(a, needed) {
                    let ga = self.slice_rows(g, 0, ra);
                    self.accumulate(a, ga, needed, adjoint);
                }
                if self.wants(b, needed) {
                    let gb = self.slice_rows(g, ra, rb);
                    self.accumulate(b, gb, needed, adjoint);
                }
            }
            Op::Unfold1d(a, ch, k) => {
                if self.wants(a, needed) {
                    let batch = self.shape_of(a).0;
                    let ga = self.fold1d(g, batch, ch, k);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::Fold1d(a, _b, ch, k) => {
                if self.wants(a, needed) {
                    let ga = self.unfold1d(g, ch, k);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::AddBias(a, b) => {
                self.accumulate(a, g, needed, adjoint);
                if self.wants(b, needed) {
                    let gb = self.sum_axis0(g);
                    self.accumulate(b, gb, needed, adjoint);
                }
            }
            Op::Tanh(a) => {
                if self.wants(a, needed) {
                    if self.is_lean() {
                        // Fused g·(1 − tanh²): one node instead of four,
                        // same per-element arithmetic.
                        let ga = self.tanh_vjp(g, node);
                        self.accumulate(a, ga, needed, adjoint);
                    } else {
                        // d tanh(x) = 1 - tanh(x)², expressed via the forward
                        // output node so it stays differentiable.
                        let y2 = self.mul(node, node);
                        let neg_y2 = self.neg(y2);
                        let one_minus = self.add_scalar(neg_y2, 1.0);
                        let ga = self.mul(g, one_minus);
                        self.accumulate(a, ga, needed, adjoint);
                    }
                }
            }
            Op::TanhVjp(gin, y) => {
                // f(g, y) = g·(1 − y²): ∂f/∂g = 1 − y², ∂f/∂y = −2gy.
                // Emitted exactly like the VJPs of the unfused chain
                // mul(g, add_scalar(neg(mul(y, y)), 1)).
                if self.wants(gin, needed) {
                    let omv = self.one_minus_sq(y);
                    let gg = self.mul(g, omv);
                    self.accumulate(gin, gg, needed, adjoint);
                }
                if self.wants(y, needed) {
                    let hm = self.mul(g, gin);
                    let nhm = self.neg(hm);
                    let c = self.mul(nhm, y);
                    self.accumulate(y, c, needed, adjoint);
                    self.accumulate(y, c, needed, adjoint);
                }
            }
            Op::OneMinusSq(y) => {
                if self.wants(y, needed) {
                    // d(1 − y²) = −2y, delivered as the two mul(−g, y)
                    // contributions the unfused y·y chain would produce.
                    let nh = self.neg(g);
                    let c = self.mul(nh, y);
                    self.accumulate(y, c, needed, adjoint);
                    self.accumulate(y, c, needed, adjoint);
                }
            }
            Op::GeluInner(x, x3) => {
                // u = √(2/π)(x + c·x³): ∂u/∂x = √(2/π), ∂u/∂x³ = √(2/π)·c.
                if self.wants(x, needed) || self.wants(x3, needed) {
                    use crate::ops::{GELU_C, GELU_SQRT_2_OVER_PI};
                    let hs = self.scale(g, GELU_SQRT_2_OVER_PI);
                    self.accumulate(x, hs, needed, adjoint);
                    if self.wants(x3, needed) {
                        let hc = self.scale(hs, GELU_C);
                        self.accumulate(x3, hc, needed, adjoint);
                    }
                }
            }
            Op::GeluDu(x2) => {
                if self.wants(x2, needed) {
                    use crate::ops::{GELU_C, GELU_SQRT_2_OVER_PI};
                    let s1 = self.scale(g, GELU_SQRT_2_OVER_PI);
                    let s2 = self.scale(s1, 3.0 * GELU_C);
                    self.accumulate(x2, s2, needed, adjoint);
                }
            }
            Op::HalfOnePlus(t) => {
                if self.wants(t, needed) {
                    let c = self.scale(g, 0.5);
                    self.accumulate(t, c, needed, adjoint);
                }
            }
            Op::Exp(a) => {
                if self.wants(a, needed) {
                    let ga = self.mul(g, node);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::Sin(a) => {
                if self.wants(a, needed) {
                    let ca = self.cos(a);
                    let ga = self.mul(g, ca);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::Cos(a) => {
                if self.wants(a, needed) {
                    let sa = self.sin(a);
                    let nsa = self.neg(sa);
                    let ga = self.mul(g, nsa);
                    self.accumulate(a, ga, needed, adjoint);
                }
            }
            Op::Gelu(a) => {
                if self.wants(a, needed) {
                    use crate::ops::{GELU_C, GELU_SQRT_2_OVER_PI};
                    if self.is_lean() {
                        // gelu'(x) = ½(1 + t) + ½x (1 − t²)·u'(x) with the
                        // scalar-chain segments fused: 12 nodes instead of
                        // 18, same per-element arithmetic and accumulation
                        // order as the unfused chain below.
                        let x2 = self.mul(a, a);
                        let x3 = self.mul(x2, a);
                        let u = self.gelu_inner(a, x3);
                        let t = self.tanh(u);
                        let term1 = self.half_one_plus(t);
                        let omv = self.one_minus_sq(t);
                        let du = self.gelu_du(x2);
                        let half_x = self.scale(a, 0.5);
                        let hs = self.mul(half_x, omv);
                        let term2 = self.mul(hs, du);
                        let deriv = self.add(term1, term2);
                        let ga = self.mul(g, deriv);
                        self.accumulate(a, ga, needed, adjoint);
                    } else {
                        // gelu'(x) = ½(1 + t) + ½x (1 − t²)·u'(x),
                        // t = tanh(u), u = √(2/π)(x + c x³), u' = √(2/π)(1 + 3c x²).
                        // Rebuilt from primitives so it stays differentiable.
                        let x2 = self.mul(a, a);
                        let x3 = self.mul(x2, a);
                        let cx3 = self.scale(x3, GELU_C);
                        let inner = self.add(a, cx3);
                        let u = self.scale(inner, GELU_SQRT_2_OVER_PI);
                        let t = self.tanh(u);
                        let one_plus = self.add_scalar(t, 1.0);
                        let term1 = self.scale(one_plus, 0.5);
                        let t2 = self.mul(t, t);
                        let nt2 = self.neg(t2);
                        let sech2 = self.add_scalar(nt2, 1.0);
                        let du_a = self.scale(x2, 3.0 * GELU_C);
                        let du_b = self.add_scalar(du_a, 1.0);
                        let du = self.scale(du_b, GELU_SQRT_2_OVER_PI);
                        let half_x = self.scale(a, 0.5);
                        let hs = self.mul(half_x, sech2);
                        let term2 = self.mul(hs, du);
                        let deriv = self.add(term1, term2);
                        let ga = self.mul(g, deriv);
                        self.accumulate(a, ga, needed, adjoint);
                    }
                }
            }
        }
    }

    #[inline]
    fn wants(&self, v: Var, needed: &[bool]) -> bool {
        v.0 < needed.len() && needed[v.0]
    }

    /// Fold `contribution` into `target`'s adjoint slot.
    ///
    /// Legacy mode chains binary `Add` nodes (allocate-add-replace). Lean
    /// mode grows a single `AddAcc` accumulator: the second contribution
    /// allocates the accumulator buffer, every further one adds in place
    /// and re-pushes the node with the extended input list (the superseded
    /// accumulator is hollowed out, never mutated — in-place op mutation
    /// would put higher-index inputs on a lower-index node and break the
    /// reverse sweep of later backward passes). The accumulated value is
    /// `((c₁+c₂)+c₃)+…` in arrival order either way, hence bitwise equal.
    fn accumulate(
        &mut self,
        target: Var,
        contribution: Var,
        needed: &[bool],
        adjoint: &mut [Slot],
    ) {
        if !self.wants(target, needed) {
            return;
        }
        if !self.is_lean() {
            adjoint[target.0] = Some((
                match adjoint[target.0] {
                    None => contribution,
                    Some((prev, _)) => self.add(prev, contribution),
                },
                false,
            ));
            return;
        }
        adjoint[target.0] = Some(match adjoint[target.0] {
            None => (contribution, false),
            Some((prev, false)) => {
                let (r, c) = self.shape_of(prev);
                let mut val = self.alloc(r, c);
                self.value(prev)
                    .add_into(self.value(contribution), &mut val);
                let acc = self.push_op(Op::AddAcc(vec![prev, contribution]), val);
                (acc, true)
            }
            Some((acc, true)) => {
                let mut inputs = match self.op(acc) {
                    Op::AddAcc(inputs) => inputs.clone(),
                    _ => unreachable!("owned adjoint slot must be an AddAcc node"),
                };
                let mut val = self.take_value(acc);
                val.add_assign(self.value(contribution));
                inputs.push(contribution);
                let next = self.push_op(Op::AddAcc(inputs), val);
                (next, true)
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use mf_tensor::Tensor;

    #[test]
    fn grad_of_linear_combination() {
        // f = 3a + 2b ⇒ df/da = 3, df/db = 2
        let mut g = Graph::new();
        let a = g.leaf(Tensor::scalar(5.0));
        let b = g.leaf(Tensor::scalar(7.0));
        let ta = g.scale(a, 3.0);
        let tb = g.scale(b, 2.0);
        let f = g.add(ta, tb);
        let grads = g.grad(f, &[a, b]);
        assert_eq!(g.value(grads[0]).item(), 3.0);
        assert_eq!(g.value(grads[1]).item(), 2.0);
    }

    #[test]
    fn grad_of_matmul_is_correct() {
        // f = sum(A·B): dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let f = g.sum(c);
        let grads = g.grad(f, &[a, b]);
        // dA[i,j] = sum_k B[j,k]
        assert_eq!(g.value(grads[0]).as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[i,j] = sum_k A[k,i]
        assert_eq!(g.value(grads[1]).as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn unused_variable_gets_zero_grad() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::scalar(1.0));
        let b = g.leaf(Tensor::ones(2, 3));
        let f = g.mul(a, a);
        let s = g.sum(f);
        let grads = g.grad(s, &[a, b]);
        assert_eq!(g.value(grads[0]).item(), 2.0);
        assert_eq!(g.value(grads[1]).shape(), (2, 3));
        assert_eq!(g.value(grads[1]).norm_linf(), 0.0);
    }

    #[test]
    fn second_derivative_of_cubic() {
        // f = x³ summed; f' = 3x², f'' = 6x, f''' = 6.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[1.0, 2.0, -1.5]));
        let x2 = g.mul(x, x);
        let x3 = g.mul(x2, x);
        let f = g.sum(x3);
        let d1 = g.grad(f, &[x])[0];
        assert!(g
            .value(d1)
            .allclose(&Tensor::row_vector(&[3.0, 12.0, 6.75]), 1e-12));
        let s1 = g.sum(d1);
        let d2 = g.grad(s1, &[x])[0];
        assert!(g
            .value(d2)
            .allclose(&Tensor::row_vector(&[6.0, 12.0, -9.0]), 1e-12));
        let s2 = g.sum(d2);
        let d3 = g.grad(s2, &[x])[0];
        assert!(g.value(d3).allclose(&Tensor::full(1, 3, 6.0), 1e-12));
    }

    #[test]
    fn tanh_derivatives() {
        // d tanh = 1 - tanh², d² tanh = -2 tanh (1 - tanh²).
        let mut g = Graph::new();
        let x0 = 0.37;
        let x = g.leaf(Tensor::scalar(x0));
        let y = g.tanh(x);
        let d1 = g.grad(y, &[x])[0];
        let t = x0.tanh();
        assert!((g.value(d1).item() - (1.0 - t * t)).abs() < 1e-12);
        let d2 = g.grad(d1, &[x])[0];
        assert!((g.value(d2).item() - (-2.0 * t * (1.0 - t * t))).abs() < 1e-12);
    }

    #[test]
    fn exp_is_its_own_derivative() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(0.8));
        let y = g.exp(x);
        let d1 = g.grad(y, &[x])[0];
        let d2 = g.grad(d1, &[x])[0];
        let e = (0.8f64).exp();
        assert!((g.value(d1).item() - e).abs() < 1e-12);
        assert!((g.value(d2).item() - e).abs() < 1e-12);
    }

    #[test]
    fn grad_through_shared_subexpression_accumulates() {
        // f = x·y + x ⇒ df/dx = y + 1.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        let y = g.leaf(Tensor::scalar(5.0));
        let xy = g.mul(x, y);
        let f = g.add(xy, x);
        let d = g.grad(f, &[x])[0];
        assert_eq!(g.value(d).item(), 6.0);
    }

    #[test]
    fn many_contributions_accumulate_in_one_buffer() {
        // f = x + x + x + x (four contributions to x's adjoint).
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[1.0, -2.0]));
        let s1 = g.add(x, x);
        let s2 = g.add(s1, x);
        let s3 = g.add(s2, x);
        let f = g.sum(s3);
        let d = g.grad(f, &[x])[0];
        assert_eq!(g.value(d).as_slice(), &[4.0, 4.0]);
        // The adjoint is a single AddAcc node with four inputs.
        assert!(matches!(g.op(d), Op::AddAcc(inputs) if inputs.len() == 4));
    }

    #[test]
    fn grad_through_repeat_and_sum_groups() {
        // f = sum(repeat_rows(x, q) * c): df/dx[i] = sum of the q copies' weights.
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(2, 1, vec![1.0, 2.0]));
        let c = g.constant(Tensor::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]));
        let r = g.repeat_rows(x, 2);
        let p = g.mul(r, c);
        let f = g.sum(p);
        let d = g.grad(f, &[x])[0];
        assert_eq!(g.value(d).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn grad_through_unfold() {
        // f = sum(unfold(x)) counts every position k times (circular).
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        let u = g.unfold1d(x, 1, 3);
        let f = g.sum(u);
        let d = g.grad(f, &[x])[0];
        assert!(g.value(d).allclose(&Tensor::full(1, 5, 3.0), 1e-12));
    }

    #[test]
    fn grad_through_slices_and_concat() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[1.0, 2.0, 3.0, 4.0]));
        let left = g.slice_cols(x, 0, 2);
        let right = g.slice_cols(x, 2, 2);
        let two_right = g.scale(right, 2.0);
        let cat = g.concat_cols(left, two_right);
        let f = g.sum(cat);
        let d = g.grad(f, &[x])[0];
        assert_eq!(g.value(d).as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn grad_through_add_bias_matches_broadcast_chain() {
        let x_t = Tensor::from_fn(4, 3, |r, c| ((r * 3 + c) as f64 * 0.21).sin());
        let b_t = Tensor::row_vector(&[0.3, -0.2, 0.15]);
        let run = |g: &mut Graph| {
            let x = g.leaf(x_t.clone());
            let b = g.leaf(b_t.clone());
            let y = g.add_bias(x, b);
            let t = g.tanh(y);
            let f = g.mean(t);
            let d = g.grad(f, &[x, b]);
            (g.value(d[0]).clone(), g.value(d[1]).clone())
        };
        let (dx_lean, db_lean) = run(&mut Graph::new());
        let (dx_leg, db_leg) = run(&mut Graph::new_legacy());
        for (a, b) in dx_lean.as_slice().iter().zip(dx_leg.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in db_lean.as_slice().iter().zip(db_leg.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "must be a scalar")]
    fn grad_rejects_non_scalar_output() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(2, 2));
        let y = g.mul(x, x);
        let _ = g.grad(y, &[x]);
    }

    #[test]
    fn grad_wrt_constant_output_is_zero() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(3.0));
        let c = g.constant(Tensor::scalar(4.0));
        let f = g.mul(c, c);
        let s = g.sum(f);
        let d = g.grad(s, &[x])[0];
        assert_eq!(g.value(d).item(), 0.0);
    }

    #[test]
    fn gelu_first_derivative_matches_finite_difference() {
        let h = 1e-6;
        for &x0 in &[-1.5, -0.3, 0.0, 0.7, 2.1] {
            let mut g = Graph::new();
            let x = g.leaf(Tensor::scalar(x0));
            let y = g.gelu(x);
            let d = g.grad(y, &[x])[0];
            let analytic = g.value(d).item();

            let eval = |v: f64| {
                let mut gg = Graph::new();
                let xx = gg.leaf(Tensor::scalar(v));
                let yy = gg.gelu(xx);
                gg.value(yy).item()
            };
            let numeric = (eval(x0 + h) - eval(x0 - h)) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "gelu'({x0}): analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// The design claim of the lean backward: fused kernels and AddAcc
    /// accumulation reproduce the legacy chain bitwise through two orders
    /// of differentiation. At third order the values may differ by a few
    /// ulps: the legacy Tanh/Gelu VJP chains *reuse* their first-backward
    /// intermediate nodes (e.g. `1 − t²`), so third-order adjoints sum the
    /// same terms in a different association order than the fused ops,
    /// which emit fresh nodes. That is far inside the 1e-9 golden-fixture
    /// tolerance.
    #[test]
    fn lean_and_legacy_derivatives_bitwise_equal_to_third_order() {
        let x_t = Tensor::row_vector(&[-1.3, -0.4, 0.0, 0.31, 0.9, 1.7]);
        let run = |g: &mut Graph| {
            let x = g.leaf(x_t.clone());
            let t = g.tanh(x);
            let e = g.gelu(t);
            let f = g.sum(e);
            let d1 = g.grad(f, &[x])[0];
            let s1 = g.sum(d1);
            let d2 = g.grad(s1, &[x])[0];
            let s2 = g.sum(d2);
            let d3 = g.grad(s2, &[x])[0];
            (
                g.value(d1).clone(),
                g.value(d2).clone(),
                g.value(d3).clone(),
            )
        };
        let lean = run(&mut Graph::new());
        let legacy = run(&mut Graph::new_legacy());
        for (x, y) in lean.0.as_slice().iter().zip(legacy.0.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "order-1 drifted: {x:e} vs {y:e}");
        }
        for (x, y) in lean.1.as_slice().iter().zip(legacy.1.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "order-2 drifted: {x:e} vs {y:e}");
        }
        for (x, y) in lean.2.as_slice().iter().zip(legacy.2.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-12 * y.abs().max(1.0),
                "order-3 drifted beyond 1e-12: {x:e} vs {y:e}"
            );
        }
    }
}
