//! Covariance kernels for 1-D Gaussian processes.

use mf_tensor::Tensor;

/// A stationary 1-D covariance kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Kernel1d {
    /// Squared exponential `σ² exp(-(t−t')²/(2ℓ²))` — the "infinitely
    /// differentiable Gaussian kernel" of the paper.
    Rbf {
        /// Length scale ℓ.
        lengthscale: f64,
        /// Signal variance σ².
        variance: f64,
    },
    /// Periodic squared exponential (MacKay),
    /// `σ² exp(-2 sin²(π(t−t')/p)/ℓ²)` with period `p = 1`.
    ///
    /// On a closed boundary curve parameterized by `t ∈ [0,1)`, this
    /// kernel produces sample functions that wrap around smoothly, so the
    /// generated boundary condition has no artificial jump at the walk
    /// origin.
    Periodic {
        /// Length scale ℓ.
        lengthscale: f64,
        /// Signal variance σ².
        variance: f64,
    },
}

impl Kernel1d {
    /// Evaluate `k(s, t)`.
    pub fn eval(&self, s: f64, t: f64) -> f64 {
        match *self {
            Kernel1d::Rbf {
                lengthscale,
                variance,
            } => {
                let d = s - t;
                variance * (-d * d / (2.0 * lengthscale * lengthscale)).exp()
            }
            Kernel1d::Periodic {
                lengthscale,
                variance,
            } => {
                let d = (std::f64::consts::PI * (s - t)).sin();
                variance * (-2.0 * d * d / (lengthscale * lengthscale)).exp()
            }
        }
    }

    /// Signal variance σ² (the kernel's value at zero lag).
    pub fn variance(&self) -> f64 {
        match *self {
            Kernel1d::Rbf { variance, .. } | Kernel1d::Periodic { variance, .. } => variance,
        }
    }
}

/// Dense covariance matrix `K[i][j] = k(points[i], points[j])`.
pub fn kernel_matrix(kernel: &Kernel1d, points: &[f64]) -> Tensor {
    let n = points.len();
    let mut k = Tensor::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = kernel.eval(points[i], points[j]);
            k.set(i, j, v);
            k.set(j, i, v);
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky;

    #[test]
    fn diagonal_equals_variance() {
        for k in [
            Kernel1d::Rbf {
                lengthscale: 0.3,
                variance: 1.7,
            },
            Kernel1d::Periodic {
                lengthscale: 0.5,
                variance: 0.9,
            },
        ] {
            assert!((k.eval(0.42, 0.42) - k.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_matrix_is_symmetric_and_psd() {
        let pts: Vec<f64> = (0..24).map(|i| i as f64 / 24.0).collect();
        for k in [
            Kernel1d::Rbf {
                lengthscale: 0.2,
                variance: 1.0,
            },
            Kernel1d::Periodic {
                lengthscale: 0.7,
                variance: 1.0,
            },
        ] {
            let m = kernel_matrix(&k, &pts);
            assert!(m.allclose(&m.transpose(), 1e-14));
            assert!(cholesky(&m).is_ok(), "kernel {k:?} not PSD");
        }
    }

    #[test]
    fn correlation_decays_with_distance() {
        let k = Kernel1d::Rbf {
            lengthscale: 0.1,
            variance: 1.0,
        };
        assert!(k.eval(0.0, 0.05) > k.eval(0.0, 0.2));
        assert!(k.eval(0.0, 0.5) < 1e-5);
    }

    #[test]
    fn periodic_kernel_wraps() {
        let k = Kernel1d::Periodic {
            lengthscale: 0.5,
            variance: 1.0,
        };
        // t=0.01 and t=0.99 are close on the circle.
        assert!((k.eval(0.0, 0.99) - k.eval(0.0, 0.01)).abs() < 1e-12);
        assert!(k.eval(0.0, 0.99) > k.eval(0.0, 0.5));
    }

    #[test]
    fn shorter_lengthscale_gives_rougher_correlation() {
        let tight = Kernel1d::Rbf {
            lengthscale: 0.05,
            variance: 1.0,
        };
        let loose = Kernel1d::Rbf {
            lengthscale: 0.5,
            variance: 1.0,
        };
        assert!(tight.eval(0.0, 0.1) < loose.eval(0.0, 0.1));
    }
}
