#![warn(missing_docs)]

//! Boundary-condition generation: Sobol sequences and 1-D Gaussian
//! processes.
//!
//! The paper (§5.1) builds its datasets by (1) sampling the hyperparameters
//! of an infinitely differentiable Gaussian kernel with a Sobol sequence,
//! (2) drawing one sample function per Gaussian process, and (3) using that
//! 1-D curve as the discretized boundary function `ĝ` of a Laplace BVP.
//! This crate implements that pipeline from scratch:
//!
//! * [`Sobol`] — a direction-number Sobol sequence (Joe–Kuo initialization,
//!   first 10 dimensions),
//! * [`Kernel1d`] — squared-exponential and periodic squared-exponential
//!   kernels (the boundary of a rectangle is a closed curve, so the
//!   periodic kernel produces boundary functions with no corner jump),
//! * [`cholesky`] — dense Cholesky factorization with jitter retry,
//! * [`GpSampler`] / [`BoundarySampler`] — draw boundary curves.

mod chol;
mod kernel;
mod sampler;
mod sobol;

pub use chol::{cholesky, CholeskyError};
pub use kernel::{kernel_matrix, Kernel1d};
pub use sampler::{standard_normal, BoundarySampler, GpSampler};
pub use sobol::Sobol;
