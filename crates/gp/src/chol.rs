//! Dense Cholesky factorization with jitter retry, used to sample from
//! Gaussian-process covariance matrices.

use mf_tensor::Tensor;

/// Failure to factor a matrix even after jitter boosts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CholeskyError {
    /// The pivot that went non-positive.
    pub pivot: usize,
    /// The largest jitter that was attempted.
    pub jitter: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cholesky failed at pivot {} even with jitter {:.1e}; matrix is not PSD",
            self.pivot, self.jitter
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A + εI`.
///
/// Kernel matrices of smooth kernels are notoriously ill-conditioned, so a
/// small diagonal jitter is added and escalated (×10, up to six times)
/// until the factorization succeeds — the standard GP-library recipe.
pub fn cholesky(a: &Tensor) -> Result<Tensor, CholeskyError> {
    let (n, m) = a.shape();
    assert_eq!(n, m, "cholesky: matrix must be square, got {n}x{m}");
    let base_jitter = 1e-10 * mean_diag(a).max(1.0);
    let mut jitter = 0.0;
    for attempt in 0..8 {
        match try_factor(a, jitter) {
            Ok(l) => return Ok(l),
            Err(p) => {
                if attempt == 7 {
                    return Err(CholeskyError { pivot: p, jitter });
                }
                jitter = if jitter == 0.0 {
                    base_jitter
                } else {
                    jitter * 10.0
                };
            }
        }
    }
    unreachable!()
}

fn mean_diag(a: &Tensor) -> f64 {
    let n = a.rows();
    (0..n).map(|i| a.get(i, i)).sum::<f64>() / n as f64
}

fn try_factor(a: &Tensor, jitter: f64) -> Result<Tensor, usize> {
    let n = a.rows();
    let mut l = Tensor::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            if i == j {
                s += jitter;
            }
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 {
                    return Err(i);
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_identity() {
        let l = cholesky(&Tensor::eye(4)).unwrap();
        assert!(l.allclose(&Tensor::eye(4), 1e-9));
    }

    #[test]
    fn reconstructs_spd_matrix() {
        // A = M·Mᵀ + I is SPD for any M.
        let m = Tensor::from_fn(5, 5, |r, c| ((r * 5 + c) as f64 * 0.37).sin());
        let a = m.matmul(&m.transpose()).add(&Tensor::eye(5));
        let l = cholesky(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        assert!(rec.allclose(&a, 1e-8), "max diff {}", rec.max_abs_diff(&a));
    }

    #[test]
    fn factor_is_lower_triangular() {
        let m = Tensor::from_fn(4, 4, |r, c| ((r + 2 * c) as f64).cos());
        let a = m.matmul(&m.transpose()).add(&Tensor::eye(4).scale(2.0));
        let l = cholesky(&a).unwrap();
        for r in 0..4 {
            for c in r + 1..4 {
                assert_eq!(l.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn jitter_rescues_near_singular_matrix() {
        // Rank-1 matrix: PSD but singular; jitter should let it factor.
        let v = Tensor::col_vector(&[1.0, 2.0, 3.0]);
        let a = v.matmul(&v.transpose());
        let l = cholesky(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }
}
