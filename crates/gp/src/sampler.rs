//! Drawing boundary curves from Gaussian processes.

use crate::{cholesky, kernel_matrix, Kernel1d, Sobol};
use mf_tensor::Tensor;
use rand::Rng;

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A zero-mean Gaussian process discretized on a fixed set of points,
/// ready to draw sample functions.
pub struct GpSampler {
    points: Vec<f64>,
    chol: Tensor,
}

impl GpSampler {
    /// Precompute the Cholesky factor of the kernel matrix on `points`.
    pub fn new(kernel: &Kernel1d, points: &[f64]) -> Self {
        let k = kernel_matrix(kernel, points);
        let chol = cholesky(&k).expect("GP kernel matrix must be PSD");
        Self {
            points: points.to_vec(),
            chol,
        }
    }

    /// Number of discretization points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sampler has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Draw one sample function as a `1×n` row vector: `f = L·z`,
    /// `z ~ N(0, I)`.
    pub fn sample(&self, rng: &mut impl Rng) -> Tensor {
        let n = self.len();
        let z = Tensor::from_fn(n, 1, |_, _| standard_normal(rng));
        self.chol.matmul(&z).transpose()
    }
}

/// Generates boundary conditions following §5.1 of the paper: a Sobol
/// sequence sweeps the GP hyperparameters, and each hyperparameter setting
/// yields one GP from which a boundary curve is drawn.
pub struct BoundarySampler {
    sobol: Sobol,
    lengthscale_range: (f64, f64),
    variance_range: (f64, f64),
    periodic: bool,
    points: Vec<f64>,
}

impl BoundarySampler {
    /// Sampler for boundary walks of `n_points`, parameterized by arc
    /// length `t ∈ [0, 1)`. `periodic` selects the wrap-around kernel
    /// (recommended for closed boundary curves).
    pub fn new(
        n_points: usize,
        lengthscale_range: (f64, f64),
        variance_range: (f64, f64),
        periodic: bool,
    ) -> Self {
        assert!(n_points >= 2, "BoundarySampler: need at least 2 points");
        assert!(lengthscale_range.0 > 0.0, "lengthscale must be positive");
        let points = (0..n_points).map(|i| i as f64 / n_points as f64).collect();
        Self {
            sobol: Sobol::new(2),
            lengthscale_range,
            variance_range,
            periodic,
            points,
        }
    }

    /// Defaults tuned like the paper's data generator: smooth-to-moderate
    /// length scales, unit-order variance, periodic kernel.
    pub fn with_defaults(n_points: usize) -> Self {
        Self::new(n_points, (0.15, 0.6), (0.5, 1.5), true)
    }

    /// Draw the next boundary condition (a `1×n_points` row vector).
    ///
    /// Hyperparameters advance along the Sobol sequence; the curve itself
    /// is drawn with `rng`.
    pub fn sample(&mut self, rng: &mut impl Rng) -> Tensor {
        let hp = self
            .sobol
            .next_in_ranges(&[self.lengthscale_range, self.variance_range]);
        let kernel = if self.periodic {
            Kernel1d::Periodic {
                lengthscale: hp[0],
                variance: hp[1],
            }
        } else {
            Kernel1d::Rbf {
                lengthscale: hp[0],
                variance: hp[1],
            }
        };
        GpSampler::new(&kernel, &self.points).sample(rng)
    }

    /// Draw `count` boundary conditions stacked as a `count×n_points`
    /// matrix.
    pub fn sample_batch(&mut self, count: usize, rng: &mut impl Rng) -> Tensor {
        let rows: Vec<Tensor> = (0..count).map(|_| self.sample(rng)).collect();
        Tensor::vstack(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gp_sample_has_kernel_marginal_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let pts: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let sampler = GpSampler::new(
            &Kernel1d::Rbf {
                lengthscale: 0.2,
                variance: 2.0,
            },
            &pts,
        );
        let trials = 3000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let s = sampler.sample(&mut rng);
            acc += s.as_slice().iter().map(|v| v * v).sum::<f64>() / s.numel() as f64;
        }
        let var = acc / trials as f64;
        assert!((var - 2.0).abs() < 0.25, "marginal variance {var}");
    }

    #[test]
    fn gp_samples_are_smooth_relative_to_white_noise() {
        // Neighboring points of a long-lengthscale GP are highly correlated:
        // the mean squared increment is far below 2·variance.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let pts: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
        let sampler = GpSampler::new(
            &Kernel1d::Periodic {
                lengthscale: 0.6,
                variance: 1.0,
            },
            &pts,
        );
        let mut incr = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let s = sampler.sample(&mut rng);
            let v = s.as_slice();
            incr += v
                .windows(2)
                .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
                .sum::<f64>()
                / (v.len() - 1) as f64;
        }
        incr /= trials as f64;
        assert!(
            incr < 0.05,
            "mean squared increment {incr} too large for a smooth GP"
        );
    }

    #[test]
    fn periodic_sampler_wraps_smoothly() {
        // The increment across the wrap point matches interior increments.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut bs = BoundarySampler::with_defaults(64);
        let mut wrap_incr = 0.0;
        let mut interior_incr = 0.0;
        let trials = 300;
        for _ in 0..trials {
            let s = bs.sample(&mut rng);
            let v = s.as_slice();
            wrap_incr += (v[0] - v[63]) * (v[0] - v[63]);
            interior_incr += v
                .windows(2)
                .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
                .sum::<f64>()
                / (v.len() - 1) as f64;
        }
        wrap_incr /= trials as f64;
        interior_incr /= trials as f64;
        // The wrap step must look statistically like any interior step.
        assert!(
            wrap_incr < 3.0 * interior_incr + 1e-6,
            "wrap increment {wrap_incr} vs interior {interior_incr}: curve not periodic"
        );
    }

    #[test]
    fn batch_shapes_and_diversity() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let mut bs = BoundarySampler::with_defaults(32);
        let batch = bs.sample_batch(5, &mut rng);
        assert_eq!(batch.shape(), (5, 32));
        // Different Sobol hyperparameters + different noise ⇒ distinct rows.
        for r in 1..5 {
            let diff: f64 = batch
                .row(0)
                .iter()
                .zip(batch.row(r))
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(diff > 1e-3, "rows 0 and {r} are identical");
        }
    }
}
