//! Sobol low-discrepancy sequence with Joe–Kuo direction numbers.
//!
//! The paper uses a Sobol sequence to sweep Gaussian-process kernel
//! hyperparameters evenly. This implementation covers the first 10
//! dimensions with the standard new-Joe-Kuo-6 initialization and uses the
//! Gray-code construction, so generating each point costs O(dim).

/// Maximum supported dimensionality.
pub const MAX_DIM: usize = 10;

/// Bits of precision (outputs are multiples of 2⁻³²).
const BITS: usize = 32;

/// Joe–Kuo parameters for dimensions 2..=10: (s, a, m[0..s]).
/// Dimension 1 is the van der Corput sequence in base 2.
const JOE_KUO: &[(usize, u32, &[u32])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
];

/// A Sobol sequence iterator producing points in `[0, 1)^dim`.
///
/// The sequence starts at index 0 (the all-zeros point), preserving the
/// exact dyadic stratification property of Sobol points: the first `2^k`
/// points place the same number of samples in every dyadic box.
pub struct Sobol {
    dim: usize,
    index: u64,
    state: Vec<u32>,
    directions: Vec<[u32; BITS]>,
}

impl Sobol {
    /// A new sequence of the given dimensionality (1..=10).
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=MAX_DIM).contains(&dim),
            "Sobol supports 1..={MAX_DIM} dimensions, got {dim}"
        );
        let mut directions = Vec::with_capacity(dim);
        // Dimension 1: v_k = 2^(31-k).
        let mut v0 = [0u32; BITS];
        for (k, v) in v0.iter_mut().enumerate() {
            *v = 1 << (31 - k);
        }
        directions.push(v0);

        for d in 1..dim {
            let (s, a, m) = JOE_KUO[d - 1];
            let mut v = [0u32; BITS];
            for k in 0..BITS {
                if k < s {
                    v[k] = m[k] << (31 - k);
                } else {
                    let mut value = v[k - s] ^ (v[k - s] >> s);
                    for j in 1..s {
                        if (a >> (s - 1 - j)) & 1 == 1 {
                            value ^= v[k - j];
                        }
                    }
                    v[k] = value;
                }
            }
            directions.push(v);
        }

        Self {
            dim,
            index: 0,
            state: vec![0; dim],
            directions,
        }
    }

    /// Dimensionality of the sequence.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The next point, scaled into `[0, 1)^dim`.
    pub fn next_point(&mut self) -> Vec<f64> {
        // Emit the current state (point `index`), then advance with the
        // Gray-code step: x_{n+1} = x_n ⊕ v[ctz(n+1)].
        let out: Vec<f64> = self
            .state
            .iter()
            .map(|&s| s as f64 / (1u64 << 32) as f64)
            .collect();
        self.index += 1;
        let c = (self.index.trailing_zeros() as usize).min(BITS - 1);
        for d in 0..self.dim {
            self.state[d] ^= self.directions[d][c];
        }
        out
    }

    /// The next point, affinely mapped into per-dimension ranges.
    pub fn next_in_ranges(&mut self, ranges: &[(f64, f64)]) -> Vec<f64> {
        assert_eq!(
            ranges.len(),
            self.dim,
            "next_in_ranges: range count mismatch"
        );
        self.next_point()
            .into_iter()
            .zip(ranges)
            .map(|(t, &(lo, hi))| lo + t * (hi - lo))
            .collect()
    }
}

impl Iterator for Sobol {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        Some(self.next_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_dimension_is_van_der_corput() {
        let mut s = Sobol::new(1);
        let pts: Vec<f64> = (0..8).map(|_| s.next_point()[0]).collect();
        assert_eq!(pts, vec![0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125]);
    }

    #[test]
    fn second_dimension_known_prefix() {
        let mut s = Sobol::new(2);
        let pts: Vec<Vec<f64>> = (0..4).map(|_| s.next_point()).collect();
        assert_eq!(pts[0], vec![0.0, 0.0]);
        assert_eq!(pts[1], vec![0.5, 0.5]);
        assert_eq!(pts[2], vec![0.75, 0.25]);
        assert_eq!(pts[3], vec![0.25, 0.75]);
    }

    #[test]
    fn points_stay_in_unit_cube() {
        let mut s = Sobol::new(5);
        for _ in 0..1000 {
            let p = s.next_point();
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)), "{p:?}");
        }
    }

    #[test]
    fn dyadic_stratification_in_each_dimension() {
        // The first 2^k points of a Sobol sequence place exactly 2^(k-m)
        // points in every dyadic interval of length 2^-m, per dimension.
        let dim = 4;
        let mut s = Sobol::new(dim);
        let n = 256;
        let pts: Vec<Vec<f64>> = (0..n).map(|_| s.next_point()).collect();
        for d in 0..dim {
            let m = 4; // 16 intervals
            let mut counts = vec![0usize; 1 << m];
            for p in &pts {
                counts[(p[d] * (1 << m) as f64) as usize] += 1;
            }
            for (i, &c) in counts.iter().enumerate() {
                assert_eq!(c, n / (1 << m), "dim {d} interval {i}: count {c}");
            }
        }
    }

    #[test]
    fn low_discrepancy_beats_random_grid_pairwise() {
        // 2-D stratification: the first 64 points put exactly one point in
        // each cell of the 8x8 grid.
        let mut s = Sobol::new(2);
        let mut cells = vec![0usize; 64];
        for _ in 0..64 {
            let p = s.next_point();
            let cx = (p[0] * 8.0) as usize;
            let cy = (p[1] * 8.0) as usize;
            cells[cy * 8 + cx] += 1;
        }
        assert!(cells.iter().all(|&c| c == 1), "{cells:?}");
    }

    #[test]
    fn ranges_are_respected() {
        let mut s = Sobol::new(2);
        for _ in 0..100 {
            let p = s.next_in_ranges(&[(0.1, 0.5), (-2.0, 2.0)]);
            assert!((0.1..0.5).contains(&p[0]));
            assert!((-2.0..2.0).contains(&p[1]));
        }
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn rejects_unsupported_dimension() {
        let _ = Sobol::new(11);
    }
}
