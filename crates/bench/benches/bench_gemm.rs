//! Criterion benches of the GEMM kernel — the compute primitive behind
//! every SDNet forward/backward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_tensor::{gemm, Layout, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random(rng: &mut impl Rng, r: usize, c: usize) -> Tensor {
    Tensor::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for n in [32usize, 64, 128, 256] {
        let a = random(&mut rng, n, n);
        let b = random(&mut rng, n, n);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

fn bench_sdnet_shapes(c: &mut Criterion) {
    // The first-layer shapes of the split model: [B,emb]·[emb,d]ᵀ plus
    // [B·q,2]·[2,d]ᵀ vs the concat model's [B·q, emb+2]·[emb+2,d]ᵀ.
    let mut group = c.benchmark_group("gemm_first_layer");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let (bsz, q, emb, d) = (8usize, 128usize, 128usize, 64usize);
    let g = random(&mut rng, bsz, emb);
    let wg = random(&mut rng, d, emb);
    let x = random(&mut rng, bsz * q, 2);
    let wx = random(&mut rng, d, 2);
    let concat_in = random(&mut rng, bsz * q, emb + 2);
    let w = random(&mut rng, d, emb + 2);

    group.bench_function("split", |bch| {
        bch.iter(|| {
            let hg = gemm(&g, Layout::Normal, &wg, Layout::Transposed);
            let hx = gemm(&x, Layout::Normal, &wx, Layout::Transposed);
            hg.repeat_rows(q).add(&hx)
        });
    });
    group.bench_function("concat", |bch| {
        bch.iter(|| gemm(&concat_in, Layout::Normal, &w, Layout::Transposed));
    });
    group.finish();
}

criterion_group!(benches, bench_square, bench_sdnet_shapes);
criterion_main!(benches);
