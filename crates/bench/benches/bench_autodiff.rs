//! Criterion benches of the autodiff engine: forward tape building, first
//! gradients, and the double-backward pattern of the PDE loss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_autodiff::Graph;
use mf_tensor::{Layout, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random(rng: &mut impl Rng, r: usize, c: usize) -> Tensor {
    Tensor::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
}

/// A 3-layer GELU MLP forward on the graph; returns (loss, input var).
fn mlp_forward(
    g: &mut Graph,
    x: &Tensor,
    weights: &[(Tensor, Tensor)],
) -> (mf_autodiff::Var, mf_autodiff::Var) {
    let xv = g.leaf(x.clone());
    let mut h = xv;
    for (w, b) in weights {
        let wv = g.constant(w.clone());
        let bv = g.constant(b.clone());
        let lin = g.matmul_layout(h, Layout::Normal, wv, Layout::Transposed);
        let q = g.value(lin).rows();
        let bb = g.broadcast_rows(bv, q);
        let pre = g.add(lin, bb);
        h = g.gelu(pre);
    }
    let s = g.sum(h);
    (s, xv)
}

fn weights(rng: &mut impl Rng, din: usize, width: usize, layers: usize) -> Vec<(Tensor, Tensor)> {
    let mut out = Vec::new();
    let mut d = din;
    for _ in 0..layers {
        out.push((random(rng, width, d), random(rng, 1, width)));
        d = width;
    }
    out
}

fn bench_forward_and_grad(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let ws = weights(&mut rng, 2, 64, 3);
    let mut group = c.benchmark_group("autodiff");
    group.sample_size(20);
    for batch in [64usize, 512] {
        let x = random(&mut rng, batch, 2);
        group.bench_with_input(BenchmarkId::new("forward", batch), &batch, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                mlp_forward(&mut g, &x, &ws)
            });
        });
        group.bench_with_input(BenchmarkId::new("grad", batch), &batch, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let (l, xv) = mlp_forward(&mut g, &x, &ws);
                g.grad(l, &[xv])
            });
        });
        group.bench_with_input(BenchmarkId::new("laplacian", batch), &batch, |bch, _| {
            // The PDE-loss pattern: two chained backward passes.
            bch.iter(|| {
                let mut g = Graph::new();
                let (l, xv) = mlp_forward(&mut g, &x, &ws);
                let d1 = g.grad(l, &[xv])[0];
                let ux = g.slice_cols(d1, 0, 1);
                let s = g.sum(ux);
                g.grad(s, &[xv])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_and_grad);
criterion_main!(benches);
