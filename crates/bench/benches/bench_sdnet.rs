//! Criterion benches of SDNet inference and the physics-informed training
//! step — the kernel-level view of Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_bench::{bench_net_config, bench_spec};
use mf_data::{BatchSampler, Dataset};
use mf_nn::{EmbeddingKind, SdNet};
use mf_tensor::Tensor;
use mf_train::local_gradients;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_inference(c: &mut Criterion) {
    let spec = bench_spec();
    let split = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let mut concat = split.clone();
    concat.config_mut().embedding = EmbeddingKind::Concat;
    let b = 8usize;
    let boundaries = Tensor::from_fn(b, spec.boundary_len(), |r, cc| {
        ((r * 7 + cc) as f64 * 0.13).sin()
    });

    let mut group = c.benchmark_group("sdnet_inference");
    group.sample_size(20);
    for q in [16usize, 64, 256] {
        let pts = Tensor::from_fn(b * q, 2, |r, cc| 0.01 * ((r + cc) % 50) as f64);
        group.throughput(Throughput::Elements((b * q) as u64));
        group.bench_with_input(BenchmarkId::new("split", q), &q, |bch, _| {
            bch.iter(|| split.predict(&boundaries, &pts, q));
        });
        group.bench_with_input(BenchmarkId::new("concat", q), &q, |bch, _| {
            bch.iter(|| concat.predict(&boundaries, &pts, q));
        });
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let spec = bench_spec();
    let net = SdNet::new(bench_net_config(spec), &mut ChaCha8Rng::seed_from_u64(0));
    let ds = Dataset::generate(spec, 8, 0);
    let mut group = c.benchmark_group("sdnet_train_step");
    group.sample_size(10);
    for q in [8usize, 32] {
        let mut sampler = BatchSampler::new(8, q, q, 0);
        let idx: Vec<usize> = (0..8).collect();
        let batch = sampler.make_batch(&ds, &idx);
        group.throughput(Throughput::Elements((8 * 2 * q) as u64));
        group.bench_with_input(BenchmarkId::new("data+pde", 8 * 2 * q), &q, |bch, _| {
            bch.iter(|| local_gradients(&net, &batch, 0.02));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training_step);
criterion_main!(benches);
